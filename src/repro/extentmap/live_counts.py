"""Vectorized per-zone live-sector accounting for the finite log.

:class:`~repro.core.cleaning.ZonedCleaningTranslator` must know, per
zone, how many mapped sectors are still live — the victim-selection
input and the "log full of live data" tripwire.  The original ledger
kept one Python int per zone and split every invalidation across zone
boundaries in a scalar loop; this module keeps the counts as one int64
numpy array so the cleaning kernel can apply a whole batch of
invalidation deltas with a single scatter-add, and victim selection
reduces to a masked ``argmin``/``argmax`` over the array.

Semantics match the ledger exactly (property-tested against a dict
model in ``tests/extentmap/test_live_counts.py``):

* counts never go below zero — decrements clamp at 0 (stale ledger
  entries can over-report; the reference clamped identically), and
* a range spanning zone boundaries splits its delta per zone (the
  extent map merges PBA-contiguous pieces across zones, so a single
  mapped segment can cover several zones).

Clamping commutes with batching: decrements only ever subtract, so
"subtract every piece, then clamp" equals "subtract and clamp piece by
piece" as long as no increment interleaves — which is why
:meth:`ZoneLiveCounts.decrement_ranges` may scatter a whole
invalidation batch at once.
"""

from __future__ import annotations

from typing import List

import numpy as np


class ZoneLiveCounts:
    """Per-zone live-sector counts over a contiguous run of equal zones.

    Addresses are log-relative: PBA 0 is the first sector of zone 0,
    zone ``i`` covers ``[i*zone_sectors, (i+1)*zone_sectors)``.
    """

    def __init__(self, zone_sectors: int, n_zones: int) -> None:
        if zone_sectors < 1:
            raise ValueError(f"zone_sectors must be >= 1, got {zone_sectors}")
        if n_zones < 1:
            raise ValueError(f"n_zones must be >= 1, got {n_zones}")
        self._zone_sectors = zone_sectors
        self._counts = np.zeros(n_zones, dtype=np.int64)

    @property
    def zone_sectors(self) -> int:
        return self._zone_sectors

    @property
    def n_zones(self) -> int:
        return len(self._counts)

    @property
    def counts(self) -> np.ndarray:
        """The live int64 counts array (mutate through the methods)."""
        return self._counts

    def get(self, zone_id: int) -> int:
        return int(self._counts[zone_id])

    def total(self) -> int:
        return int(self._counts.sum())

    def add(self, zone_id: int, sectors: int) -> None:
        """Credit an append of ``sectors`` to ``zone_id``."""
        self._counts[zone_id] += sectors

    def reset(self, zone_id: int) -> None:
        """Zero a zone's count (the zone was cleaned and reset)."""
        self._counts[zone_id] = 0

    def decrement_range(self, pba: int, length: int) -> None:
        """Invalidate ``[pba, pba+length)``, splitting per zone, clamped at 0."""
        zone_sectors = self._zone_sectors
        counts = self._counts
        end = pba + length
        zone_id = pba // zone_sectors
        while pba < end:
            zone_end = (zone_id + 1) * zone_sectors
            take = min(end, zone_end) - pba
            remaining = counts[zone_id] - take
            counts[zone_id] = remaining if remaining > 0 else 0
            pba = zone_end
            zone_id += 1

    def decrement_ranges(self, pba: np.ndarray, length: np.ndarray) -> None:
        """Invalidate many ``[pba, pba+length)`` ranges in one scatter-add.

        Equivalent to calling :meth:`decrement_range` per range (see the
        module docstring for why clamp-at-the-end is exact here).
        """
        pba = np.asarray(pba, dtype=np.int64)
        length = np.asarray(length, dtype=np.int64)
        if pba.size == 0:
            return
        zone_sectors = self._zone_sectors
        end = pba + length
        first_zone = pba // zone_sectors
        last_zone = (end - 1) // zone_sectors
        reps = last_zone - first_zone + 1
        total = int(reps.sum())
        if total == len(pba):
            # Common case: no range crosses a zone boundary.
            np.subtract.at(self._counts, first_zone, length)
        else:
            # Expand each range into one row per zone it touches.
            offsets = np.zeros(len(pba), dtype=np.int64)
            np.cumsum(reps[:-1], out=offsets[1:])
            intra = np.arange(total, dtype=np.int64) - offsets.repeat(reps)
            zone_ids = first_zone.repeat(reps) + intra
            piece_start = np.maximum(pba.repeat(reps), zone_ids * zone_sectors)
            piece_end = np.minimum(end.repeat(reps), (zone_ids + 1) * zone_sectors)
            np.subtract.at(self._counts, zone_ids, piece_end - piece_start)
        np.maximum(self._counts, 0, out=self._counts)

    def recompute_from_extents(self, pba: np.ndarray, length: np.ndarray) -> None:
        """Rebuild all counts wholesale from the mapped in-log extents.

        Exact replacement for incremental tracking whenever the invariant
        *counts[z] == mapped live sectors inside zone z* holds — which it
        does at every op boundary: each host write immediately decrements
        the mappings it supersedes, relocation decrements the victim and
        credits the destination, and a reset zone has no extents mapped
        into it (its live pieces were just remapped elsewhere).  Under
        that invariant decrements never clamp, so the incremental state
        equals this sum exactly.  Callers pass log-relative addresses
        (extent ``pba`` minus the frontier base, identity-region extents
        excluded); extents split per zone like the decrement paths.
        """
        counts = self._counts
        counts[:] = 0
        pba = np.asarray(pba, dtype=np.int64)
        length = np.asarray(length, dtype=np.int64)
        if pba.size == 0:
            return
        zone_sectors = self._zone_sectors
        end = pba + length
        first_zone = pba // zone_sectors
        last_zone = (end - 1) // zone_sectors
        reps = last_zone - first_zone + 1
        total = int(reps.sum())
        if total == len(pba):
            np.add.at(counts, first_zone, length)
            return
        offsets = np.zeros(len(pba), dtype=np.int64)
        np.cumsum(reps[:-1], out=offsets[1:])
        intra = np.arange(total, dtype=np.int64) - offsets.repeat(reps)
        zone_ids = first_zone.repeat(reps) + intra
        piece_start = np.maximum(pba.repeat(reps), zone_ids * zone_sectors)
        piece_end = np.minimum(end.repeat(reps), (zone_ids + 1) * zone_sectors)
        np.add.at(counts, zone_ids, piece_end - piece_start)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def state_list(self) -> List[int]:
        return [int(c) for c in self._counts]

    def load_state_list(self, counts) -> None:
        values = [int(c) for c in counts]
        if len(values) != len(self._counts):
            raise ValueError(
                f"zone count mismatch restoring live counts: have "
                f"{len(self._counts)} zones, snapshot has {len(values)}"
            )
        self._counts = np.asarray(values, dtype=np.int64)
