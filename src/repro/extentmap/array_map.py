"""Array-backed two-level implementation of
:class:`~repro.extentmap.base.AddressMap`, engineered for the write path.

:class:`~repro.extentmap.extent_map.ExtentMap` pays an O(n) Python-list
memmove per overwrite; on write-heavy traces the map grows to hundreds of
thousands of extents and that insert cost dominates replay (the
``replay_ls_write_heavy`` benchmark).  :class:`ArrayExtentMap` removes it
with an LSM-flavoured split:

* **Base level** — the bulk of the mapping as parallel int64 numpy arrays
  ``(lba, pba, length)`` in canonical form (LBA-sorted, non-overlapping,
  merge-maximal), held in amortized-doubling capacity buffers.  The base
  is immutable between flushes, so lookups are ``searchsorted`` + a short
  walk and batch lookups vectorize completely.
* **Overlay level** — recent overwrites in a small
  :class:`~repro.extentmap.extent_map.ExtentMap` (bounded by
  ``flush_threshold`` extents), where the O(n) insert cost is trivially
  small.  Resolution composes the levels: the overlay wins wherever it
  has a mapping; the base fills the rest; anything unmapped is a hole.

When the overlay reaches ``flush_threshold`` extents it is merged into
the base in one vectorized pass (:meth:`flush`): base extents are cut at
overlay boundaries, covered pieces dropped, survivors rank-merged with
the overlay extents, and logically+physically contiguous neighbours
coalesced back to canonical form.  Flushing is semantically invisible —
it never changes what any lookup returns — so results are independent of
the threshold (property-tested in
``tests/extentmap/test_array_map_properties.py`` and pinned bit-for-bit
against :class:`ExtentMap` by the differential suite).

The batch entry points (:meth:`map_range_batch`,
:meth:`lookup_pieces_batch`) let the replay kernels resolve a whole run
of operations with one boundary search per array call instead of one per
op; see :mod:`repro.core.batch`.

``map_range`` itself touches numpy only inside a flush: steady-state
writes are pure small-list operations, and the capacity buffers are
reused across flushes (``realloc_count`` stays flat once the map's size
plateaus — asserted by the perf tripwire test).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.extentmap.base import AddressMap, Segment
from repro.extentmap.extent import Extent
from repro.extentmap.extent_map import ExtentMap, validate_extent_rows

#: Overlay extents accumulated before a vectorized merge into the base.
#: Purely a performance knob: results are threshold-independent.  The
#: default balances overlay insert cost (grows with the threshold)
#: against flush frequency (shrinks with it).
DEFAULT_FLUSH_THRESHOLD = 4096

#: Batched lookups whose overlay-intersecting query count reaches this
#: bound flush first (one vectorized merge) instead of scalar-composing
#: each dirty query.  Read-heavy hot-data workloads hit the overlay with
#: nearly every read; below the bound the splice path is cheaper.
_FLUSH_ON_DIRTY_QUERIES = 24

_I8 = np.int64


def _ranges(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated — per-group aranges."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=_I8)
    group_start = np.cumsum(counts) - counts
    return np.arange(total, dtype=_I8) - np.repeat(group_start, counts)


class ArrayExtentMap(AddressMap):
    """Two-level (numpy base + small overlay) sorted extent map.

    Drop-in interchangeable with :class:`ExtentMap`: identical overwrite
    semantics, identical ``lookup``/``lookup_pieces`` tilings and merge
    behaviour, identical :meth:`extent_arrays` exports for any operation
    sequence.  Additionally exposes vectorized batch entry points for the
    replay kernels.

    Args:
        flush_threshold: Overlay extent count that triggers a merge into
            the base level.  Any positive value yields identical results.
    """

    def __init__(self, flush_threshold: int = DEFAULT_FLUSH_THRESHOLD) -> None:
        if flush_threshold <= 0:
            raise ValueError(f"flush_threshold must be > 0, got {flush_threshold}")
        self._flush_threshold = flush_threshold
        self._n = 0
        self._capacity = 0
        self._lba = np.empty(0, dtype=_I8)
        self._pba = np.empty(0, dtype=_I8)
        self._len = np.empty(0, dtype=_I8)
        self._end = np.empty(0, dtype=_I8)  # _lba + _len, cached per flush
        self._gap = np.empty(0, dtype=_I8)  # prefix count of inter-extent gaps
        self._overlay = ExtentMap()
        self._overlay_bounds_cache = None  # (starts, ends) arrays, or None
        #: Completed overlay→base merges (monotone; observability only).
        self.flush_count = 0
        #: Capacity-buffer reallocations (the perf tripwire asserts this
        #: stays flat at steady state — no per-call numpy reallocation).
        self.realloc_count = 0

    def __len__(self) -> int:
        self.flush()
        return self._n

    def __iter__(self) -> Iterator[Extent]:
        """Iterate extents in LBA order (do not mutate while iterating)."""
        self.flush()
        n = self._n
        lba, pba, length = (
            self._lba[:n].tolist(),
            self._pba[:n].tolist(),
            self._len[:n].tolist(),
        )
        return iter([Extent(*row) for row in zip(lba, pba, length)])

    def __repr__(self) -> str:
        return (
            f"ArrayExtentMap(n_base={self._n}, "
            f"n_overlay={len(self._overlay)}, flushes={self.flush_count})"
        )

    # ------------------------------------------------------------------ #
    # AddressMap interface — scalar
    # ------------------------------------------------------------------ #

    def map_range(self, lba: int, pba: int, length: int) -> None:
        # Validation (and its exact messages) lives in the overlay's
        # map_range; steady-state cost is pure small-list work.
        self._overlay.map_range(lba, pba, length)
        self._overlay_bounds_cache = None
        if len(self._overlay) >= self._flush_threshold:
            self.flush()

    def lookup(self, lba: int, length: int) -> List[Segment]:
        # lookup_pieces carries the full tiling; holes resolve to
        # identity placement there, so the merge rules coincide and the
        # Segment list reconstructs exactly (cursor walk).
        segments: List[Segment] = []
        cursor = lba
        for pba, piece_length, hole in self.lookup_pieces(lba, length):
            segments.append(Segment(cursor, None if hole else pba, piece_length))
            cursor += piece_length
        return segments

    def lookup_pieces(self, lba: int, length: int) -> List[Tuple[int, int, bool]]:
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        end = lba + length
        pieces: List[Tuple[int, int, bool]] = []
        overlay = self._overlay
        if not len(overlay):
            self._base_pieces_scalar(pieces, lba, end)
            return pieces
        # Compose: overlay wins where mapped, base fills the gaps.  The
        # shared _push_piece merge rule makes the composed tiling equal
        # what a single merged map would emit.
        cursor = lba
        idx = overlay._first_overlap_index(lba)
        extents = overlay._extents
        n = len(extents)
        while cursor < end and idx < n:
            ext = extents[idx]
            ext_lba = ext.lba
            if ext_lba >= end:
                break
            if ext_lba > cursor:
                self._base_pieces_scalar(pieces, cursor, min(ext_lba, end))
                cursor = ext_lba
            piece_end = ext_lba + ext.length
            if piece_end > end:
                piece_end = end
            ExtentMap._push_piece(
                pieces, ext.pba + (cursor - ext_lba), piece_end - cursor, False
            )
            cursor = piece_end
            idx += 1
        if cursor < end:
            self._base_pieces_scalar(pieces, cursor, end)
        return pieces

    def mapped_extent_count(self) -> int:
        self.flush()
        return self._n

    def mapped_sector_count(self) -> int:
        self.flush()
        return int(self._len[: self._n].sum())

    # ------------------------------------------------------------------ #
    # Batch entry points (the replay kernels' hot calls)
    # ------------------------------------------------------------------ #

    def map_range_batch(
        self, lba: np.ndarray, pba: np.ndarray, length: np.ndarray
    ) -> None:
        """Apply many overwrites in order.

        Exactly equivalent to calling :meth:`map_range` per row (same
        results, same validation errors at the same row); the batch form
        saves per-call dispatch and lets the kernels hand over a whole
        write run at once.
        """
        overlay_map_range = self._overlay.map_range
        overlay = self._overlay
        threshold = self._flush_threshold
        self._overlay_bounds_cache = None
        for row in zip(lba.tolist(), pba.tolist(), length.tolist()):
            overlay_map_range(*row)
            if len(overlay) >= threshold:
                self.flush()
                overlay = self._overlay
                overlay_map_range = overlay.map_range

    def lookup_pieces_batch(
        self, lba: np.ndarray, length: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Resolve many reads at once.

        Returns ``(pba, piece_length, is_hole, offsets)`` where query
        ``q``'s pieces are rows ``offsets[q]:offsets[q+1]`` — exactly the
        triples :meth:`lookup_pieces` would return for that query against
        the current map state.  Queries not touching the overlay resolve
        fully vectorized against the base (one ``searchsorted`` per array,
        not per op); a handful of overlay-intersecting queries fall back
        to the scalar compose path and are spliced in, while a batch
        that is mostly dirty triggers a flush (semantically invisible)
        so the whole batch resolves against the merged base instead.
        """
        lba = np.ascontiguousarray(lba, dtype=_I8)
        length = np.ascontiguousarray(length, dtype=_I8)
        n_queries = len(lba)
        if n_queries == 0:
            return (
                np.empty(0, dtype=_I8),
                np.empty(0, dtype=_I8),
                np.empty(0, dtype=bool),
                np.zeros(1, dtype=_I8),
            )
        bad = length <= 0
        if bad.any():
            raise ValueError(
                f"length must be > 0, got {int(length[int(bad.argmax())])}"
            )
        ends = lba + length
        overlay = self._overlay
        hits = None
        if len(overlay):
            o_starts, o_ends = self._overlay_bounds()
            first_after = np.searchsorted(o_ends, lba, side="right")
            hits = (first_after < len(o_starts)) & (
                o_starts[np.minimum(first_after, len(o_starts) - 1)] < ends
            )
            n_dirty = int(np.count_nonzero(hits))
            if n_dirty >= _FLUSH_ON_DIRTY_QUERIES:
                # Scalar-composing this many queries costs more than one
                # vectorized merge of the overlay into the base.
                self.flush()
                hits = None
            elif n_dirty == 0:
                hits = None
        base = self._resolve_base_batch(lba, ends)
        if hits is None:
            return base
        return self._splice_overlay_hits(lba, length, base, hits)

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #

    def extent_arrays(self):
        """The full map as three int64 arrays ``(lba, pba, length)``.

        Canonical form (LBA-sorted, merge-maximal) — identical mappings
        export identical arrays, byte for byte the same as
        :meth:`ExtentMap.extent_arrays` after the same operations.
        """
        self.flush()
        n = self._n
        return self._lba[:n].copy(), self._pba[:n].copy(), self._len[:n].copy()

    @classmethod
    def from_extent_arrays(cls, lba, pba, length) -> "ArrayExtentMap":
        """Rebuild a map from :meth:`extent_arrays` output in O(n).

        Rows must be LBA-sorted, non-overlapping, with positive lengths;
        they are installed directly (coalescing any mergeable neighbours
        back to canonical form, a no-op for exported arrays).
        """
        lba = np.ascontiguousarray(lba, dtype=_I8)
        pba = np.ascontiguousarray(pba, dtype=_I8)
        length = np.ascontiguousarray(length, dtype=_I8)
        validate_extent_rows(lba, length)
        instance = cls()
        if len(lba):
            instance._install_base(*_coalesce(lba, pba, lba + length))
        return instance

    def flush(self) -> None:
        """Merge the overlay into the base level (semantically invisible).

        Public so callers that are done writing (e.g. before a big batch
        of reads) can pay the merge at a moment of their choosing; never
        required for correctness.
        """
        overlay = self._overlay
        n_overlay = len(overlay)
        if n_overlay == 0:
            return
        o_lba, o_pba, o_len = overlay.extent_arrays()
        o_end = o_lba + o_len
        n = self._n
        if n == 0:
            self._install_base(o_lba, o_pba, o_end)
        else:
            base_lba = self._lba[:n]
            base_pba = self._pba[:n]
            base_end = self._end[:n]
            # 1. Cut base extents at overlay boundaries so every piece is
            # either fully covered by the overlay or fully clear of it.
            cuts = np.unique(np.concatenate((o_lba, o_end)))
            lo = np.searchsorted(cuts, base_lba, side="right")
            hi = np.searchsorted(cuts, base_end, side="left")
            inner = hi - lo
            counts = inner + 1
            offsets = np.empty(n + 1, dtype=_I8)
            offsets[0] = 0
            np.cumsum(counts, out=offsets[1:])
            total = int(offsets[-1])
            piece_start = np.empty(total, dtype=_I8)
            piece_start[offsets[:-1]] = base_lba
            if total > n:
                src = np.repeat(lo, inner) + _ranges(inner)
                dst = np.repeat(offsets[:-1] + 1, inner) + _ranges(inner)
                piece_start[dst] = cuts[src]
            piece_end = np.empty(total, dtype=_I8)
            piece_end[: total - 1] = piece_start[1:]
            piece_end[offsets[1:] - 1] = base_end
            extent_id = np.repeat(np.arange(n, dtype=_I8), counts)
            piece_pba = base_pba[extent_id] + (piece_start - base_lba[extent_id])
            # 2. Drop pieces the overlay overwrites (a piece never crosses
            # an overlay boundary, so containment of its start suffices).
            containing = np.searchsorted(o_lba, piece_start, side="right") - 1
            covered = (containing >= 0) & (
                o_end[np.maximum(containing, 0)] > piece_start
            )
            keep = ~covered
            kept_start = piece_start[keep]
            kept_end = piece_end[keep]
            kept_pba = piece_pba[keep]
            # 3. Rank-merge survivors with the overlay extents (both
            # sorted, mutually disjoint — no ties possible).
            n_kept = len(kept_start)
            pos_base = np.arange(n_kept, dtype=_I8) + np.searchsorted(o_lba, kept_start)
            pos_overlay = np.arange(n_overlay, dtype=_I8) + np.searchsorted(
                kept_start, o_lba
            )
            merged = n_kept + n_overlay
            m_lba = np.empty(merged, dtype=_I8)
            m_pba = np.empty(merged, dtype=_I8)
            m_end = np.empty(merged, dtype=_I8)
            m_lba[pos_base] = kept_start
            m_pba[pos_base] = kept_pba
            m_end[pos_base] = kept_end
            m_lba[pos_overlay] = o_lba
            m_pba[pos_overlay] = o_pba
            m_end[pos_overlay] = o_end
            # 4. Coalesce back to canonical (merge-maximal) form.
            self._install_base(*_coalesce(m_lba, m_pba, m_end))
        self._overlay = ExtentMap()
        self._overlay_bounds_cache = None
        self.flush_count += 1

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _install_base(
        self, lba: np.ndarray, pba: np.ndarray, end: np.ndarray
    ) -> None:
        """Copy canonical rows into the capacity buffers and refresh the
        derived ``end``/gap-prefix caches."""
        n = len(lba)
        if n > self._capacity:
            capacity = max(1024, 1 << max(n - 1, 1).bit_length())
            self._lba = np.empty(capacity, dtype=_I8)
            self._pba = np.empty(capacity, dtype=_I8)
            self._len = np.empty(capacity, dtype=_I8)
            self._end = np.empty(capacity, dtype=_I8)
            self._gap = np.empty(capacity, dtype=_I8)
            self._capacity = capacity
            self.realloc_count += 1
        self._lba[:n] = lba
        self._pba[:n] = pba
        self._end[:n] = end
        np.subtract(end, lba, out=self._len[:n])
        if n:
            self._gap[0] = 0
            np.cumsum(self._end[: n - 1] != self._lba[1:n], out=self._gap[1:n])
        self._n = n

    def _overlay_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        cached = self._overlay_bounds_cache
        if cached is None:
            starts = np.array(self._overlay._starts, dtype=_I8)
            lengths = np.fromiter(
                (ext.length for ext in self._overlay._extents),
                dtype=_I8,
                count=len(starts),
            )
            cached = self._overlay_bounds_cache = (starts, starts + lengths)
        return cached

    def _base_pieces_scalar(self, pieces: list, start: int, end: int) -> None:
        """Append base-level pieces tiling ``[start, end)`` (merging into
        ``pieces``'s tail per the shared push rule)."""
        push = ExtentMap._push_piece
        n = self._n
        if n == 0:
            push(pieces, start, end - start, True)
            return
        base_lba = self._lba
        idx = int(np.searchsorted(base_lba[:n], start, side="right")) - 1
        if idx < 0 or int(self._end[idx]) <= start:
            idx += 1
        cursor = start
        while cursor < end and idx < n:
            ext_lba = int(base_lba[idx])
            if ext_lba >= end:
                break
            if ext_lba > cursor:
                push(pieces, cursor, ext_lba - cursor, True)
                cursor = ext_lba
            piece_end = int(self._end[idx])
            if piece_end > end:
                piece_end = end
            push(
                pieces,
                int(self._pba[idx]) + (cursor - ext_lba),
                piece_end - cursor,
                False,
            )
            cursor = piece_end
            idx += 1
        if cursor < end:
            push(pieces, cursor, end - cursor, True)

    def _resolve_base_batch(self, lba: np.ndarray, ends: np.ndarray):
        """Vectorized base-only resolution of many queries.

        The base is canonical (merge-maximal), so the emitted pieces are
        already merge-final: adjacent mapped pieces from neighbouring
        extents are never physically contiguous, holes never merge with
        mapped pieces, and two holes are never adjacent.
        """
        n_queries = len(lba)
        offsets = np.empty(n_queries + 1, dtype=_I8)
        offsets[0] = 0
        n = self._n
        if n == 0:
            np.cumsum(np.ones(n_queries, dtype=_I8), out=offsets[1:])
            return lba.copy(), ends - lba, np.ones(n_queries, dtype=bool), offsets
        base_lba = self._lba[:n]
        base_pba = self._pba[:n]
        base_end = self._end[:n]
        gap_prefix = self._gap[:n]

        candidate = np.searchsorted(base_lba, lba, side="right") - 1
        contains = (candidate >= 0) & (base_end[np.maximum(candidate, 0)] > lba)
        first = np.where(contains, candidate, candidate + 1)
        stop = np.searchsorted(base_lba, ends, side="left")
        span = stop - first  # overlapping base extents per query
        has = span > 0
        first_c = np.minimum(first, n - 1)
        last_c = np.minimum(np.maximum(stop - 1, 0), n - 1)
        head_hole = has & (lba < base_lba[first_c])
        tail_start = np.where(has, np.maximum(lba, base_end[last_c]), lba)
        tail_len = ends - tail_start
        tail_hole = tail_len > 0  # covers the span==0 whole-query hole too
        interior = np.where(has, gap_prefix[last_c] - gap_prefix[first_c], 0)
        counts = span + head_hole + tail_hole + interior
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        out_pba = np.empty(total, dtype=_I8)
        out_len = np.empty(total, dtype=_I8)
        out_hole = np.zeros(total, dtype=bool)

        total_span = int(span[has].sum()) if has.any() else 0
        if total_span:
            query_id = np.repeat(np.arange(n_queries, dtype=_I8), span)
            ext = _ranges(span) + np.repeat(first, span)
            piece_lo = np.maximum(lba[query_id], base_lba[ext])
            piece_hi = np.minimum(ends[query_id], base_end[ext])
            position = (
                offsets[:-1][query_id]
                + head_hole[query_id]
                + (ext - first[query_id])
                + (gap_prefix[ext] - gap_prefix[first[query_id]])
            )
            out_pba[position] = base_pba[ext] + (piece_lo - base_lba[ext])
            out_len[position] = piece_hi - piece_lo
            # Interior holes sit immediately before their following extent
            # piece; their identity pba is the previous extent's end.
            inner = (ext > first[query_id]) & (
                base_end[np.maximum(ext - 1, 0)] != base_lba[ext]
            )
            if inner.any():
                hole_start = base_end[ext[inner] - 1]
                hole_pos = position[inner] - 1
                out_pba[hole_pos] = hole_start
                out_len[hole_pos] = base_lba[ext[inner]] - hole_start
                out_hole[hole_pos] = True
        heads = np.flatnonzero(head_hole)
        if heads.size:
            head_pos = offsets[:-1][heads]
            out_pba[head_pos] = lba[heads]
            out_len[head_pos] = base_lba[first[heads]] - lba[heads]
            out_hole[head_pos] = True
        tails = np.flatnonzero(tail_hole)
        if tails.size:
            tail_pos = offsets[1:][tails] - 1
            out_pba[tail_pos] = tail_start[tails]
            out_len[tail_pos] = tail_len[tails]
            out_hole[tail_pos] = True
        return out_pba, out_len, out_hole, offsets

    def _splice_overlay_hits(
        self, lba: np.ndarray, length: np.ndarray, base, hits: np.ndarray
    ):
        """Replace base-only results with scalar-composed ones for the
        queries that intersect the overlay, keeping flat-array form."""
        base_pba, base_len, base_hole, base_off = base
        base_counts = np.diff(base_off)
        hit_ids = np.flatnonzero(hits)
        composed = [
            self.lookup_pieces(int(lba[q]), int(length[q])) for q in hit_ids
        ]
        counts = base_counts.copy()
        counts[hit_ids] = [len(p) for p in composed]
        n_queries = len(lba)
        offsets = np.empty(n_queries + 1, dtype=_I8)
        offsets[0] = 0
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        out_pba = np.empty(total, dtype=_I8)
        out_len = np.empty(total, dtype=_I8)
        out_hole = np.empty(total, dtype=bool)
        keep = ~hits
        if keep.any():
            kept_counts = base_counts[keep]
            src = np.repeat(base_off[:-1][keep], kept_counts) + _ranges(kept_counts)
            dst = np.repeat(offsets[:-1][keep], kept_counts) + _ranges(kept_counts)
            out_pba[dst] = base_pba[src]
            out_len[dst] = base_len[src]
            out_hole[dst] = base_hole[src]
        offset_list = offsets.tolist()
        for q, pieces in zip(hit_ids.tolist(), composed):
            at = offset_list[q]
            stop = at + len(pieces)
            piece_pba, piece_len, piece_hole = zip(*pieces)
            out_pba[at:stop] = piece_pba
            out_len[at:stop] = piece_len
            out_hole[at:stop] = piece_hole
        return out_pba, out_len, out_hole, offsets


def _coalesce(lba: np.ndarray, pba: np.ndarray, end: np.ndarray):
    """Merge adjacent rows that are both logically and physically
    contiguous (canonical merge-maximal form).  Inputs sorted, disjoint."""
    n = len(lba)
    breaks = np.empty(n, dtype=bool)
    breaks[0] = True
    np.logical_or(
        lba[1:] != end[:-1],
        pba[1:] != pba[:-1] + (end[:-1] - lba[:-1]),
        out=breaks[1:],
    )
    starts = np.flatnonzero(breaks)
    run_end = end[np.append(starts[1:], n) - 1]
    return lba[starts], pba[starts], run_end
