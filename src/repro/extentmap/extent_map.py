"""Sorted-extent implementation of :class:`~repro.extentmap.base.AddressMap`.

The map holds non-overlapping extents sorted by LBA, with a parallel list of
start addresses for binary search.  Lookups are O(log n + k) for k result
segments; overwrites are O(log n + k) extent operations plus the O(n)
memmove cost of Python list insertion/deletion, which is fast at trace scale
(the constant is a C memmove of pointer arrays).

Memory scales with the number of extents — i.e. with the *fragmentation* of
the logical space — which is exactly the quantity the paper studies.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Tuple

from repro.extentmap.base import AddressMap, Segment
from repro.extentmap.extent import Extent


def validate_extent_rows(lba, length) -> None:
    """Validate ``from_extent_arrays`` rows (shared across map tiers):
    strictly positive lengths, LBA-sorted, non-overlapping."""
    if len(lba) == 0:
        return
    bad = length <= 0
    if bad.any():
        row = int(bad.argmax())
        raise ValueError(
            f"extent rows must have length > 0; row {row} has "
            f"length {int(length[row])}"
        )
    previous_end = lba[:-1] + length[:-1]
    overlap = lba[1:] < previous_end
    if overlap.any():
        row = int(overlap.argmax())
        raise ValueError(
            f"extent rows must be LBA-sorted and non-overlapping; "
            f"extent at lba={int(lba[row + 1])} overlaps previous end "
            f"{int(previous_end[row])}"
        )


class ExtentMap(AddressMap):
    """Sorted non-overlapping extent map with split/trim overwrite semantics."""

    def __init__(self) -> None:
        self._extents: List[Extent] = []
        self._starts: List[int] = []

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        """Iterate extents in LBA order (do not mutate while iterating)."""
        return iter(self._extents)

    def __repr__(self) -> str:
        return f"ExtentMap(n_extents={len(self._extents)})"

    # ------------------------------------------------------------------ #
    # AddressMap interface
    # ------------------------------------------------------------------ #

    def map_range(self, lba: int, pba: int, length: int) -> None:
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        if lba < 0 or pba < 0:
            raise ValueError(f"addresses must be >= 0, got lba={lba} pba={pba}")
        end = lba + length
        idx = self._first_overlap_index(lba)

        # Carve out everything the new range overlaps.
        while idx < len(self._extents):
            ext = self._extents[idx]
            if ext.lba >= end:
                break
            if ext.lba < lba and ext.lba_end > end:
                # New range splits this extent in the middle: keep the front
                # in place, insert the surviving tail after the new extent.
                tail_len = ext.lba_end - end
                tail = Extent(end, ext.pba + (end - ext.lba), tail_len)
                ext.trim_back(ext.lba_end - lba)
                self._insert_at(idx + 1, tail)
                idx += 1
                break
            if ext.lba < lba:
                # Front of the extent survives.
                ext.trim_back(ext.lba_end - lba)
                idx += 1
            elif ext.lba_end > end:
                # Back of the extent survives.
                ext.trim_front(end - ext.lba)
                self._starts[idx] = ext.lba
                break
            else:
                # Fully covered: drop it.
                self._delete_at(idx)

        self._insert_merged(Extent(lba, pba, length))

    def lookup(self, lba: int, length: int) -> List[Segment]:
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        end = lba + length
        segments: List[Segment] = []
        cursor = lba
        idx = self._first_overlap_index(lba)
        while cursor < end and idx < len(self._extents):
            ext = self._extents[idx]
            if ext.lba >= end:
                break
            if ext.lba > cursor:
                self._append_segment(segments, Segment(cursor, None, ext.lba - cursor))
                cursor = ext.lba
            piece_end = min(ext.lba_end, end)
            self._append_segment(
                segments,
                Segment(cursor, ext.pba_for(cursor), piece_end - cursor),
            )
            cursor = piece_end
            idx += 1
        if cursor < end:
            self._append_segment(segments, Segment(cursor, None, end - cursor))
        return segments

    def lookup_pieces(self, lba: int, length: int) -> List[Tuple[int, int, bool]]:
        """Allocation-free override of :meth:`AddressMap.lookup_pieces`.

        Emits ``(pba, length, is_hole)`` tuples directly from the extent
        list — no :class:`Segment` construction — with the exact tiling
        and merge behaviour of :meth:`lookup`.  Within one resolution the
        pieces are always logically contiguous, so the :meth:`lookup`
        merge rule reduces to: same kind, and (for mapped pieces)
        physically contiguous; logically adjacent holes are identity-
        placed and therefore always physically contiguous too.
        """
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        end = lba + length
        pieces: List[Tuple[int, int, bool]] = []
        cursor = lba
        idx = self._first_overlap_index(lba)
        extents = self._extents
        n = len(extents)
        while cursor < end and idx < n:
            ext = extents[idx]
            ext_lba = ext.lba
            if ext_lba >= end:
                break
            if ext_lba > cursor:
                self._push_piece(pieces, cursor, ext_lba - cursor, True)
                cursor = ext_lba
            piece_end = ext_lba + ext.length
            if piece_end > end:
                piece_end = end
            self._push_piece(
                pieces, ext.pba + (cursor - ext_lba), piece_end - cursor, False
            )
            cursor = piece_end
            idx += 1
        if cursor < end:
            self._push_piece(pieces, cursor, end - cursor, True)
        return pieces

    def mapped_extent_count(self) -> int:
        return len(self._extents)

    def mapped_sector_count(self) -> int:
        return sum(ext.length for ext in self._extents)

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #

    def extent_arrays(self):
        """The full map as three int64 arrays ``(lba, pba, length)``.

        Rows are in LBA order — the map's canonical form — so two maps
        with identical mappings export identical arrays.  This is the
        serialization used by service checkpoints
        (:mod:`repro.service.checkpoint`).

        One C-level ``fromiter`` pass over a flattened generator plus
        three strided copies, instead of a per-extent Python loop of
        array-item stores.
        """
        import numpy as np

        n = len(self._extents)
        flat = np.fromiter(
            (
                value
                for ext in self._extents
                for value in (ext.lba, ext.pba, ext.length)
            ),
            dtype=np.int64,
            count=3 * n,
        )
        return (
            np.ascontiguousarray(flat[0::3]),
            np.ascontiguousarray(flat[1::3]),
            np.ascontiguousarray(flat[2::3]),
        )

    @classmethod
    def from_extent_arrays(cls, lba, pba, length) -> "ExtentMap":
        """Rebuild a map from :meth:`extent_arrays` output.

        The rows must be sorted by LBA, non-overlapping, with strictly
        positive lengths (always true of exported arrays); they are
        installed directly, bypassing the overwrite logic, so restore is
        O(n).  A zero/negative-length row would silently corrupt later
        bisect lookups, so it is rejected up front.
        """
        import numpy as np

        instance = cls()
        validate_extent_rows(
            np.asarray(lba, dtype=np.int64), np.asarray(length, dtype=np.int64)
        )
        extents = [
            Extent(row_lba, row_pba, row_length)
            for row_lba, row_pba, row_length in zip(
                lba.tolist(), pba.tolist(), length.tolist()
            )
        ]
        instance._extents = extents
        instance._starts = [ext.lba for ext in extents]
        return instance

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _first_overlap_index(self, lba: int) -> int:
        """Index of the first extent whose range could overlap ``lba``-onward."""
        idx = bisect_right(self._starts, lba)
        if idx > 0 and self._extents[idx - 1].lba_end > lba:
            return idx - 1
        return idx

    def _insert_at(self, idx: int, extent: Extent) -> None:
        self._extents.insert(idx, extent)
        self._starts.insert(idx, extent.lba)

    def _delete_at(self, idx: int) -> None:
        del self._extents[idx]
        del self._starts[idx]

    def _insert_merged(self, extent: Extent) -> None:
        """Insert ``extent`` (range already clear) merging contiguous neighbours.

        A merge requires both logical and physical contiguity, so a merged
        extent still describes one seek-free run on the platter.
        """
        idx = bisect_right(self._starts, extent.lba)
        if idx > 0:
            prev = self._extents[idx - 1]
            if prev.lba_end == extent.lba and prev.pba_end == extent.pba:
                prev.length += extent.length
                extent = prev
                idx -= 1
            else:
                self._insert_at(idx, extent)
        else:
            self._insert_at(idx, extent)
        nxt_idx = idx + 1
        if nxt_idx < len(self._extents):
            nxt = self._extents[nxt_idx]
            if extent.lba_end == nxt.lba and extent.pba_end == nxt.pba:
                extent.length += nxt.length
                self._delete_at(nxt_idx)

    @staticmethod
    def _push_piece(
        pieces: List[Tuple[int, int, bool]], pba: int, length: int, hole: bool
    ) -> None:
        """Append a piece, merging with the previous one per the
        :meth:`lookup` rule (same kind + physical contiguity)."""
        if pieces:
            last_pba, last_length, last_hole = pieces[-1]
            if last_hole == hole and last_pba + last_length == pba:
                pieces[-1] = (last_pba, last_length + length, hole)
                return
        pieces.append((pba, length, hole))

    @staticmethod
    def _append_segment(segments: List[Segment], segment: Segment) -> None:
        """Append ``segment``, merging with the previous one when contiguous."""
        if segments:
            last = segments[-1]
            both_holes = last.is_hole and segment.is_hole
            phys_contig = (
                not last.is_hole
                and not segment.is_hole
                and last.pba_end == segment.pba
            )
            if last.lba_end == segment.lba and (both_holes or phys_contig):
                segments[-1] = Segment(last.lba, last.pba, last.length + segment.length)
                return
        segments.append(segment)
