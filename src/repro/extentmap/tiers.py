"""Extent-map tier selection.

Two interchangeable :class:`~repro.extentmap.base.AddressMap` tiers back
the log-structured translator:

* ``"extent"`` — :class:`~repro.extentmap.extent_map.ExtentMap`, the
  pure-Python sorted-extent structure.  It is the *differential oracle*:
  every other tier is proven bit-identical to it, and the reference
  simulator always runs on it so gated speedup ratios stay meaningful.
* ``"array"`` — :class:`~repro.extentmap.array_map.ArrayExtentMap`, the
  numpy-backed two-level structure engineered for the write path.  The
  batch replay kernels (:mod:`repro.core.batch`) and the streaming
  service select it by default.

The environment variable :data:`ENV_TIER` (``REPRO_EXTENT_MAP``) forces
one tier everywhere — both the reference and the batch paths — which is
how the differential tests assert exhibit JSON is byte-identical across
tiers.  A compiled tier (numba/C) would register here as a third name
with an automatic fallback; this container intentionally ships without
numba, so the registry only guards against unknown names.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.extentmap.base import AddressMap

#: Environment variable forcing one tier for every translator built via
#: :func:`make_address_map` (values: ``extent`` or ``array``).
ENV_TIER = "REPRO_EXTENT_MAP"

#: Tier the vectorized batch kernels and the streaming service request.
DEFAULT_KERNEL_TIER = "array"

#: Tier of the reference simulator path (and the historical default).
DEFAULT_REFERENCE_TIER = "extent"

MAP_TIERS = ("extent", "array")


def resolve_map_tier(default: str = DEFAULT_REFERENCE_TIER) -> str:
    """The tier to use: the :data:`ENV_TIER` override, else ``default``."""
    tier = os.environ.get(ENV_TIER) or default
    if tier not in MAP_TIERS:
        raise ValueError(
            f"unknown extent-map tier {tier!r} (from "
            f"{ENV_TIER if os.environ.get(ENV_TIER) else 'default'}); "
            f"expected one of {MAP_TIERS}"
        )
    return tier


def make_address_map(
    tier: Optional[str] = None, default: str = DEFAULT_REFERENCE_TIER
) -> AddressMap:
    """Construct a fresh address map of the requested (or resolved) tier."""
    resolved = resolve_map_tier(default) if tier is None else tier
    if resolved == "extent":
        from repro.extentmap.extent_map import ExtentMap

        return ExtentMap()
    if resolved == "array":
        from repro.extentmap.array_map import ArrayExtentMap

        return ArrayExtentMap()
    raise ValueError(f"unknown extent-map tier {resolved!r}; expected one of {MAP_TIERS}")
