"""Sector-granular reference implementation of the address map.

:class:`BlockMap` stores one dict entry per mapped sector.  It is
deliberately trivial — its correctness is evident by inspection — and serves
as the executable specification against which
:class:`~repro.extentmap.extent_map.ExtentMap` is property-tested.  It is
also perfectly usable for small simulations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.extentmap.base import AddressMap, Segment


class BlockMap(AddressMap):
    """Per-sector dict-based LBA→PBA map."""

    def __init__(self) -> None:
        self._map: Dict[int, int] = {}

    def __repr__(self) -> str:
        return f"BlockMap(n_sectors={len(self._map)})"

    def map_range(self, lba: int, pba: int, length: int) -> None:
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        if lba < 0 or pba < 0:
            raise ValueError(f"addresses must be >= 0, got lba={lba} pba={pba}")
        for offset in range(length):
            self._map[lba + offset] = pba + offset

    def lookup(self, lba: int, length: int) -> List[Segment]:
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        segments: List[Segment] = []
        run_lba = lba
        run_pba = self._map.get(lba)
        run_len = 1
        for offset in range(1, length):
            sector = lba + offset
            pba = self._map.get(sector)
            contiguous = (
                (pba is None and run_pba is None)
                or (
                    pba is not None
                    and run_pba is not None
                    and pba == run_pba + run_len
                )
            )
            if contiguous:
                run_len += 1
            else:
                segments.append(Segment(run_lba, run_pba, run_len))
                run_lba, run_pba, run_len = sector, pba, 1
        segments.append(Segment(run_lba, run_pba, run_len))
        return segments

    def mapped_extent_count(self) -> int:
        """Count maximal runs that are contiguous both logically and physically."""
        if not self._map:
            return 0
        count = 0
        prev_lba = None
        prev_pba = None
        for sector in sorted(self._map):
            pba = self._map[sector]
            if prev_lba != sector - 1 or prev_pba is None or pba != prev_pba + 1:
                count += 1
            prev_lba, prev_pba = sector, pba
        return count

    def mapped_sector_count(self) -> int:
        return len(self._map)
