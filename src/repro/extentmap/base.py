"""Shared types and the abstract interface for address maps."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Segment:
    """A physically contiguous piece of a logical range, as resolved by a map.

    Attributes:
        lba: First logical sector of the piece.
        pba: First physical sector holding it, or ``None`` for a *hole* —
            a logical range never written during the simulation.  The
            log-structured translator resolves holes with the paper's
            "unwritten data resides at PBA = LBA" rule.
        length: Sector count (positive).
    """

    lba: int
    pba: Optional[int]
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"segment length must be > 0, got {self.length}")
        if self.lba < 0:
            raise ValueError(f"segment lba must be >= 0, got {self.lba}")
        if self.pba is not None and self.pba < 0:
            raise ValueError(f"segment pba must be >= 0, got {self.pba}")

    @property
    def lba_end(self) -> int:
        return self.lba + self.length

    @property
    def pba_end(self) -> Optional[int]:
        return None if self.pba is None else self.pba + self.length

    @property
    def is_hole(self) -> bool:
        return self.pba is None


class AddressMap(abc.ABC):
    """Abstract LBA-to-PBA map with overwrite semantics.

    Implementations maintain the invariant that each logical sector maps to
    at most one physical sector; mapping a range atomically unmaps whatever
    previously covered it (the old physical sectors become garbage, which
    the infinite-disk model never reclaims).
    """

    @abc.abstractmethod
    def map_range(self, lba: int, pba: int, length: int) -> None:
        """Map ``[lba, lba+length)`` to ``[pba, pba+length)``, replacing any
        previous mapping of those logical sectors."""

    @abc.abstractmethod
    def lookup(self, lba: int, length: int) -> List[Segment]:
        """Resolve ``[lba, lba+length)`` to an ordered list of segments.

        The returned segments tile the requested range exactly, in LBA
        order.  Adjacent segments are merged when both logically and
        physically contiguous; holes are merged with adjacent holes.
        """

    @abc.abstractmethod
    def mapped_extent_count(self) -> int:
        """Number of distinct mapped extents (the paper's *static
        fragmentation* measure)."""

    @abc.abstractmethod
    def mapped_sector_count(self) -> int:
        """Total number of currently mapped logical sectors."""

    def lookup_pieces(self, lba: int, length: int) -> List[Tuple[int, int, bool]]:
        """Resolve ``[lba, lba+length)`` to ``(pba, length, is_hole)`` triples.

        Identical tiling and merge semantics to :meth:`lookup`, but holes
        are resolved to their identity placement (``pba = lba``, the
        paper's "unwritten data resides at its LBA" rule) and no
        :class:`Segment` objects are created — this is the batch replay
        kernel's hot call (:mod:`repro.core.batch`).  Implementations may
        override it with an allocation-free fast path; the default
        delegates to :meth:`lookup`.
        """
        return [
            (segment.lba if segment.is_hole else segment.pba, segment.length, segment.is_hole)
            for segment in self.lookup(lba, length)
        ]

    def fragment_count(self, lba: int, length: int) -> int:
        """Dynamic fragmentation of a read: number of mapped, discontiguous
        physical pieces needed to serve ``[lba, lba+length)``.

        Holes count as one piece each (they resolve to identity placement,
        which is contiguous per hole).
        """
        return len(self.lookup(lba, length))
