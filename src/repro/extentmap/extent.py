"""The mutable extent record used internally by :class:`ExtentMap`."""

from __future__ import annotations


class Extent:
    """A mapped run: ``length`` logical sectors starting at ``lba`` stored
    physically at ``pba``.

    Mutable and slotted: the extent map trims extents in place when writes
    partially overlap them, which avoids churning allocations on the hot
    path.
    """

    __slots__ = ("lba", "pba", "length")

    def __init__(self, lba: int, pba: int, length: int) -> None:
        if length <= 0:
            raise ValueError(f"extent length must be > 0, got {length}")
        if lba < 0 or pba < 0:
            raise ValueError(f"extent addresses must be >= 0, got lba={lba} pba={pba}")
        self.lba = lba
        self.pba = pba
        self.length = length

    @property
    def lba_end(self) -> int:
        return self.lba + self.length

    @property
    def pba_end(self) -> int:
        return self.pba + self.length

    def pba_for(self, lba: int) -> int:
        """Physical sector holding logical sector ``lba`` (must be inside)."""
        if not self.lba <= lba < self.lba_end:
            raise ValueError(f"lba {lba} outside extent [{self.lba}, {self.lba_end})")
        return self.pba + (lba - self.lba)

    def trim_front(self, n: int) -> None:
        """Drop the first ``n`` sectors of the extent."""
        if not 0 < n < self.length:
            raise ValueError(f"trim_front n must be in (0, {self.length}), got {n}")
        self.lba += n
        self.pba += n
        self.length -= n

    def trim_back(self, n: int) -> None:
        """Drop the last ``n`` sectors of the extent."""
        if not 0 < n < self.length:
            raise ValueError(f"trim_back n must be in (0, {self.length}), got {n}")
        self.length -= n

    def __repr__(self) -> str:
        return f"Extent(lba={self.lba}, pba={self.pba}, length={self.length})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Extent):
            return NotImplemented
        return (
            self.lba == other.lba
            and self.pba == other.pba
            and self.length == other.length
        )
