"""Logical-to-physical address mapping structures.

The log-structured translator needs a map from LBA ranges to the physical
(log) locations that currently hold them.  Two interchangeable
implementations are provided:

* :class:`~repro.extentmap.extent_map.ExtentMap` — the production structure:
  a sorted list of non-overlapping extents with bisect lookup and
  split/trim on overwrite.  Memory is proportional to *fragmentation*, not
  address-space size.
* :class:`~repro.extentmap.array_map.ArrayExtentMap` — a numpy-backed
  two-level (base arrays + small overlay) tier engineered for the write
  path, with batch entry points for the replay kernels; selected via
  :func:`~repro.extentmap.tiers.make_address_map` (see
  :mod:`repro.extentmap.tiers` for the tier registry and the
  ``REPRO_EXTENT_MAP`` override).
* :class:`~repro.extentmap.block_map.BlockMap` — a block-granular dict used
  as an executable specification; property tests assert the two agree on
  random operation sequences.

Both return :class:`~repro.extentmap.base.Segment` lists from lookups; a
segment is either mapped (``pba`` set) or a hole (``pba is None``), and the
number of *mapped, mutually discontiguous* segments returned for a read is
exactly the paper's "dynamic fragmentation" of that read.
"""

from repro.extentmap.base import Segment, AddressMap
from repro.extentmap.extent import Extent
from repro.extentmap.extent_map import ExtentMap
from repro.extentmap.array_map import ArrayExtentMap
from repro.extentmap.block_map import BlockMap
from repro.extentmap.live_counts import ZoneLiveCounts
from repro.extentmap.tiers import (
    DEFAULT_KERNEL_TIER,
    DEFAULT_REFERENCE_TIER,
    ENV_TIER,
    MAP_TIERS,
    make_address_map,
    resolve_map_tier,
)

__all__ = [
    "Segment",
    "AddressMap",
    "Extent",
    "ExtentMap",
    "ArrayExtentMap",
    "BlockMap",
    "ZoneLiveCounts",
    "make_address_map",
    "resolve_map_tier",
    "MAP_TIERS",
    "ENV_TIER",
    "DEFAULT_KERNEL_TIER",
    "DEFAULT_REFERENCE_TIER",
]
