"""Session worker: one tenant's session hosted in a spawned process.

Isolation is the point: a worker that segfaults, leaks, is ``kill -9``'d
by the chaos harness, or wedges in a long apply takes down *one* tenant's
process, and the supervisor restarts it — :meth:`ReplaySession.open`
recovers the state from checkpoint + journal, so the restart is
semantically invisible to the client (at most one resent batch, deduped
by sequence number).

The parent speaks a tiny message protocol over a duplex
:func:`multiprocessing.Pipe` — dicts in, dicts out, one response per
request, op columns as raw ``bytes`` (the pickle cost of a list of ints
dwarfs everything else at streaming rates):

* ``{"cmd": "apply", "seq", "n", "is_read", "lba", "length"}``
* ``{"cmd": "apply_group", "first_seq", "counts", "payload"}`` — a
  coalesced run of contiguous binary-wire batches; ``payload`` is the
  daemon's concatenated columnar buffer (:mod:`repro.service.wire`),
  passed through the pipe *verbatim* and journaled by byte slice.
  Responds ``{"ok": True, "acks": [one response dict per batch]}``.
* ``{"cmd": "apply_refs", "first_seq", "refs"}`` — contiguous
  by-reference batches (``refs[i] = (key_hex, start, stop)`` into the
  shared mmap pool); same grouped-acks response.
* ``{"cmd": "query", "kind", "params"}``
* ``{"cmd": "checkpoint"}``
* ``{"cmd": "crash"}`` — chaos hook: ``os._exit`` without cleanup,
  exactly what a ``kill -9`` looks like from the parent's side.
* ``{"cmd": "shutdown"}`` — checkpoint, ack, exit 0.

Responses are ``{"ok": True, ...}`` or ``{"ok": False, "error", "kind"}``.
A request that raises keeps the worker alive (the error is the client's);
only ``crash``/``shutdown``/pipe-EOF end the loop.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.core.config import config_from_dict
from repro.service.pool import TracePool
from repro.service.session import ReplaySession, SequenceGapError


def encode_ops(is_read: np.ndarray, lba: np.ndarray, length: np.ndarray) -> dict:
    """Pack op columns for the pipe (raw little-endian bytes)."""
    return {
        "n": int(len(lba)),
        "is_read": np.ascontiguousarray(is_read, dtype=np.uint8).tobytes(),
        "lba": np.ascontiguousarray(lba, dtype="<i8").tobytes(),
        "length": np.ascontiguousarray(length, dtype="<i8").tobytes(),
    }


def decode_ops(message: dict):
    n = int(message["n"])
    is_read = np.frombuffer(message["is_read"], dtype=np.uint8, count=n).astype(bool)
    lba = np.array(np.frombuffer(message["lba"], dtype="<i8", count=n))
    length = np.array(np.frombuffer(message["length"], dtype="<i8", count=n))
    return is_read, lba, length


def worker_main(
    conn,
    tenant: str,
    root: str,
    config_dict: dict,
    frontier_base: int,
    checkpoint_interval_ops: int,
    pool_root: Optional[str] = None,
) -> None:
    """Entry point of the spawned worker process.

    ``pool_root``, when set, is the machine-wide content-addressed trace
    store every worker resolves by-reference batches through — the mmap
    pages are shared across all workers by the OS page cache.
    """
    session: Optional[ReplaySession] = None
    try:
        pool = TracePool(pool_root) if pool_root else None
        session = ReplaySession.open(
            tenant=tenant,
            root=root,
            config=config_from_dict(config_dict),
            frontier_base=frontier_base,
            checkpoint_interval_ops=checkpoint_interval_ops,
            pool=pool,
        )
        conn.send({"ok": True, "ready": True, "applied_seq": session.applied_seq})
    except Exception as exc:
        try:
            conn.send({"ok": False, "ready": False, "error": str(exc), "kind": type(exc).__name__})
        finally:
            os._exit(1)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Parent died or hung up: checkpoint and leave quietly.
            session.close()
            return
        cmd = message.get("cmd")
        try:
            if cmd == "apply":
                ack = session.apply_batch(
                    int(message["seq"]), *decode_ops(message)
                )
                conn.send({"ok": True, **ack})
            elif cmd == "apply_group":
                acks = session.apply_group_payload(
                    int(message["first_seq"]),
                    [int(n) for n in message["counts"]],
                    message["payload"],
                )
                conn.send({"ok": True, "acks": acks})
            elif cmd == "apply_refs":
                acks = session.apply_ref_group(
                    int(message["first_seq"]),
                    [(str(k), int(s), int(e)) for k, s, e in message["refs"]],
                )
                conn.send({"ok": True, "acks": acks})
            elif cmd == "query":
                result = session.query(
                    message["kind"], **message.get("params", {})
                )
                conn.send({"ok": True, "result": result})
            elif cmd == "checkpoint":
                session.checkpoint()
                conn.send({"ok": True, "applied_seq": session.applied_seq})
            elif cmd == "ping":
                conn.send({"ok": True, "pid": os.getpid()})
            elif cmd == "crash":
                # Chaos: die like kill -9 — no checkpoint, no cleanup.
                os._exit(42)
            elif cmd == "shutdown":
                session.close()
                conn.send({"ok": True, "applied_seq": session.applied_seq})
                return
            else:
                conn.send(
                    {"ok": False, "error": f"unknown cmd {cmd!r}", "kind": "ValueError"}
                )
        except SequenceGapError as exc:
            conn.send(
                {
                    "ok": False,
                    "error": str(exc),
                    "kind": "SequenceGapError",
                    "expected": exc.expected,
                    "got": exc.got,
                }
            )
        except Exception as exc:
            conn.send({"ok": False, "error": str(exc), "kind": type(exc).__name__})
