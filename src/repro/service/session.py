"""One tenant's resident replay session.

A session owns the full streaming state for one tenant:

* the chunk-resumable replay engine
  (:class:`~repro.core.batch.IncrementalBatchReplay`) under the tenant's
  :class:`~repro.core.config.TechniqueConfig`, with per-read fragment
  tracking on so the live Fig. 5 CDF is answerable;
* the incremental analyses — NoLS baseline seek counts (the SAF
  denominator) and the bounded seek-distance summary (the seek budget);
* the durability pair — :class:`~repro.service.checkpoint.CheckpointStore`
  and :class:`~repro.service.journal.OpJournal` — and the WAL contract
  binding them.

Apply path (:meth:`ReplaySession.apply_batch`), in order:

1. **Dedupe/gap check.**  Batches carry contiguous client sequence
   numbers from 1.  A batch at or below the last applied seq is
   acknowledged without effect (the client retried after losing an ack);
   a batch beyond the next expected seq raises
   :class:`SequenceGapError` so the client resyncs (queries
   :meth:`applied_seq` and resends) instead of silently skipping ops.
2. **Validate.**  Every op must fit under the tenant's declared LBA
   capacity (the translator's frontier base); a bad batch is rejected
   *before* journaling, leaving no trace.
3. **Journal, fsynced.**  The batch is durable before any state changes.
4. **Apply.**  Feed the engine, the baseline, and the distance summary.
5. **Maybe checkpoint.**  Every ``checkpoint_interval_ops`` applied ops.

Recovery (:meth:`ReplaySession.open`) inverts this: restore the newest
checkpoint that verifies (the store deletes ones that don't and falls
back), then replay the journal tail — batches above the checkpoint's
seq — through the same apply path minus the journaling.  Because every
applied batch was journaled first and the engine is bit-exactly
resumable, the recovered stats equal an uninterrupted run's **exactly**
(the chaos suite asserts byte identity after ``kill -9`` plus checkpoint
corruption).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.incremental import (
    IncrementalDistances,
    IncrementalNolsBaseline,
    fragment_cdf_from_hist,
)
from repro.core.batch import IncrementalBatchReplay
from repro.core.config import (
    TechniqueConfig,
    build_translator_for_base,
    config_from_dict,
    config_to_dict,
)
from repro.core.metrics import seek_amplification
from repro.core.outcomes import SimStats
from repro.extentmap.tiers import DEFAULT_KERNEL_TIER, resolve_map_tier
from repro.service.checkpoint import CheckpointStore
from repro.service.journal import OpJournal, RefRecord
from repro.service.pool import TracePool
from repro.service.wire import (
    concat_columns,
    payload_nbytes,
    split_group_payload,
)


def _SERVICE_MAP_TIER() -> str:
    """Extent-map tier for session translators: the kernel default
    (``array``) unless ``REPRO_EXTENT_MAP`` forces one.  Resolved per
    build so create and checkpoint-restore always agree — and snapshots
    are tier-portable anyway (canonical extent arrays)."""
    return resolve_map_tier(DEFAULT_KERNEL_TIER)


#: Default ops between automatic checkpoints.
DEFAULT_CHECKPOINT_INTERVAL = 50_000

_STATE_VERSION = 1


class SequenceGapError(ValueError):
    """A batch arrived beyond the next expected sequence number."""

    def __init__(self, expected: int, got: int) -> None:
        super().__init__(f"expected batch seq {expected}, got {got}")
        self.expected = expected
        self.got = got


class ReplaySession:
    """Resident streaming replay state for one tenant (see module docs).

    Build fresh sessions with :meth:`create` and recovered ones with
    :meth:`open`; the constructor wires already-initialized parts.
    """

    def __init__(
        self,
        tenant: str,
        root: Path,
        config: TechniqueConfig,
        frontier_base: int,
        engine: IncrementalBatchReplay,
        baseline: IncrementalNolsBaseline,
        distances: IncrementalDistances,
        checkpoints: CheckpointStore,
        journal: OpJournal,
        applied_seq: int,
        checkpoint_interval_ops: int,
        pool: Optional[TracePool] = None,
    ) -> None:
        self.tenant = tenant
        self.root = root
        self.config = config
        self.frontier_base = frontier_base
        self._engine = engine
        self._baseline = baseline
        self._distances = distances
        self._checkpoints = checkpoints
        self._journal = journal
        self._applied_seq = applied_seq
        self._interval = checkpoint_interval_ops
        self._ops_at_checkpoint = engine.ops_applied
        self._pool = pool

    # ----------------------------------------------------------------- #
    # Construction
    # ----------------------------------------------------------------- #

    @classmethod
    def create(
        cls,
        tenant: str,
        root: Union[str, Path],
        config: TechniqueConfig,
        frontier_base: int,
        checkpoint_interval_ops: int = DEFAULT_CHECKPOINT_INTERVAL,
        pool: Optional[TracePool] = None,
    ) -> "ReplaySession":
        """Start a brand-new session (no prior state under ``root``)."""
        if frontier_base <= 0:
            raise ValueError(f"frontier_base must be > 0, got {frontier_base}")
        if checkpoint_interval_ops <= 0:
            raise ValueError(
                f"checkpoint_interval_ops must be > 0, got {checkpoint_interval_ops}"
            )
        root = Path(root)
        engine = IncrementalBatchReplay(
            build_translator_for_base(frontier_base, config, _SERVICE_MAP_TIER()),
            trace_name=tenant,
            track_fragments=True,
        )
        journal = OpJournal(root)
        journal.open_segment(1)
        session = cls(
            tenant=tenant,
            root=root,
            config=config,
            frontier_base=frontier_base,
            engine=engine,
            baseline=IncrementalNolsBaseline(),
            distances=IncrementalDistances(),
            checkpoints=CheckpointStore(root),
            journal=journal,
            applied_seq=0,
            checkpoint_interval_ops=checkpoint_interval_ops,
            pool=pool,
        )
        # Checkpoint zero: even a first-batch crash restores cleanly.
        session.checkpoint()
        return session

    @classmethod
    def open(
        cls,
        tenant: str,
        root: Union[str, Path],
        config: TechniqueConfig,
        frontier_base: int,
        checkpoint_interval_ops: int = DEFAULT_CHECKPOINT_INTERVAL,
        pool: Optional[TracePool] = None,
    ) -> "ReplaySession":
        """Open a session: recover prior state if any, else create fresh.

        Recovery = newest verifying checkpoint + journal tail replay
        (see module docs).  ``config``/``frontier_base`` must match the
        checkpointed ones — a mismatch means the caller is trying to
        resume somebody else's state and raises.  A journal tail holding
        by-reference records needs the same ``pool`` the records were
        journaled against; opening without one raises instead of
        silently dropping acknowledged ops.
        """
        root = Path(root)
        checkpoints = CheckpointStore(root)
        latest = checkpoints.load_latest()
        if latest is None and not OpJournal(root).segment_first_seqs():
            return cls.create(
                tenant, root, config, frontier_base, checkpoint_interval_ops, pool
            )
        if latest is None:
            # Journal exists but every checkpoint was destroyed: replay
            # everything from scratch (checkpoint zero covers this in
            # practice; total loss still recovers, just slower).
            seq, state = 0, None
        else:
            seq, state = latest

        if state is not None:
            saved_config = config_from_dict(state["config"])
            if saved_config != config or int(state["frontier_base"]) != frontier_base:
                raise ValueError(
                    f"session {tenant!r}: stored config/capacity does not match "
                    "the requested one; refusing to mix streams"
                )
            if int(state.get("version", -1)) != _STATE_VERSION:
                raise ValueError(
                    f"session {tenant!r}: unsupported checkpoint version"
                )
            engine = IncrementalBatchReplay.from_state(
                build_translator_for_base(frontier_base, config, _SERVICE_MAP_TIER()),
                state["engine"],
            )
            baseline = IncrementalNolsBaseline()
            baseline.load_state(state["baseline"])
            distances = IncrementalDistances()
            distances.load_state(state["distances"])
            applied = int(state["applied_seq"])
        else:
            engine = IncrementalBatchReplay(
                build_translator_for_base(frontier_base, config, _SERVICE_MAP_TIER()),
                trace_name=tenant,
                track_fragments=True,
            )
            baseline = IncrementalNolsBaseline()
            distances = IncrementalDistances()
            applied = 0

        journal = OpJournal(root)
        session = cls(
            tenant=tenant,
            root=root,
            config=config,
            frontier_base=frontier_base,
            engine=engine,
            baseline=baseline,
            distances=distances,
            checkpoints=checkpoints,
            journal=journal,
            applied_seq=applied,
            checkpoint_interval_ops=checkpoint_interval_ops,
            pool=pool,
        )
        for record in journal.replay_after(applied):
            if isinstance(record, RefRecord):
                if pool is None:
                    raise ValueError(
                        f"session {tenant!r}: journal tail holds by-reference "
                        "batches but no shared pool was configured"
                    )
                is_read, lba, length = pool.slice(
                    record.key, record.start, record.stop
                )
            else:
                is_read, lba, length = record.is_read, record.lba, record.length
            session._apply_arrays(record.seq, is_read, lba, length)
        # Re-anchor: checkpoint the recovered state so the next crash
        # doesn't replay the same tail again, and rotate the journal.
        session.checkpoint()
        return session

    # ----------------------------------------------------------------- #
    # Apply path
    # ----------------------------------------------------------------- #

    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    @property
    def ops_applied(self) -> int:
        return self._engine.ops_applied

    def apply_batch(
        self,
        seq: int,
        is_read: np.ndarray,
        lba: np.ndarray,
        length: np.ndarray,
    ) -> Dict[str, int]:
        """Durably apply one client batch (see module docs for the order).

        Returns an ack dict; ``duplicate`` is True when the batch had
        already been applied (client retry after a lost ack).
        """
        if seq <= self._applied_seq:
            return {
                "seq": seq,
                "applied_seq": self._applied_seq,
                "ops": self._engine.ops_applied,
                "duplicate": True,
            }
        if seq != self._applied_seq + 1:
            raise SequenceGapError(self._applied_seq + 1, seq)
        is_read = np.ascontiguousarray(is_read, dtype=bool)
        lba = np.ascontiguousarray(lba, dtype=np.int64)
        length = np.ascontiguousarray(length, dtype=np.int64)
        self._validate_columns(is_read, lba, length)
        self._journal.append(seq, is_read, lba, length)
        self._apply_arrays(seq, is_read, lba, length)
        if self._engine.ops_applied - self._ops_at_checkpoint >= self._interval:
            self.checkpoint()
        return {
            "seq": seq,
            "applied_seq": self._applied_seq,
            "ops": self._engine.ops_applied,
            "duplicate": False,
        }

    def _validate_columns(
        self, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        """The admission checks batches pass before journaling (raises)."""
        if not (len(is_read) == len(lba) == len(length)):
            raise ValueError("batch columns must have equal length")
        if len(lba):
            if int(length.min()) <= 0 or int(lba.min()) < 0:
                raise ValueError("ops must have lba >= 0 and length > 0")
            top = int((lba + length).max())
            if top > self.frontier_base:
                raise ValueError(
                    f"op ends at LBA {top}, beyond the declared capacity "
                    f"{self.frontier_base}; reopen with a larger capacity"
                )

    def apply_group_payload(
        self, first_seq: int, counts: List[int], payload
    ) -> List[dict]:
        """Durably apply a coalesced run of contiguous binary-wire batches.

        ``payload`` is the byte concatenation of the batches' columnar
        payloads (:mod:`repro.service.wire`); ``counts[i]`` is the op
        count of batch ``first_seq + i``.  Returns one response dict per
        batch, **identical to what applying the batches one at a time
        would have produced**: duplicate acks for already-applied seqs,
        ``{"ok": True, ...ack}`` for accepted ones, structured
        ``{"ok": False, ...}`` errors for rejected ones (with
        ``SequenceGapError`` details after a mid-group rejection, exactly
        as the sequential path would raise them).

        The accepted run is journaled as **one** group record — a byte
        slice of ``payload``, one CRC, one fsync — and fed to the engine
        as one concatenated array triple; both are bit-identical to the
        per-batch path (journal groups expand on recovery, the kernels
        are chunk-size invariant).
        """
        triples = split_group_payload(payload, counts)
        offsets = [0]
        for n in counts:
            offsets.append(offsets[-1] + payload_nbytes(int(n)))

        def journal_run(run_start: int, k: int) -> None:
            self._journal.append_group(
                first_seq + run_start,
                [int(n) for n in counts[run_start : run_start + k]],
                bytes(
                    memoryview(payload)[
                        offsets[run_start] : offsets[run_start + k]
                    ]
                ),
            )

        return self._apply_group(
            first_seq,
            [lambda t=t: t for t in triples],
            journal_run,
        )

    def apply_ref_group(
        self, first_seq: int, refs: List[Tuple[str, int, int]]
    ) -> List[dict]:
        """Durably apply contiguous by-reference batches out of the pool.

        ``refs[i] = (key_hex, start, stop)`` names the ops of batch
        ``first_seq + i`` inside a shared-pool entry.  Same per-batch
        response contract as :meth:`apply_group_payload`; the accepted
        run journals as tiny ref records under one fsync, and the op
        bytes never leave the machine-wide mmap.
        """
        if self._pool is None:
            raise ValueError(
                f"session {self.tenant!r} has no shared pool; "
                "by-reference batches are not accepted"
            )

        def getter(key: str, start: int, stop: int):
            def resolve():
                return self._pool.slice(key, int(start), int(stop))

            return resolve

        def journal_run(run_start: int, k: int) -> None:
            self._journal.append_refs(
                [
                    (first_seq + run_start + j, key, int(start), int(stop))
                    for j, (key, start, stop) in enumerate(
                        refs[run_start : run_start + k]
                    )
                ]
            )

        return self._apply_group(
            first_seq,
            [getter(key, start, stop) for key, start, stop in refs],
            journal_run,
        )

    def _apply_group(self, first_seq, getters, journal_run) -> List[dict]:
        """Shared group-commit core: the *virtual* sequential walk.

        Walks the batches computing exactly the responses the sequential
        apply path would have produced at each point (``virtual`` tracks
        where ``applied_seq`` would be, ``virtual_ops`` where the engine's
        op count would be), without touching real state.  The accepted
        batches necessarily form one contiguous run (seqs in a group are
        contiguous; after a rejection every later batch is a gap), which
        is then made durable with ``journal_run`` — WAL before apply, as
        ever — and applied to the engine in one concatenated feed.
        """
        results: List[dict] = []
        virtual = self._applied_seq
        virtual_ops = self._engine.ops_applied
        run_start: Optional[int] = None
        run: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for i, get in enumerate(getters):
            seq = first_seq + i
            if seq <= virtual:
                results.append(
                    {
                        "ok": True,
                        "seq": seq,
                        "applied_seq": virtual,
                        "ops": virtual_ops,
                        "duplicate": True,
                    }
                )
                continue
            if seq != virtual + 1:
                results.append(
                    {
                        "ok": False,
                        "error": f"expected batch seq {virtual + 1}, got {seq}",
                        "kind": "SequenceGapError",
                        "expected": virtual + 1,
                        "got": seq,
                    }
                )
                continue
            try:
                is_read, lba, length = get()
                is_read = np.ascontiguousarray(is_read, dtype=bool)
                lba = np.ascontiguousarray(lba, dtype=np.int64)
                length = np.ascontiguousarray(length, dtype=np.int64)
                self._validate_columns(is_read, lba, length)
            except (ValueError, KeyError) as exc:
                results.append(
                    {"ok": False, "error": str(exc), "kind": type(exc).__name__}
                )
                continue
            if run_start is None:
                run_start = i
            run.append((is_read, lba, length))
            virtual += 1
            virtual_ops += len(lba)
            results.append(
                {
                    "ok": True,
                    "seq": seq,
                    "applied_seq": virtual,
                    "ops": virtual_ops,
                    "duplicate": False,
                }
            )
        if run:
            journal_run(run_start, len(run))
            is_read, lba, length = concat_columns(run)
            self._apply_arrays(
                first_seq + run_start + len(run) - 1, is_read, lba, length
            )
            if self._engine.ops_applied - self._ops_at_checkpoint >= self._interval:
                self.checkpoint()
        return results

    def _apply_arrays(
        self, seq: int, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        self._engine.feed_arrays(is_read, lba, length)
        self._distances.feed(*self._engine.drain_distances())
        self._baseline.feed_arrays(is_read, lba, length)
        self._applied_seq = seq

    # ----------------------------------------------------------------- #
    # Checkpointing
    # ----------------------------------------------------------------- #

    def state_dict(self) -> dict:
        return {
            "version": _STATE_VERSION,
            "tenant": self.tenant,
            "config": config_to_dict(self.config),
            "frontier_base": self.frontier_base,
            "applied_seq": self._applied_seq,
            "engine": self._engine.state_dict(),
            "baseline": self._baseline.state_dict(),
            "distances": self._distances.state_dict(),
        }

    def checkpoint(self) -> Path:
        """Snapshot now; rotate the journal; prune unneeded segments."""
        path = self._checkpoints.save(self._applied_seq, self.state_dict())
        self._ops_at_checkpoint = self._engine.ops_applied
        self._journal.rotate(self._applied_seq + 1)
        retained = self._checkpoints.sequence_numbers()
        if retained:
            self._journal.prune_below(min(retained) + 1)
        return path

    def close(self) -> None:
        """Checkpoint and release the journal handle."""
        self.checkpoint()
        self._journal.close()

    # ----------------------------------------------------------------- #
    # Live queries
    # ----------------------------------------------------------------- #

    def stats(self) -> SimStats:
        return self._engine.stats()

    def query(self, kind: str, **params) -> dict:
        """Answer one live query from the incrementally-updated summaries.

        Kinds: ``applied`` (sync point for client resync), ``stats``
        (full counter set), ``saf`` (live Fig. 11 numbers), ``fragment_cdf``
        (live Fig. 5), ``seek_budget`` (running seek-time totals and the
        Fig. 4 in-window fraction).
        """
        if kind == "applied":
            return {
                "applied_seq": self._applied_seq,
                "ops": self._engine.ops_applied,
            }
        if kind == "stats":
            stats = self._engine.stats()
            return {field: getattr(stats, field) for field in stats.__dataclass_fields__}
        if kind == "saf":
            baseline = SimStats()
            baseline.read_seeks, baseline.write_seeks = self._baseline.counts()
            saf = seek_amplification(self._engine.stats(), baseline)
            return {
                "read": saf.read,
                "write": saf.write,
                "total": saf.total,
                "baseline_read_seeks": baseline.read_seeks,
                "baseline_write_seeks": baseline.write_seeks,
            }
        if kind == "fragment_cdf":
            return {"points": fragment_cdf_from_hist(self._engine.fragment_hist)}
        if kind == "seek_budget":
            window_gib = float(params.get("window_gib", 2.0))
            return {
                "total_seek_ms": self._distances.total_seek_ms(),
                "read_seek_ms": self._distances.total_seek_ms(read_only=True),
                "seeks": self._distances.seeks,
                "read_seeks": self._distances.read_seeks,
                "fraction_within": self._distances.fraction_within(window_gib),
            }
        raise ValueError(f"unknown query kind {kind!r}")


