"""Worker supervision: restart crashed sessions, bounded backoff, retry.

The supervisor owns one spawned :mod:`~repro.service.worker` process per
tenant and is the only component that talks to them.  Its contract with
the daemon above it:

* **Crash transparency.**  A call that finds the worker dead (or kills it
  for wedging past the call timeout) restarts it — recovery inside
  :meth:`ReplaySession.open` restores checkpoint + journal tail — and
  replays the call **once**.  This is safe for every command the daemon
  sends: ``apply`` is idempotent under the session's sequence-number
  dedupe, and queries are read-only.
* **Bounded exponential backoff.**  Consecutive restarts within
  :attr:`SupervisorConfig.crash_window_s` sleep
  ``backoff_base_s * 2**(n-1)`` (capped at ``backoff_cap_s``) before
  relaunching, so a session whose state crashes its worker on boot can't
  spin the host.  After ``max_restarts`` such crashes the tenant is
  marked **failed** and every further call raises
  :class:`TenantFailedError` — one poisoned tenant never consumes the
  supervisor, and its neighbours keep streaming.
* **Determinism hooks.**  The wall clock and the sleep are injectable
  (``clock``/``sleep``), so supervision tests and chaos schedules run
  clock-free; ``on_worker_death`` fires between detecting a dead worker
  and relaunching it — the chaos harness uses it to corrupt the newest
  checkpoint at exactly the nastiest moment.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.config import TechniqueConfig, config_to_dict
from repro.service.session import DEFAULT_CHECKPOINT_INTERVAL
from repro.service.worker import worker_main


class TenantFailedError(RuntimeError):
    """The tenant's worker exceeded its restart budget and was retired."""


class WorkerCallError(RuntimeError):
    """The worker could not serve the call even after a restart."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs.

    Attributes:
        backoff_base_s: Sleep before the second restart in a burst; each
            further restart doubles it.
        backoff_cap_s: Upper bound on one backoff sleep.
        max_restarts: Crash budget within ``crash_window_s`` before the
            tenant is failed.
        crash_window_s: Sliding window over which crashes are counted.
        call_timeout_s: Per-call ceiling; a worker silent past it is
            presumed wedged, killed, and the call handled as a crash.
        checkpoint_interval_ops: Forwarded to each session.
    """

    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    max_restarts: int = 5
    crash_window_s: float = 30.0
    call_timeout_s: float = 60.0
    checkpoint_interval_ops: int = DEFAULT_CHECKPOINT_INTERVAL

    def __post_init__(self) -> None:
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.call_timeout_s <= 0 or self.crash_window_s <= 0:
            raise ValueError("timeouts must be > 0")


@dataclass
class _Tenant:
    name: str
    root: Path
    config: TechniqueConfig
    frontier_base: int
    process: Optional[multiprocessing.process.BaseProcess] = None
    conn: Optional[object] = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    crash_times: List[float] = field(default_factory=list)
    restarts: int = 0
    failed: bool = False


class Supervisor:
    """Spawn, monitor, restart and address per-tenant session workers."""

    def __init__(
        self,
        root: Path,
        config: Optional[SupervisorConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        on_worker_death: Optional[Callable[[str, int], None]] = None,
        pool_root: Optional[Path] = None,
    ) -> None:
        self._root = Path(root)
        self._config = config or SupervisorConfig()
        self._clock = clock
        self._sleep = sleep
        self._on_worker_death = on_worker_death
        self._pool_root = str(pool_root) if pool_root is not None else None
        self._tenants: Dict[str, _Tenant] = {}
        self._registry_lock = threading.Lock()
        self._ctx = multiprocessing.get_context("spawn")

    @property
    def pool_root(self) -> Optional[str]:
        """Shared mmap pool directory handed to every worker (or None)."""
        return self._pool_root

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #

    def tenants(self) -> List[str]:
        with self._registry_lock:
            return sorted(self._tenants)

    def ensure_tenant(
        self, name: str, config: TechniqueConfig, frontier_base: int
    ) -> None:
        """Register ``name`` (idempotent) and boot its worker."""
        with self._registry_lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                tenant = _Tenant(
                    name=name,
                    root=self._root / _safe_dirname(name),
                    config=config,
                    frontier_base=frontier_base,
                )
                self._tenants[name] = tenant
        with tenant.lock:
            if tenant.failed:
                raise TenantFailedError(f"tenant {name!r} is failed")
            if tenant.config != config or tenant.frontier_base != frontier_base:
                raise ValueError(
                    f"tenant {name!r} already open with a different "
                    "config/capacity"
                )
            if not self._alive(tenant):
                self._start_worker(tenant)

    def worker_pid(self, name: str) -> Optional[int]:
        tenant = self._get(name)
        with tenant.lock:
            return tenant.process.pid if self._alive(tenant) else None

    def restart_count(self, name: str) -> int:
        """Times this tenant's worker has been restarted after a crash."""
        return self._get(name).restarts

    def tenant_root(self, name: str) -> Path:
        """On-disk session directory of ``name`` (checkpoints + journal)."""
        return self._get(name).root

    def call(self, name: str, message: dict) -> dict:
        """Send one command to the tenant's worker and await its response.

        Restarts a dead/wedged worker and replays the call once (safe: see
        module docs).  Raises :class:`TenantFailedError` past the restart
        budget, :class:`WorkerCallError` if the retry also dies.
        """
        tenant = self._get(name)
        with tenant.lock:
            if tenant.failed:
                raise TenantFailedError(f"tenant {name!r} is failed")
            for attempt in (1, 2):
                if not self._alive(tenant):
                    self._restart(tenant)
                try:
                    tenant.conn.send(message)
                    if tenant.conn.poll(self._config.call_timeout_s):
                        return tenant.conn.recv()
                    # Wedged: no response within the ceiling.  Kill it;
                    # the session's WAL makes this indistinguishable from
                    # any other crash.
                    self._reap(tenant)
                except (BrokenPipeError, ConnectionResetError, EOFError, OSError):
                    # A kill -9'd worker closes its pipe end *before* it
                    # becomes waitpid-visible, so is_alive() can stay True
                    # for a moment; kill+join forces the reap so the next
                    # attempt restarts instead of re-using a dead pipe.
                    self._reap(tenant)
                if attempt == 2:
                    raise WorkerCallError(
                        f"tenant {name!r}: worker died twice serving one call"
                    )
            raise AssertionError("unreachable")

    def stop_tenant(self, name: str) -> None:
        """Graceful stop: worker checkpoints and exits."""
        tenant = self._get(name)
        with tenant.lock:
            if self._alive(tenant):
                try:
                    tenant.conn.send({"cmd": "shutdown"})
                    tenant.conn.poll(self._config.call_timeout_s)
                    if tenant.conn.poll(0):
                        tenant.conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
                tenant.process.join(timeout=self._config.call_timeout_s)
                if tenant.process.is_alive():
                    tenant.process.kill()
                    tenant.process.join()
            if tenant.conn is not None:
                tenant.conn.close()
                tenant.conn = None
            tenant.process = None

    def shutdown(self) -> None:
        for name in self.tenants():
            self.stop_tenant(name)

    # ----------------------------------------------------------------- #
    # Internals
    # ----------------------------------------------------------------- #

    def _get(self, name: str) -> _Tenant:
        with self._registry_lock:
            if name not in self._tenants:
                raise KeyError(f"unknown tenant {name!r}; open it first")
            return self._tenants[name]

    @staticmethod
    def _alive(tenant: _Tenant) -> bool:
        return tenant.process is not None and tenant.process.is_alive()

    @staticmethod
    def _reap(tenant: _Tenant) -> None:
        """Force a crashed/wedged worker into the reaped-dead state."""
        if tenant.process is not None:
            tenant.process.kill()
            tenant.process.join()

    def _start_worker(self, tenant: _Tenant) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                tenant.name,
                str(tenant.root),
                config_to_dict(tenant.config),
                tenant.frontier_base,
                self._config.checkpoint_interval_ops,
                self._pool_root,
            ),
            daemon=True,
            name=f"repro-session-{tenant.name}",
        )
        process.start()
        child_conn.close()
        # Wait for the ready handshake: recovery happens before it, so a
        # successful boot means the session state is consistent.
        if not parent_conn.poll(self._config.call_timeout_s):
            process.kill()
            process.join()
            raise WorkerCallError(f"tenant {tenant.name!r}: worker boot timed out")
        ready = parent_conn.recv()
        if not ready.get("ok"):
            process.join()
            raise WorkerCallError(
                f"tenant {tenant.name!r}: worker failed to boot: "
                f"{ready.get('error')}"
            )
        tenant.process = process
        tenant.conn = parent_conn

    def _restart(self, tenant: _Tenant) -> None:
        """Handle a detected crash: budget check, backoff, death hook, boot."""
        if tenant.conn is not None:
            tenant.conn.close()
            tenant.conn = None
        if tenant.process is not None:
            tenant.process.join(timeout=1.0)
            tenant.process = None
        now = self._clock()
        window_start = now - self._config.crash_window_s
        tenant.crash_times = [t for t in tenant.crash_times if t >= window_start]
        tenant.crash_times.append(now)
        burst = len(tenant.crash_times)
        if burst > self._config.max_restarts:
            tenant.failed = True
            raise TenantFailedError(
                f"tenant {tenant.name!r}: {burst - 1} restarts within "
                f"{self._config.crash_window_s:g}s; retiring the session"
            )
        if burst > 1:
            self._sleep(
                min(
                    self._config.backoff_cap_s,
                    self._config.backoff_base_s * 2 ** (burst - 2),
                )
            )
        tenant.restarts += 1
        if self._on_worker_death is not None:
            self._on_worker_death(tenant.name, tenant.restarts)
        self._start_worker(tenant)


def _safe_dirname(name: str) -> str:
    cleaned = "".join(c if (c.isalnum() or c in "._-") else "_" for c in name)
    return cleaned or "tenant"
