"""Supervised streaming replay service.

The batch pipeline replays a *finished* trace; this package serves the
other operating mode the paper's drive-level setting implies: a
long-running translator fed an **open-ended op stream**, queried live for
the §II metrics (current SAF, Fig. 5 fragment CDF, seek budget) while the
stream is still arriving.

Layered bottom-up:

* :mod:`repro.service.checkpoint` — content-checksummed snapshots of a
  session's full kernel + analysis state, committed with the atomic
  fsync+rename discipline of :mod:`repro.util.npystore`.
* :mod:`repro.service.journal` — a CRC'd, fsync-per-batch op journal
  (write-ahead log); checkpoint + journal tail replay recovers a
  ``kill -9``'d session to byte-identical stats.
* :mod:`repro.service.session` — one tenant's resident replay state:
  the chunk-resumable engine (:class:`repro.core.batch.IncrementalBatchReplay`),
  the incremental analyses, sequence-number dedupe, and the
  journal-before-apply recovery contract.
* :mod:`repro.service.worker` — a session hosted in a spawned process,
  driven over a pipe.
* :mod:`repro.service.supervisor` — restarts crashed workers with
  bounded exponential backoff and replays in-flight calls once.
* :mod:`repro.service.daemon` — the asyncio front end: newline-JSON
  protocol, per-tenant bounded queues (backpressure), deadline shedding.
* :mod:`repro.service.client` — a small blocking client with
  resync-after-reconnect.
* :mod:`repro.service.smoke` — the self-contained chaos smoke run
  (``make serve-smoke``).

``python -m repro serve`` (see :mod:`repro.__main__`) boots the daemon.
"""

from repro.service.checkpoint import CheckpointCorruptError, CheckpointStore
from repro.service.journal import OpJournal
from repro.service.session import ReplaySession, SequenceGapError
from repro.service.supervisor import Supervisor, SupervisorConfig, TenantFailedError
from repro.service.daemon import ReplayDaemon, DaemonConfig
from repro.service.client import ReplayClient

__all__ = [
    "CheckpointCorruptError",
    "CheckpointStore",
    "OpJournal",
    "ReplaySession",
    "SequenceGapError",
    "Supervisor",
    "SupervisorConfig",
    "TenantFailedError",
    "ReplayDaemon",
    "DaemonConfig",
    "ReplayClient",
]
