"""Write-ahead op journal: the recovery half of checkpoint + journal.

Checkpoints are periodic; every batch *between* checkpoints must survive
``kill -9`` too, or recovered stats drift from the uninterrupted run.
The session therefore journals each batch — fsynced — **before** applying
it to the resident engine (classic WAL ordering): if the process dies
mid-apply, recovery replays the journaled batch on top of the restored
checkpoint and reaches the identical state; if it dies before the journal
write completes, the torn record is truncated away and the client (which
never got an acknowledgement) resends.

Record formats, little-endian, self-delimiting (dispatch on the leading
magic).  A single batch::

    magic   u32   0x524A4C31 ("RJL1")
    seq     u64   batch sequence number (contiguous per tenant, from 1)
    n       u32   ops in the batch
    crc     u32   CRC-32 of the payload bytes
    payload       is_read u8[n] · lba i64[n] · length i64[n]

A **coalesced group** (the group-commit frame: one CRC, one fsync for a
whole run of contiguous batches — see :meth:`OpJournal.append_group`)::

    magic     u32   0x524A4731 ("RJG1")
    first_seq u64   sequence number of the group's first batch
    k         u32   batches in the group
    crc       u32   CRC-32 of counts + payload
    counts    u32[k]  ops per batch
    payload         per-batch payloads, concatenated in batch order

The group payload is the byte concatenation of each batch's single-batch
payload (the :mod:`repro.service.wire` layout), so the daemon's coalesced
buffer journals verbatim — no re-encoding between the socket and the WAL.

A **by-reference** batch (ops live in the shared content-addressed
:class:`~repro.service.pool.TracePool`; the WAL stores ~60 bytes however
large the batch)::

    magic   u32   0x524A5231 ("RJR1")
    seq     u64   batch sequence number
    start   u64   first op index within the pool entry
    stop    u64   one past the last op index
    crc     u32   CRC-32 of key + start/stop (packed little-endian)
    key     u8[32]  raw SHA-256 of the pool entry

Ref records are only recoverable while the pool entry exists; pool
entries are immutable, content-addressed and fsynced before any ref to
them is accepted, so a retained checkpoint's journal tail can always be
re-resolved.

Torn tails are detected structurally (short header/payload) or by CRC and
truncated in place; anything before the tear is intact because each
record (or group) was fsynced before acknowledgement.

Segments: one append-only file per checkpoint epoch,
``<root>/journal/seg-<first_seq:012d>.log`` (named by the first batch seq
it may contain).  After a checkpoint at batch ``S`` the session rotates
to ``seg-<S+1>``; pruning keeps every segment that any *retained*
checkpoint might need, so falling back to the older checkpoint always
finds its tail.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

_MAGIC = 0x524A4C31
_HEADER = struct.Struct("<IQII")  # magic, seq, n, crc
_GROUP_MAGIC = 0x524A4731
_GROUP_HEADER = struct.Struct("<IQII")  # magic, first_seq, k, crc
_REF_MAGIC = 0x524A5231
_REF_HEADER = struct.Struct("<IQQQI")  # magic, seq, start, stop, crc
_REF_KEY_BYTES = 32


class JournalRecord:
    """One journaled batch, decoded back to column arrays."""

    __slots__ = ("seq", "is_read", "lba", "length")

    def __init__(
        self, seq: int, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        self.seq = seq
        self.is_read = is_read
        self.lba = lba
        self.length = length

    def __len__(self) -> int:
        return len(self.lba)


class RefRecord:
    """One journaled by-reference batch: a pool key plus an op range.

    Recovery resolves the columns through the session's
    :class:`~repro.service.pool.TracePool`; the record itself carries no
    op data.
    """

    __slots__ = ("seq", "key", "start", "stop")

    def __init__(self, seq: int, key: str, start: int, stop: int) -> None:
        self.seq = seq
        self.key = key
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start


def _encode(seq: int, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray) -> bytes:
    n = len(lba)
    payload = (
        np.ascontiguousarray(is_read, dtype=np.uint8).tobytes()
        + np.ascontiguousarray(lba, dtype=np.int64).tobytes()
        + np.ascontiguousarray(length, dtype=np.int64).tobytes()
    )
    return _HEADER.pack(_MAGIC, seq, n, zlib.crc32(payload)) + payload


def _decode_payload(seq: int, n: int, payload: bytes) -> JournalRecord:
    is_read = np.frombuffer(payload, dtype=np.uint8, count=n, offset=0).astype(bool)
    # Copy out of the (possibly unaligned) byte buffer.
    lba = np.array(np.frombuffer(payload, dtype=np.int64, count=n, offset=n))
    length = np.array(np.frombuffer(payload, dtype=np.int64, count=n, offset=9 * n))
    return JournalRecord(seq, is_read, lba, length)


def _ref_crc(key_bytes: bytes, start: int, stop: int) -> int:
    return zlib.crc32(key_bytes + struct.pack("<QQ", start, stop))


def _scan_one(data: bytes, offset: int):
    """Decode the record starting at ``offset``; ``(records, end)`` or None.

    Returns None on any structural damage or CRC mismatch — the caller
    truncates there.  A group record expands into one
    :class:`JournalRecord` per member batch.
    """
    if offset + 4 > len(data):
        return None
    (magic,) = struct.unpack_from("<I", data, offset)
    if magic == _MAGIC:
        if offset + _HEADER.size > len(data):
            return None
        _, seq, n, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + n * (1 + 8 + 8)
        if end > len(data):
            return None
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            return None
        return [_decode_payload(seq, n, payload)], end
    if magic == _GROUP_MAGIC:
        if offset + _GROUP_HEADER.size > len(data):
            return None
        _, first_seq, k, crc = _GROUP_HEADER.unpack_from(data, offset)
        counts_at = offset + _GROUP_HEADER.size
        payload_at = counts_at + 4 * k
        if payload_at > len(data):
            return None
        counts = struct.unpack_from(f"<{k}I", data, counts_at)
        end = payload_at + sum(counts) * (1 + 8 + 8)
        if end > len(data):
            return None
        if zlib.crc32(data[counts_at:end]) != crc:
            return None
        records = []
        at = payload_at
        for i, n in enumerate(counts):
            nxt = at + n * (1 + 8 + 8)
            records.append(_decode_payload(first_seq + i, n, data[at:nxt]))
            at = nxt
        return records, end
    if magic == _REF_MAGIC:
        if offset + _REF_HEADER.size + _REF_KEY_BYTES > len(data):
            return None
        _, seq, start, stop, crc = _REF_HEADER.unpack_from(data, offset)
        key_at = offset + _REF_HEADER.size
        end = key_at + _REF_KEY_BYTES
        key_bytes = data[key_at:end]
        if _ref_crc(key_bytes, start, stop) != crc:
            return None
        return [RefRecord(seq, key_bytes.hex(), start, stop)], end
    return None


def _scan_segment(path: Path, truncate_torn: bool) -> List[Union[JournalRecord, RefRecord]]:
    """Decode a segment, optionally truncating a torn/corrupt tail in place.

    Valid records strictly precede the first damaged byte (records are
    fsynced in order), so truncation never discards acknowledged data.
    """
    records: List[Union[JournalRecord, RefRecord]] = []
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    good_end = 0
    while offset < len(data):
        decoded = _scan_one(data, offset)
        if decoded is None:
            break
        batch_records, offset = decoded
        records.extend(batch_records)
        good_end = offset
    if truncate_torn and good_end < len(data):
        with open(path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
    return records


class OpJournal:
    """Per-session segmented WAL of op batches.

    Args:
        root: Session directory; segments live in ``root/journal``.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._dir = Path(root) / "journal"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._segment: Optional[Path] = None

    @property
    def directory(self) -> Path:
        return self._dir

    def segment_first_seqs(self) -> List[int]:
        seqs = []
        for entry in self._dir.iterdir():
            name = entry.name
            if name.startswith("seg-") and name.endswith(".log"):
                try:
                    seqs.append(int(name[len("seg-") : -len(".log")]))
                except ValueError:
                    continue
        return sorted(seqs)

    def _segment_path(self, first_seq: int) -> Path:
        return self._dir / f"seg-{first_seq:012d}.log"

    # ----------------------------------------------------------------- #
    # Writing
    # ----------------------------------------------------------------- #

    def open_segment(self, first_seq: int) -> None:
        """Start (or reopen for append) the segment beginning at ``first_seq``."""
        self.close()
        self._segment = self._segment_path(first_seq)
        self._handle = open(self._segment, "ab")

    def append(
        self, seq: int, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        """Durably journal one batch (fsync before returning)."""
        self._write_durably(_encode(seq, is_read, lba, length))

    def append_group(
        self, first_seq: int, counts: Sequence[int], payload: bytes
    ) -> None:
        """Durably journal a coalesced run of contiguous batches.

        ``payload`` is the byte concatenation of the batches' columnar
        payloads (:mod:`repro.service.wire` layout) and ``counts[i]`` the
        op count of batch ``first_seq + i``.  The whole group lands as one
        record under one CRC with **one** fsync — the group-commit write;
        recovery expands it back into per-batch records, so dedupe/gap
        semantics are unchanged.
        """
        k = len(counts)
        if k == 0:
            return
        counts_bytes = struct.pack(f"<{k}I", *counts)
        expected = sum(int(n) for n in counts) * (1 + 8 + 8)
        if len(payload) != expected:
            raise ValueError(
                f"group payload is {len(payload)} bytes; counts need {expected}"
            )
        crc = zlib.crc32(counts_bytes + payload)
        self._write_durably(
            _GROUP_HEADER.pack(_GROUP_MAGIC, first_seq, k, crc)
            + counts_bytes
            + payload
        )

    def append_refs(
        self, refs: Sequence[Tuple[int, str, int, int]]
    ) -> None:
        """Durably journal by-reference batches, one fsync for the run.

        ``refs`` is a sequence of ``(seq, key_hex, start, stop)``; each
        becomes its own tiny record, but the fsync is paid once (group
        commit for the ref wire).
        """
        if not refs:
            return
        blobs = []
        for seq, key, start, stop in refs:
            key_bytes = bytes.fromhex(key)
            if len(key_bytes) != _REF_KEY_BYTES:
                raise ValueError(f"pool key must be {_REF_KEY_BYTES} bytes hex, got {key!r}")
            blobs.append(
                _REF_HEADER.pack(
                    _REF_MAGIC, seq, start, stop, _ref_crc(key_bytes, start, stop)
                )
                + key_bytes
            )
        self._write_durably(b"".join(blobs))

    def _write_durably(self, blob: bytes) -> None:
        if self._handle is None:
            raise RuntimeError("journal segment not open; call open_segment first")
        self._handle.write(blob)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def rotate(self, next_seq: int) -> None:
        """Close the live segment and start ``seg-<next_seq>`` (post-checkpoint)."""
        self.open_segment(next_seq)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._segment = None

    # ----------------------------------------------------------------- #
    # Recovery
    # ----------------------------------------------------------------- #

    def replay_after(
        self, applied_seq: int
    ) -> Iterator[Union[JournalRecord, RefRecord]]:
        """Records with ``seq > applied_seq`` across segments, in order.

        Group records are expanded into their member batches; ref records
        are yielded as :class:`RefRecord` for the caller to resolve
        through its pool.

        Scans every segment that could contain such records (ascending),
        truncating torn tails as it goes.  Records at or below
        ``applied_seq`` — duplicates the checkpoint already absorbed — are
        skipped; a gap in the remainder raises, because it means a
        journal segment was lost and recovered stats could silently
        diverge (losing the *tail* is indistinguishable from a clean
        stop; losing a *middle* segment is not).
        """
        expected = applied_seq + 1
        for first_seq in self.segment_first_seqs():
            path = self._segment_path(first_seq)
            for record in _scan_segment(path, truncate_torn=True):
                if record.seq <= applied_seq:
                    continue
                if record.seq != expected:
                    raise ValueError(
                        f"journal gap: expected batch {expected}, "
                        f"found {record.seq} in {path.name}"
                    )
                expected += 1
                yield record

    def prune_below(self, first_seq_needed: int) -> None:
        """Delete whole segments no retained checkpoint can need.

        A segment is removable only when the *next* segment still covers
        ``first_seq_needed`` (i.e. its own range ends strictly below it).
        """
        seqs = self.segment_first_seqs()
        for first, nxt in zip(seqs, seqs[1:]):
            if nxt <= first_seq_needed:
                try:
                    self._segment_path(first).unlink()
                except OSError:
                    pass
