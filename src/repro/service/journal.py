"""Write-ahead op journal: the recovery half of checkpoint + journal.

Checkpoints are periodic; every batch *between* checkpoints must survive
``kill -9`` too, or recovered stats drift from the uninterrupted run.
The session therefore journals each batch — fsynced — **before** applying
it to the resident engine (classic WAL ordering): if the process dies
mid-apply, recovery replays the journaled batch on top of the restored
checkpoint and reaches the identical state; if it dies before the journal
write completes, the torn record is truncated away and the client (which
never got an acknowledgement) resends.

Record format, little-endian, self-delimiting::

    magic   u32   0x524A4C31 ("RJL1")
    seq     u64   batch sequence number (contiguous per tenant, from 1)
    n       u32   ops in the batch
    crc     u32   CRC-32 of the payload bytes
    payload       is_read u8[n] · lba i64[n] · length i64[n]

Torn tails are detected structurally (short header/payload) or by CRC and
truncated in place; anything before the tear is intact because each
record was fsynced before acknowledgement.

Segments: one append-only file per checkpoint epoch,
``<root>/journal/seg-<first_seq:012d>.log`` (named by the first batch seq
it may contain).  After a checkpoint at batch ``S`` the session rotates
to ``seg-<S+1>``; pruning keeps every segment that any *retained*
checkpoint might need, so falling back to the older checkpoint always
finds its tail.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

_MAGIC = 0x524A4C31
_HEADER = struct.Struct("<IQII")  # magic, seq, n, crc


class JournalRecord:
    """One journaled batch, decoded back to column arrays."""

    __slots__ = ("seq", "is_read", "lba", "length")

    def __init__(
        self, seq: int, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        self.seq = seq
        self.is_read = is_read
        self.lba = lba
        self.length = length

    def __len__(self) -> int:
        return len(self.lba)


def _encode(seq: int, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray) -> bytes:
    n = len(lba)
    payload = (
        np.ascontiguousarray(is_read, dtype=np.uint8).tobytes()
        + np.ascontiguousarray(lba, dtype=np.int64).tobytes()
        + np.ascontiguousarray(length, dtype=np.int64).tobytes()
    )
    return _HEADER.pack(_MAGIC, seq, n, zlib.crc32(payload)) + payload


def _decode_payload(seq: int, n: int, payload: bytes) -> JournalRecord:
    is_read = np.frombuffer(payload, dtype=np.uint8, count=n, offset=0).astype(bool)
    # Copy out of the (possibly unaligned) byte buffer.
    lba = np.array(np.frombuffer(payload, dtype=np.int64, count=n, offset=n))
    length = np.array(np.frombuffer(payload, dtype=np.int64, count=n, offset=9 * n))
    return JournalRecord(seq, is_read, lba, length)


def _scan_segment(path: Path, truncate_torn: bool) -> List[JournalRecord]:
    """Decode a segment, optionally truncating a torn/corrupt tail in place.

    Valid records strictly precede the first damaged byte (records are
    fsynced in order), so truncation never discards acknowledged data.
    """
    records: List[JournalRecord] = []
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    good_end = 0
    while offset + _HEADER.size <= len(data):
        magic, seq, n, crc = _HEADER.unpack_from(data, offset)
        payload_len = n * (1 + 8 + 8)
        end = offset + _HEADER.size + payload_len
        if magic != _MAGIC or end > len(data):
            break
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            break
        records.append(_decode_payload(seq, n, payload))
        offset = end
        good_end = end
    if truncate_torn and good_end < len(data):
        with open(path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
    return records


class OpJournal:
    """Per-session segmented WAL of op batches.

    Args:
        root: Session directory; segments live in ``root/journal``.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._dir = Path(root) / "journal"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._segment: Optional[Path] = None

    @property
    def directory(self) -> Path:
        return self._dir

    def segment_first_seqs(self) -> List[int]:
        seqs = []
        for entry in self._dir.iterdir():
            name = entry.name
            if name.startswith("seg-") and name.endswith(".log"):
                try:
                    seqs.append(int(name[len("seg-") : -len(".log")]))
                except ValueError:
                    continue
        return sorted(seqs)

    def _segment_path(self, first_seq: int) -> Path:
        return self._dir / f"seg-{first_seq:012d}.log"

    # ----------------------------------------------------------------- #
    # Writing
    # ----------------------------------------------------------------- #

    def open_segment(self, first_seq: int) -> None:
        """Start (or reopen for append) the segment beginning at ``first_seq``."""
        self.close()
        self._segment = self._segment_path(first_seq)
        self._handle = open(self._segment, "ab")

    def append(
        self, seq: int, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        """Durably journal one batch (fsync before returning)."""
        if self._handle is None:
            raise RuntimeError("journal segment not open; call open_segment first")
        self._handle.write(_encode(seq, is_read, lba, length))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def rotate(self, next_seq: int) -> None:
        """Close the live segment and start ``seg-<next_seq>`` (post-checkpoint)."""
        self.open_segment(next_seq)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._segment = None

    # ----------------------------------------------------------------- #
    # Recovery
    # ----------------------------------------------------------------- #

    def replay_after(self, applied_seq: int) -> Iterator[JournalRecord]:
        """Records with ``seq > applied_seq`` across segments, in order.

        Scans every segment that could contain such records (ascending),
        truncating torn tails as it goes.  Records at or below
        ``applied_seq`` — duplicates the checkpoint already absorbed — are
        skipped; a gap in the remainder raises, because it means a
        journal segment was lost and recovered stats could silently
        diverge (losing the *tail* is indistinguishable from a clean
        stop; losing a *middle* segment is not).
        """
        expected = applied_seq + 1
        for first_seq in self.segment_first_seqs():
            path = self._segment_path(first_seq)
            for record in _scan_segment(path, truncate_torn=True):
                if record.seq <= applied_seq:
                    continue
                if record.seq != expected:
                    raise ValueError(
                        f"journal gap: expected batch {expected}, "
                        f"found {record.seq} in {path.name}"
                    )
                expected += 1
                yield record

    def prune_below(self, first_seq_needed: int) -> None:
        """Delete whole segments no retained checkpoint can need.

        A segment is removable only when the *next* segment still covers
        ``first_seq_needed`` (i.e. its own range ends strictly below it).
        """
        seqs = self.segment_first_seqs()
        for first, nxt in zip(seqs, seqs[1:]):
            if nxt <= first_seq_needed:
                try:
                    self._segment_path(first).unlink()
                except OSError:
                    pass
