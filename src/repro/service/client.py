"""Blocking client for the replay daemon's newline-JSON protocol.

Small on purpose: a socket, a line reader, and the two behaviours a
streaming client actually needs —

* **Sequencing.**  :meth:`ReplayClient.apply` numbers batches itself
  (contiguous from the session's last acknowledged seq), so callers just
  hand over op columns.
* **Resync.**  After a reconnect, a shed batch, or a duplicated/delayed
  send (the chaos schedule produces all three),
  :meth:`apply_with_retry` re-queries the server's ``applied`` seq and
  resends from there — the server's dedupe/gap checks make this safe to
  repeat arbitrarily.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Optional

import numpy as np

from repro.core.config import TechniqueConfig, config_to_dict


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (non-shed, non-gap)."""

    def __init__(self, response: dict) -> None:
        super().__init__(str(response.get("error", response)))
        self.response = response


class ReplayClient:
    """One tenant's connection to a running daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        timeout_s: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._file = None
        self.next_seq = 1

    # ----------------------------------------------------------------- #
    # Transport
    # ----------------------------------------------------------------- #

    def connect(self) -> "ReplayClient":
        self.close_socket()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._file = self._sock.makefile("rwb")
        return self

    def close_socket(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ReplayClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close_socket()

    def request(self, payload: dict) -> dict:
        if self._file is None:
            self.connect()
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    # ----------------------------------------------------------------- #
    # Session operations
    # ----------------------------------------------------------------- #

    def open(self, config: TechniqueConfig, capacity_sectors: int) -> dict:
        """Open (or re-attach to) this tenant's session; syncs next_seq."""
        response = self.request(
            {
                "op": "open",
                "tenant": self.tenant,
                "config": config_to_dict(config),
                "capacity_sectors": int(capacity_sectors),
            }
        )
        if not response.get("ok"):
            raise ServiceError(response)
        self.next_seq = int(response.get("applied_seq", 0)) + 1
        return response

    def apply(
        self,
        is_read: np.ndarray,
        lba: np.ndarray,
        length: np.ndarray,
        seq: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Send one batch at ``seq`` (default: the next unacknowledged)."""
        seq = self.next_seq if seq is None else seq
        payload = {
            "op": "apply",
            "tenant": self.tenant,
            "seq": seq,
            "ops": {
                "is_read": np.asarray(is_read, dtype=bool).astype(int).tolist(),
                "lba": np.asarray(lba, dtype=np.int64).tolist(),
                "length": np.asarray(length, dtype=np.int64).tolist(),
            },
        }
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        response = self.request(payload)
        if response.get("ok"):
            self.next_seq = max(self.next_seq, seq + 1)
        return response

    def applied_seq(self) -> int:
        result = self.query("applied")
        return int(result["applied_seq"])

    def apply_with_retry(
        self,
        is_read: np.ndarray,
        lba: np.ndarray,
        length: np.ndarray,
        max_attempts: int = 8,
        backoff_s: float = 0.05,
        sleep=time.sleep,
    ) -> dict:
        """Deliver one batch come what may (shed, gap, crash, reconnect).

        Sheds back off and resend; gaps resync ``next_seq`` from the
        server and resend; transport errors reconnect.  Duplicate acks
        count as success (the batch landed, the ack got lost).
        """
        seq = self.next_seq
        for attempt in range(max_attempts):
            try:
                response = self.apply(is_read, lba, length, seq=seq)
            except (ConnectionError, OSError):
                sleep(backoff_s * (attempt + 1))
                try:
                    self.connect()
                    applied = self.applied_seq()
                except (ConnectionError, OSError, ServiceError):
                    continue
                if applied >= seq:
                    # The batch landed; only the ack was lost.
                    self.next_seq = max(self.next_seq, applied + 1)
                    return {"ok": True, "seq": seq, "applied_seq": applied,
                            "duplicate": True}
                continue
            if response.get("ok"):
                return response
            if response.get("shed"):
                sleep(backoff_s * (attempt + 1))
                continue
            if response.get("kind") == "SequenceGapError":
                # A delayed/duplicated earlier send confused the order;
                # trust the server's applied seq and renumber.
                seq = int(response["expected"])
                self.next_seq = seq
                continue
            raise ServiceError(response)
        raise TimeoutError(
            f"batch not delivered after {max_attempts} attempts "
            f"(tenant {self.tenant!r}, seq {seq})"
        )

    def query(self, kind: str, **params) -> dict:
        payload = {"op": "query", "tenant": self.tenant, "kind": kind}
        if params:
            payload["params"] = params
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(response)
        return response["result"]

    def checkpoint(self) -> dict:
        response = self.request({"op": "checkpoint", "tenant": self.tenant})
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    def close_session(self) -> dict:
        response = self.request({"op": "close", "tenant": self.tenant})
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    def shutdown_daemon(self) -> dict:
        return self.request({"op": "shutdown"})
