"""Blocking client for the replay daemon's protocol.

Small on purpose: a socket, a line reader, and the behaviours a
streaming client actually needs —

* **Sequencing.**  :meth:`ReplayClient.apply` numbers batches itself
  (contiguous from the session's last acknowledged seq), so callers just
  hand over op columns.
* **Resync.**  After a reconnect, a shed batch, or a duplicated/delayed
  send (the chaos schedule produces all three),
  :meth:`apply_with_retry` re-queries the server's ``applied`` seq and
  resends from there — the server's dedupe/gap checks make this safe to
  repeat arbitrarily.
* **Negotiation.**  :meth:`open` asks the daemon (``hello``) which wires
  it speaks and picks the best one: ``"bin"`` sends each batch as one
  framed columnar buffer (:mod:`repro.service.wire`), ``"json"`` is the
  per-op fallback for old daemons.  Force either with
  ``ReplayClient(..., wire="json")``.
* **Pipelining.**  :meth:`apply_stream` keeps a window of batches in
  flight on one socket (responses come back in request order) — this is
  what lets the daemon's dispatcher find contiguous queued batches to
  coalesce into group commits.  Sheds, gaps, and reconnects resync
  exactly like :meth:`apply_with_retry`.
"""

from __future__ import annotations

import json
import socket
import time
from collections import deque
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.config import TechniqueConfig, config_to_dict
from repro.service.wire import (
    WIRE_BINARY,
    WIRE_JSON,
    WIRE_REF,
    encode_payload,
    payload_crc,
)


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (non-shed, non-gap)."""

    def __init__(self, response: dict) -> None:
        super().__init__(str(response.get("error", response)))
        self.response = response


class ReplayClient:
    """One tenant's connection to a running daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        timeout_s: float = 60.0,
        wire: str = "auto",
    ) -> None:
        if wire not in ("auto", WIRE_BINARY, WIRE_JSON):
            raise ValueError(f"wire must be 'auto', 'bin' or 'json', got {wire!r}")
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._file = None
        self.next_seq = 1
        self._requested_wire = wire
        #: Wire negotiated at :meth:`open` ("bin" or "json").
        self.wire = WIRE_JSON if wire == "auto" else wire
        #: Wires the daemon offered in its hello (after :meth:`open`).
        self.offered_wires: Tuple[str, ...] = ()

    # ----------------------------------------------------------------- #
    # Transport
    # ----------------------------------------------------------------- #

    def connect(self) -> "ReplayClient":
        self.close_socket()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._file = self._sock.makefile("rwb")
        return self

    def close_socket(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ReplayClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close_socket()

    def request(self, payload: dict) -> dict:
        if self._file is None:
            self.connect()
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    # ----------------------------------------------------------------- #
    # Session operations
    # ----------------------------------------------------------------- #

    def hello(self) -> Tuple[str, ...]:
        """Ask the daemon which wires it speaks (empty for old daemons)."""
        try:
            response = self.request({"op": "hello"})
        except (ConnectionError, OSError):
            return ()
        if not response.get("ok"):
            return ()
        return tuple(response.get("wires", ()))

    def negotiate(self) -> str:
        """Resolve ``wire="auto"`` against the daemon's hello; sets
        :attr:`wire` and returns it."""
        self.offered_wires = self.hello()
        if self._requested_wire == "auto":
            self.wire = (
                WIRE_BINARY if WIRE_BINARY in self.offered_wires else WIRE_JSON
            )
        else:
            self.wire = self._requested_wire
        return self.wire

    def open(self, config: TechniqueConfig, capacity_sectors: int) -> dict:
        """Open (or re-attach to) this tenant's session; negotiates the
        wire and syncs next_seq."""
        self.negotiate()
        response = self.request(
            {
                "op": "open",
                "tenant": self.tenant,
                "config": config_to_dict(config),
                "capacity_sectors": int(capacity_sectors),
            }
        )
        if not response.get("ok"):
            raise ServiceError(response)
        self.next_seq = int(response.get("applied_seq", 0)) + 1
        return response

    # -- batch encoding ------------------------------------------------ #

    def _apply_frame(
        self,
        is_read: np.ndarray,
        lba: np.ndarray,
        length: np.ndarray,
        seq: int,
        deadline_s: Optional[float],
    ) -> bytes:
        """One apply request as raw socket bytes (header [+ payload])."""
        if self.wire == WIRE_BINARY:
            payload = encode_payload(
                np.asarray(is_read, dtype=bool),
                np.asarray(lba, dtype=np.int64),
                np.asarray(length, dtype=np.int64),
            )
            header = {
                "op": "apply",
                "tenant": self.tenant,
                "seq": seq,
                "wire": WIRE_BINARY,
                "n": int(len(lba)),
                "crc": payload_crc(payload),
            }
            if deadline_s is not None:
                header["deadline_s"] = deadline_s
            return json.dumps(header).encode("utf-8") + b"\n" + payload
        header = {
            "op": "apply",
            "tenant": self.tenant,
            "seq": seq,
            "ops": {
                "is_read": np.asarray(is_read, dtype=bool).astype(int).tolist(),
                "lba": np.asarray(lba, dtype=np.int64).tolist(),
                "length": np.asarray(length, dtype=np.int64).tolist(),
            },
        }
        if deadline_s is not None:
            header["deadline_s"] = deadline_s
        return json.dumps(header).encode("utf-8") + b"\n"

    def _read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def apply(
        self,
        is_read: np.ndarray,
        lba: np.ndarray,
        length: np.ndarray,
        seq: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Send one batch at ``seq`` (default: the next unacknowledged)."""
        seq = self.next_seq if seq is None else seq
        if self._file is None:
            self.connect()
        self._file.write(self._apply_frame(is_read, lba, length, seq, deadline_s))
        self._file.flush()
        response = self._read_response()
        if response.get("ok"):
            self.next_seq = max(self.next_seq, seq + 1)
        return response

    def apply_ref(
        self,
        key: str,
        start: int,
        stop: int,
        seq: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Apply ops ``[start, stop)`` of shared-pool entry ``key`` by
        reference — no op bytes cross the wire or enter the WAL."""
        seq = self.next_seq if seq is None else seq
        header = {
            "op": "apply",
            "tenant": self.tenant,
            "seq": seq,
            "wire": WIRE_REF,
            "key": key,
            "start": int(start),
            "stop": int(stop),
        }
        if deadline_s is not None:
            header["deadline_s"] = deadline_s
        response = self.request(header)
        if response.get("ok"):
            self.next_seq = max(self.next_seq, seq + 1)
        return response

    def applied_seq(self) -> int:
        result = self.query("applied")
        return int(result["applied_seq"])

    def apply_with_retry(
        self,
        is_read: np.ndarray,
        lba: np.ndarray,
        length: np.ndarray,
        max_attempts: int = 8,
        backoff_s: float = 0.05,
        sleep=time.sleep,
    ) -> dict:
        """Deliver one batch come what may (shed, gap, crash, reconnect).

        Sheds back off and resend; gaps resync ``next_seq`` from the
        server and resend; transport errors reconnect.  Duplicate acks
        count as success (the batch landed, the ack got lost).
        """
        seq = self.next_seq
        for attempt in range(max_attempts):
            try:
                response = self.apply(is_read, lba, length, seq=seq)
            except (ConnectionError, OSError):
                sleep(backoff_s * (attempt + 1))
                try:
                    self.connect()
                    applied = self.applied_seq()
                except (ConnectionError, OSError, ServiceError):
                    continue
                if applied >= seq:
                    # The batch landed; only the ack was lost.
                    self.next_seq = max(self.next_seq, applied + 1)
                    return {"ok": True, "seq": seq, "applied_seq": applied,
                            "duplicate": True}
                continue
            if response.get("ok"):
                return response
            if response.get("shed"):
                sleep(backoff_s * (attempt + 1))
                continue
            if response.get("kind") == "SequenceGapError":
                # A delayed/duplicated earlier send confused the order;
                # trust the server's applied seq and renumber.
                seq = int(response["expected"])
                self.next_seq = seq
                continue
            raise ServiceError(response)
        raise TimeoutError(
            f"batch not delivered after {max_attempts} attempts "
            f"(tenant {self.tenant!r}, seq {seq})"
        )

    def apply_stream(
        self,
        batches: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        window: int = 32,
        on_ack: Optional[Callable[[dict], None]] = None,
        max_attempts: int = 8,
        backoff_s: float = 0.05,
        sleep=time.sleep,
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Deliver a whole stream of batches with ``window`` in flight.

        Writes up to ``window`` apply requests ahead of the responses on
        one socket (the daemon answers in request order), which is what
        gives the daemon's dispatcher contiguous queued batches to
        coalesce into group commits.  Only unacknowledged batches are
        retained, so ``batches`` may be a generator of any length.

        Failures resync exactly like :meth:`apply_with_retry`: on a shed,
        a sequence gap, or a transport error the client reconnects,
        queries the server's ``applied`` seq, and resumes from the first
        unacknowledged batch — dedupe makes overlap harmless.
        ``max_attempts`` bounds *consecutive* resyncs without progress.

        Returns ``{"ok", "batches", "applied_seq", "resyncs",
        "duplicate_acks"}``.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        it = iter(batches)
        base = self.next_seq
        buffered: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        next_fetch = 0
        exhausted = False

        def fetch(idx: int):
            nonlocal next_fetch, exhausted
            while next_fetch <= idx and not exhausted:
                try:
                    r, l, n = next(it)
                except StopIteration:
                    exhausted = True
                    break
                buffered[next_fetch] = (
                    np.asarray(r, dtype=bool),
                    np.asarray(l, dtype=np.int64),
                    np.asarray(n, dtype=np.int64),
                )
                next_fetch += 1
            return buffered.get(idx)

        acked_idx = -1
        next_idx = 0
        inflight: deque = deque()
        attempts = 0
        resyncs = 0
        duplicates = 0

        def note_ack(response: dict, idx: int) -> None:
            nonlocal acked_idx, duplicates
            if response.get("duplicate"):
                duplicates += 1
            applied = int(response.get("applied_seq", base + idx))
            new_acked = max(acked_idx, idx, applied - base)
            for i in range(acked_idx + 1, new_acked + 1):
                buffered.pop(i, None)
            acked_idx = new_acked

        def resync() -> None:
            # Reconnect fresh (discards any stale pipelined responses),
            # trust the server's applied seq, resume after it.
            nonlocal next_idx, acked_idx, attempts, resyncs
            inflight.clear()
            resyncs += 1
            while True:
                attempts += 1
                if attempts > max_attempts:
                    raise TimeoutError(
                        f"stream stalled after {max_attempts} resync "
                        f"attempts (tenant {self.tenant!r}, "
                        f"seq {base + acked_idx + 1})"
                    )
                sleep(backoff_s * attempts)
                try:
                    self.connect()
                    applied = self.applied_seq()
                    break
                except (ConnectionError, OSError, ServiceError):
                    continue
            new_acked = max(acked_idx, applied - base)
            for i in range(acked_idx + 1, new_acked + 1):
                buffered.pop(i, None)
            acked_idx = new_acked
            next_idx = acked_idx + 1

        if self._file is None:
            self.connect()
        while True:
            try:
                wrote = False
                while len(inflight) < window:
                    batch = fetch(next_idx)
                    if batch is None:
                        break
                    self._file.write(
                        self._apply_frame(
                            batch[0], batch[1], batch[2],
                            base + next_idx, deadline_s,
                        )
                    )
                    inflight.append(next_idx)
                    next_idx += 1
                    wrote = True
                if wrote:
                    self._file.flush()
                if not inflight:
                    break
                response = self._read_response()
                idx = inflight.popleft()
            except (ConnectionError, OSError):
                resync()
                continue
            if response.get("ok"):
                attempts = 0
                note_ack(response, idx)
                if on_ack is not None:
                    on_ack(response)
                continue
            if response.get("shed") or response.get("kind") == "SequenceGapError":
                resync()
                continue
            raise ServiceError(response)
        self.next_seq = max(self.next_seq, base + acked_idx + 1)
        return {
            "ok": True,
            "batches": acked_idx + 1,
            "applied_seq": base + acked_idx,
            "resyncs": resyncs,
            "duplicate_acks": duplicates,
        }

    def query(self, kind: str, **params) -> dict:
        payload = {"op": "query", "tenant": self.tenant, "kind": kind}
        if params:
            payload["params"] = params
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(response)
        return response["result"]

    def checkpoint(self) -> dict:
        response = self.request({"op": "checkpoint", "tenant": self.tenant})
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    def close_session(self) -> dict:
        response = self.request({"op": "close", "tenant": self.tenant})
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    def shutdown_daemon(self) -> dict:
        return self.request({"op": "shutdown"})
