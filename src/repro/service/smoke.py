"""Self-contained chaos smoke run for the streaming daemon.

One call boots the whole stack and puts the headline robustness claims
through their paces, in-process and deterministic:

1. Start a :class:`~repro.service.daemon.ReplayDaemon` on a free port
   (own event loop in a background thread).
2. Stream three concurrent tenants — different technique configs,
   ~10k ops total — through real sockets: two on the **pipelined binary
   wire** (so the daemon coalesces their batches into group commits,
   and the chaos below lands with a window of batches in flight), one
   on the sequential JSON fallback (the PR 6 reference path).
3. Mid-stream, ``SIGKILL`` one tenant's worker (supervised restart +
   WAL recovery, including group-committed records) and, for another,
   force a checkpoint, corrupt it on disk, then kill that worker too
   (restart must *fall back* to the previous checkpoint and replay the
   longer journal tail).
4. Drain the streams, then compare every tenant's live stats, SAF and
   fragment CDF against an offline one-shot replay of the same op
   stream — they must match **exactly**.
5. Shut the daemon down cleanly (every session checkpoints).

Used by ``make serve-smoke`` and wrapped with a hard watchdog in
``tests/test_serve_smoke.py``.  Returns a small summary dict so callers
can print or assert on it.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.analysis.incremental import fragment_cdf_from_hist
from repro.core.batch import IncrementalBatchReplay
from repro.core.config import (
    LS,
    LS_CACHE,
    LS_DEFRAG,
    TechniqueConfig,
    build_translator_for_base,
)
from repro.faults.service_faults import corrupt_newest_checkpoint, kill_worker
from repro.service.client import ReplayClient
from repro.service.daemon import DaemonConfig
from repro.service.harness import DaemonThread
from repro.service.supervisor import SupervisorConfig
from repro.workloads.generator import generate_workload
from repro.workloads.table1 import get_spec

#: (tenant, workload, config, wire) — alpha/bravo stream the pipelined
#: binary wire (coalesced group commits take the chaos hits), charlie
#: exercises the negotiated JSON fallback.
_TENANTS = (
    ("alpha", "usr_0", LS, "bin"),
    ("bravo", "hm_1", LS_DEFRAG, "bin"),
    ("charlie", "src2_2", LS_CACHE, "json"),
)


class _DaemonThread(DaemonThread):
    """The smoke/test-suite daemon: small queues, fast checkpoints."""

    def __init__(self, root: Path) -> None:
        super().__init__(
            root,
            config=DaemonConfig(port=0, queue_depth=8, deadline_s=30.0),
            supervisor_config=SupervisorConfig(
                backoff_base_s=0.01,
                backoff_cap_s=0.1,
                call_timeout_s=60.0,
                checkpoint_interval_ops=1200,
            ),
        )


def _tenant_stream(workload: str, ops: int):
    """Deterministic op columns for one tenant, ~`ops` operations."""
    spec = get_spec(workload)
    scale = max(ops / max(1, spec.total_ops), 0.001)
    trace = generate_workload(spec, seed=11, scale=scale)
    is_read, lba, length = trace.as_arrays()
    return is_read[:ops], lba[:ops], length[:ops], int(trace.max_end)


def _offline_reference(
    config: TechniqueConfig, capacity: int, is_read, lba, length
) -> IncrementalBatchReplay:
    engine = IncrementalBatchReplay(
        build_translator_for_base(capacity, config), track_fragments=True
    )
    engine.feed_arrays(is_read, lba, length)
    return engine


def run_smoke(
    root: Union[str, Path],
    ops_per_tenant: int = 3400,
    batch_ops: int = 200,
    verbose: bool = False,
) -> Dict[str, dict]:
    """Boot, stream, injure, recover, verify, shut down.  See module docs.

    Raises ``AssertionError`` if any tenant's recovered stats diverge
    from the offline reference, or if shutdown is unclean.
    """
    root = Path(root)
    streams = {
        tenant: _tenant_stream(workload, ops_per_tenant)
        for tenant, workload, _, _ in _TENANTS
    }
    server = _DaemonThread(root)
    port = server.start()
    say = print if verbose else (lambda *_: None)
    say(f"daemon up on 127.0.0.1:{port}")

    errors: List[BaseException] = []
    halfway = {tenant: threading.Event() for tenant, _, _, _ in _TENANTS}
    resume = {tenant: threading.Event() for tenant, _, _, _ in _TENANTS}

    def stream_tenant(tenant: str, config: TechniqueConfig, wire: str) -> None:
        try:
            is_read, lba, length, capacity = streams[tenant]
            with ReplayClient("127.0.0.1", port, tenant, wire=wire) as client:
                client.open(config, capacity)
                assert client.wire == wire, (client.wire, wire)
                n = len(lba)
                if wire == "bin":
                    # Pipelined binary stream: the generator holds at
                    # halfway (with a window of batches still in flight)
                    # so chaos lands mid-group, then resumes.
                    def batch_gen():
                        paused = False
                        for start in range(0, n, batch_ops):
                            end = min(start + batch_ops, n)
                            yield (
                                is_read[start:end],
                                lba[start:end],
                                length[start:end],
                            )
                            if not paused and end * 2 >= n:
                                paused = True
                                halfway[tenant].set()
                                resume[tenant].wait(timeout=120)

                    client.apply_stream(batch_gen(), window=8)
                else:
                    paused = False
                    for start in range(0, n, batch_ops):
                        end = min(start + batch_ops, n)
                        client.apply_with_retry(
                            is_read[start:end], lba[start:end], length[start:end]
                        )
                        if not paused and end * 2 >= n:
                            # Hold here so the chaos injection happens at
                            # a known point in the stream, not racing it.
                            paused = True
                            halfway[tenant].set()
                            resume[tenant].wait(timeout=120)
                assert client.applied_seq() == client.next_seq - 1
        except BaseException as exc:  # surfaced by the main thread
            halfway[tenant].set()
            errors.append(exc)

    threads = [
        threading.Thread(
            target=stream_tenant, args=(tenant, config, wire), daemon=True
        )
        for tenant, _, config, wire in _TENANTS
    ]
    for thread in threads:
        thread.start()

    resume["charlie"].set()  # charlie streams straight through, uninjured

    # Chaos 1: SIGKILL alpha's worker while its client is held at halfway;
    # the next apply finds the worker dead, and the supervisor restarts it
    # (WAL recovery) transparently.
    assert halfway["alpha"].wait(timeout=120), "alpha never reached halfway"
    if not errors:
        pid = server.daemon.supervisor.worker_pid("alpha")
        if pid is not None:
            say(f"chaos: kill -9 alpha worker (pid {pid})")
            kill_worker(pid)
    resume["alpha"].set()

    # Chaos 2: force a bravo checkpoint, corrupt it on disk, then kill the
    # worker — recovery must reject the damaged checkpoint and fall back
    # to the previous one plus a longer journal tail.
    assert halfway["bravo"].wait(timeout=120), "bravo never reached halfway"
    if not errors:
        with ReplayClient("127.0.0.1", port, "bravo") as chaos_client:
            chaos_client.checkpoint()
        damaged = corrupt_newest_checkpoint(
            server.daemon.supervisor.tenant_root("bravo"), seed=13
        )
        say(f"chaos: corrupted {damaged}")
        pid = server.daemon.supervisor.worker_pid("bravo")
        if pid is not None:
            say(f"chaos: kill -9 bravo worker (pid {pid})")
            kill_worker(pid)
    resume["bravo"].set()

    deadline = time.monotonic() + 300
    for thread in threads:
        thread.join(timeout=max(1.0, deadline - time.monotonic()))
        assert not thread.is_alive(), "tenant stream did not finish"
    if errors:
        raise errors[0]

    # Verify: live state must equal the offline one-shot replay exactly.
    summary: Dict[str, dict] = {}
    for tenant, _, config, _wire in _TENANTS:
        is_read, lba, length, capacity = streams[tenant]
        reference = _offline_reference(config, capacity, is_read, lba, length)
        ref_stats = reference.stats()
        with ReplayClient("127.0.0.1", port, tenant) as client:
            live = client.query("stats")
            saf = client.query("saf")
            cdf = client.query("fragment_cdf")["points"]
        for field, expected in (
            (f, getattr(ref_stats, f)) for f in ref_stats.__dataclass_fields__
        ):
            assert live[field] == expected, (
                f"{tenant}: {field} diverged after chaos: "
                f"live={live[field]} offline={expected}"
            )
        expected_cdf = [
            list(point) for point in fragment_cdf_from_hist(reference.fragment_hist)
        ]
        assert [list(p) for p in cdf] == expected_cdf, f"{tenant}: fragment CDF diverged"
        summary[tenant] = {
            "ops": int(live["reads"] + live["writes"]),
            "read_seeks": int(live["read_seeks"]),
            "saf_total": saf["total"],
            "restarts": server.daemon.supervisor.restart_count(tenant),
        }
        say(f"{tenant}: {summary[tenant]}")

    assert summary["alpha"]["restarts"] >= 1, "alpha worker was never restarted"
    assert summary["bravo"]["restarts"] >= 1, "bravo worker was never restarted"

    server.stop()
    say("clean shutdown ✓")
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="service state dir (default: temp)")
    parser.add_argument("--ops", type=int, default=3400, help="ops per tenant")
    args = parser.parse_args(argv)
    if args.root is not None:
        summary = run_smoke(args.root, ops_per_tenant=args.ops, verbose=True)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
            summary = run_smoke(tmp, ops_per_tenant=args.ops, verbose=True)
    print("serve-smoke OK:", {t: s["saf_total"] for t, s in summary.items()})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
