"""Content-checksummed session checkpoints.

A checkpoint captures a session's **complete** resident state — the
replay engine's serializable kernel state (counters, translator extent
map, technique state, head position), the incremental analysis summaries,
and the last applied batch sequence number — as one entry directory
committed with the temp-dir + fsync + atomic-rename discipline of
:func:`repro.util.npystore.commit_entry_dir`.  A crash can therefore
never leave a half-written checkpoint *visible*: either the rename
happened and the entry is whole, or it didn't and the previous checkpoint
stands.

Atomic commit alone does not defend against **post-commit corruption**
(bad sector, truncation, the chaos harness flipping bytes): a damaged
``.npy`` payload can still parse cleanly and load wrong numbers.  Every
checkpoint therefore carries a SHA-256 over its canonical JSON state and
the raw bytes of every array, verified on load;
:meth:`CheckpointStore.load_latest` deletes entries that fail the check
(or fail to parse at all) and falls back to the previous checkpoint — the
journal tail (:mod:`repro.service.journal`) then re-derives whatever the
lost checkpoint had absorbed.

Layout: ``<root>/checkpoints/ckpt-<seq:012d>/`` where ``seq`` is the last
applied batch sequence number; :data:`KEEP_CHECKPOINTS` newest entries are
retained so single-checkpoint damage is always survivable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.util.npystore import commit_entry_dir, load_mmap_npy, remove_entry

#: Checkpoints retained per session.  Two, not one: the newest may be
#: corrupted after commit, and recovery then needs its predecessor (plus
#: the journal tail) to reach the same final state.
KEEP_CHECKPOINTS = 2

_ARRAY_MARKER = "__npy__"


class CheckpointCorruptError(Exception):
    """A checkpoint entry failed structural or checksum validation."""


def _split_arrays(state, path: str, arrays: Dict[str, np.ndarray]):
    """Replace every ndarray leaf with a marker; collect them by path key.

    The session state is nested dicts/lists of scalars with numpy arrays
    at the leaves (extent-map columns, undrained distances).  JSON gets
    the scalar skeleton; each array becomes its own page-aligned ``.npy``
    so large extent maps are stored zero-copy-loadable, not JSON-encoded.
    """
    if isinstance(state, np.ndarray):
        key = _sanitize_key(f"a{len(arrays)}_{path}")
        arrays[key] = state
        return {_ARRAY_MARKER: key}
    if isinstance(state, dict):
        return {
            k: _split_arrays(v, f"{path}.{k}" if path else str(k), arrays)
            for k, v in state.items()
        }
    if isinstance(state, (list, tuple)):
        return [_split_arrays(v, f"{path}{i}", arrays) for i, v in enumerate(state)]
    if isinstance(state, (np.integer,)):
        return int(state)
    if isinstance(state, (np.floating,)):
        return float(state)
    return state


def _join_arrays(state, arrays: Dict[str, np.ndarray]):
    if isinstance(state, dict):
        if set(state.keys()) == {_ARRAY_MARKER}:
            key = state[_ARRAY_MARKER]
            if key not in arrays:
                raise CheckpointCorruptError(f"missing array payload {key!r}")
            return arrays[key]
        return {k: _join_arrays(v, arrays) for k, v in state.items()}
    if isinstance(state, list):
        return [_join_arrays(v, arrays) for v in state]
    return state


def _checksum(payload_json: str, arrays: Dict[str, np.ndarray]) -> str:
    digest = hashlib.sha256()
    digest.update(payload_json.encode("utf-8"))
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _sanitize_key(key: str) -> str:
    return "".join(c if (c.isalnum() or c in "._-") else "_" for c in key)


class CheckpointStore:
    """Numbered, checksummed, self-healing checkpoints for one session.

    Args:
        root: Session directory; checkpoints live in ``root/checkpoints``.
        keep: Newest entries retained (older ones pruned after commit).
    """

    def __init__(self, root: Union[str, Path], keep: int = KEEP_CHECKPOINTS) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._dir = Path(root) / "checkpoints"
        self._keep = keep

    @property
    def directory(self) -> Path:
        return self._dir

    def entry_path(self, seq: int) -> Path:
        return self._dir / f"ckpt-{seq:012d}"

    def sequence_numbers(self) -> List[int]:
        """Applied-batch seqs of the published checkpoints, ascending."""
        if not self._dir.is_dir():
            return []
        seqs = []
        for entry in self._dir.iterdir():
            name = entry.name
            if name.startswith("ckpt-") and not name.endswith(".tmp"):
                try:
                    seqs.append(int(name[len("ckpt-") :]))
                except ValueError:
                    continue
        return sorted(seqs)

    def save(self, seq: int, state: dict) -> Path:
        """Commit ``state`` as the checkpoint after batch ``seq``; prune."""
        if seq < 0:
            raise ValueError(f"seq must be >= 0, got {seq}")
        arrays: Dict[str, np.ndarray] = {}
        skeleton = _split_arrays(state, "", arrays)
        payload_json = json.dumps(skeleton, sort_keys=True)
        header = {
            "kind": "repro-session-checkpoint",
            "seq": seq,
            "state": skeleton,
            "sha256": _checksum(payload_json, arrays),
        }
        path, _won = commit_entry_dir(self.entry_path(seq), arrays, header)
        self._prune()
        return path

    def load(self, seq: int) -> dict:
        """Load and verify the checkpoint at ``seq``.

        Raises :class:`CheckpointCorruptError` on any structural damage or
        checksum mismatch (the entry is left in place; callers decide).
        """
        entry = self.entry_path(seq)
        try:
            with open(entry / "header.json") as handle:
                header = json.load(handle)
            if header.get("kind") != "repro-session-checkpoint":
                raise CheckpointCorruptError(f"{entry}: foreign entry")
            if int(header.get("seq", -1)) != seq:
                raise CheckpointCorruptError(f"{entry}: header seq mismatch")
            skeleton = header["state"]
            arrays = {}
            for npy in sorted(entry.glob("*.npy")):
                # Materialize: the mmap view must not outlive entry pruning.
                arrays[npy.stem] = np.array(load_mmap_npy(npy))
        except CheckpointCorruptError:
            raise
        except Exception as exc:  # torn files, bad JSON, missing members
            raise CheckpointCorruptError(f"{entry}: unreadable ({exc})") from exc
        payload_json = json.dumps(skeleton, sort_keys=True)
        expected = header.get("sha256")
        actual = _checksum(payload_json, arrays)
        if actual != expected:
            raise CheckpointCorruptError(
                f"{entry}: checksum mismatch ({actual[:12]} != {str(expected)[:12]})"
            )
        return _join_arrays(skeleton, arrays)

    def load_latest(self) -> Optional[Tuple[int, dict]]:
        """Newest checkpoint that verifies, deleting ones that don't.

        Returns ``(seq, state)``, or None when no valid checkpoint exists
        (fresh session, or every entry destroyed — the journal then
        replays from batch one).
        """
        for seq in reversed(self.sequence_numbers()):
            try:
                return seq, self.load(seq)
            except CheckpointCorruptError:
                # Self-heal: a damaged entry is worse than no entry — it
                # would mask the good predecessor on every future boot.
                remove_entry(self.entry_path(seq))
        return None

    def _prune(self) -> None:
        for seq in self.sequence_numbers()[: -self._keep]:
            remove_entry(self.entry_path(seq))
