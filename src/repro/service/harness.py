"""In-process daemon harness: a real daemon on its own background loop.

Everything that needs a live :class:`~repro.service.daemon.ReplayDaemon`
without owning the process — the chaos smoke run, the daemon test suite,
the load harness, the serving benchmarks — boots one of these: a real
TCP server on a free port, its asyncio loop isolated in a daemon thread,
with :meth:`DaemonThread.stop` performing the clean every-session
checkpoint shutdown.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Optional, Union

from repro.service.daemon import DaemonConfig, ReplayDaemon
from repro.service.supervisor import SupervisorConfig


class DaemonThread:
    """A daemon with its own event loop in a background thread."""

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[DaemonConfig] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.daemon = ReplayDaemon(
            Path(root),
            config=config or DaemonConfig(port=0),
            supervisor_config=supervisor_config,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-daemon-thread", daemon=True
        )
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.daemon.start())
        self._started.set()
        self._loop.run_forever()

    def start(self) -> int:
        """Boot the daemon; returns the bound port."""
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("daemon failed to start within 30s")
        return self.daemon.port

    def stop(self) -> None:
        """Clean shutdown: every session checkpoints, loop torn down."""
        future = asyncio.run_coroutine_threadsafe(self.daemon.stop(), self._loop)
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
