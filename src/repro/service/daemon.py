"""Asyncio front end: many clients, per-tenant queues, deadline shedding.

The daemon is the concurrency boundary of the service.  Everything below
it is blocking and single-threaded-per-tenant (a supervisor call holds
the tenant's lock while the worker computes); everything above it is a
TCP conversation of newline-JSON headers with optional out-of-line
binary payloads.  The shape:

* One reader task per client connection parses requests and dispatches
  each as its own task; one writer task per connection sends responses
  back in strict request order (FIFO), so clients may **pipeline** —
  keep many requests in flight on one socket — and still match
  responses positionally.  In-flight requests per connection are
  bounded (:attr:`DaemonConfig.pipeline_depth`).
* One **bounded** :class:`asyncio.Queue` plus one dispatcher task per
  tenant.  The dispatcher pops a request, checks its deadline, and runs
  the supervisor call in the shared thread pool — so one slow tenant
  occupies one pool thread, not the event loop, and ops for a tenant
  stay strictly ordered.

Wire formats (negotiated via the ``hello`` op, see
:mod:`repro.service.wire`): ``"json"`` applies carry per-op lists in the
header line (the PR 6 path, kept verbatim as the compatibility fallback);
``"bin"`` applies carry a framed columnar payload after the header line,
CRC-checked at admission; ``"ref"`` applies name an op range inside the
shared content-addressed pool and carry no op bytes at all.

**Coalescing + group commit:** when a tenant's dispatcher pops a
binary/ref apply and more contiguous same-wire applies are already
queued behind it, it merges them — up to
:attr:`DaemonConfig.coalesce_batches` / ``coalesce_ops`` /
``coalesce_bytes`` — into ONE worker call (byte concatenation; the
payloads are never re-encoded).  The session journals the group under a
single CRC frame with a single fsync and acks every member batch exactly
as the one-at-a-time path would have (see
:meth:`ReplaySession.apply_group_payload`), so at streaming rates the
dominant per-batch costs — pipe crossings and WAL fsyncs — are paid per
*group*.  JSON applies never coalesce; that path stays byte-for-byte the
PR 6 reference.

Backpressure and shedding, per tenant:

* **Admission.**  A request arriving to a full queue is refused
  immediately (``error: "overloaded"``, ``shed: true``) — the client
  slows down or goes away; memory stays bounded either way.  Oversized
  requests get a structured ``error: "too_large"`` (the frame is drained
  exactly, never desynced) instead of a dropped connection.
* **Deadline.**  Each request carries its enqueue time; if the
  dispatcher pops it after ``deadline_s`` (daemon default, overridable
  per request), it is shed without touching the worker — a queue that
  built up behind a slow batch drains at queue speed, not worker speed.
* **Isolation.**  Queues, dispatchers and worker processes are per
  tenant, so a dead-slow or disconnected client stalls only its own
  stream; neighbours' queries keep answering at their own pace.

Shed/refused batches are *not* lost: the sequence-number protocol means
the client just resends from its last acknowledged batch.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import config_from_dict
from repro.service.supervisor import (
    Supervisor,
    SupervisorConfig,
    TenantFailedError,
    WorkerCallError,
)
from repro.service.wire import (
    SUPPORTED_WIRES,
    WIRE_BINARY,
    WIRE_JSON,
    WIRE_REF,
    payload_crc,
    payload_nbytes,
)
from repro.service.worker import encode_ops

#: Default ceiling on one request header line (JSON applies put their ops
#: here, so it doubles as the JSON-wire batch size limit).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Default ceiling on one out-of-line binary payload.
MAX_FRAME_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class DaemonConfig:
    """Front-end policy knobs.

    Attributes:
        host/port: Bind address (``port=0`` picks a free port; read it
            back from :attr:`ReplayDaemon.port`).
        queue_depth: Bounded per-tenant queue length (admission control).
        deadline_s: Default time a request may wait in queue before being
            shed.
        executor_threads: Pool threads shared by all tenants' supervisor
            calls (each call blocks one thread for its duration).
        max_line_bytes: Ceiling on one request header line; an oversized
            line gets a structured ``too_large`` error, not a dropped
            connection.
        max_frame_bytes: Ceiling on one binary payload; an oversized
            frame is drained exactly (its length is in the header) and
            refused with ``too_large``.
        coalesce_batches/coalesce_ops/coalesce_bytes: Group-commit
            budgets — a coalesced worker call stops growing at whichever
            limit it hits first.  ``coalesce_batches=1`` disables
            coalescing.
        pipeline_depth: In-flight requests allowed per client
            connection (responses always return in request order).
        pool_root: Shared content-addressed trace store directory; when
            set, workers resolve ``"ref"``-wire batches through one
            machine-wide mmap of it.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_depth: int = 16
    deadline_s: float = 30.0
    executor_threads: int = 8
    max_line_bytes: int = MAX_LINE_BYTES
    max_frame_bytes: int = MAX_FRAME_BYTES
    coalesce_batches: int = 64
    coalesce_ops: int = 1_048_576
    coalesce_bytes: int = 16 * 1024 * 1024
    pipeline_depth: int = 256
    pool_root: Optional[str] = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if self.executor_threads < 1:
            raise ValueError("executor_threads must be >= 1")
        if self.max_line_bytes < 4096:
            raise ValueError("max_line_bytes must be >= 4096")
        if self.max_frame_bytes < 4096:
            raise ValueError("max_frame_bytes must be >= 4096")
        if self.coalesce_batches < 1 or self.coalesce_ops < 1 or self.coalesce_bytes < 1:
            raise ValueError("coalesce budgets must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")


class _Pending:
    __slots__ = (
        "message",
        "future",
        "enqueued_at",
        "deadline_s",
        "wire",
        "seq",
        "n",
        "payload",
        "ref",
    )

    def __init__(
        self,
        message,
        future,
        enqueued_at,
        deadline_s,
        wire=None,
        seq=None,
        n=None,
        payload=None,
        ref=None,
    ):
        self.message = message
        self.future = future
        self.enqueued_at = enqueued_at
        self.deadline_s = deadline_s
        self.wire = wire          # "bin"/"ref" for coalescible applies
        self.seq = seq            # batch seq (coalescible applies only)
        self.n = n                # op count (coalescible applies only)
        self.payload = payload    # columnar bytes ("bin" wire only)
        self.ref = ref            # (key, start, stop) ("ref" wire only)


class ReplayDaemon:
    """The streaming replay daemon (see module docs).

    Usage::

        daemon = ReplayDaemon(root, DaemonConfig(port=0))
        await daemon.start()
        ...                      # clients connect to daemon.port
        await daemon.stop()      # checkpoints every session
    """

    def __init__(
        self,
        root: Path,
        config: Optional[DaemonConfig] = None,
        supervisor: Optional[Supervisor] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> None:
        self._config = config or DaemonConfig()
        self._supervisor = supervisor or Supervisor(
            Path(root),
            config=supervisor_config,
            pool_root=(
                Path(self._config.pool_root) if self._config.pool_root else None
            ),
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._queues: Dict[str, asyncio.Queue] = {}
        self._dispatchers: Dict[str, asyncio.Task] = {}
        self._stopping = False
        self.port: Optional[int] = None

    @property
    def supervisor(self) -> Supervisor:
        return self._supervisor

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #

    async def start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        # The StreamReader hard limit sits above the soft max_line_bytes
        # so an oversized-but-bounded line is read whole and refused with
        # a structured error instead of a torn connection.
        self._server = await asyncio.start_server(
            self._serve_client,
            host=self._config.host,
            port=self._config.port,
            limit=2 * self._config.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Clean shutdown: stop intake, drain nothing, checkpoint all."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._dispatchers.values():
            task.cancel()
        for task in self._dispatchers.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers.clear()
        for queue in self._queues.values():
            while not queue.empty():
                pending = queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_result(
                        {"ok": False, "error": "daemon stopping", "shed": True}
                    )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._supervisor.shutdown)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ----------------------------------------------------------------- #
    # Client protocol (pipelined reader + ordered-response writer)
    # ----------------------------------------------------------------- #

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        responses: asyncio.Queue = asyncio.Queue()
        slots = asyncio.Semaphore(self._config.pipeline_depth)
        writer_task = asyncio.create_task(
            self._write_responses(responses, writer, slots)
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Past even the hard transport limit: the stream
                    # cannot be resynced, so answer and hang up.
                    await slots.acquire()
                    await responses.put(
                        ("error", self._too_large("line"))
                    )
                    break
                if not line:
                    break
                if len(line) > self._config.max_line_bytes:
                    await slots.acquire()
                    await responses.put(("error", self._too_large("line")))
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await slots.acquire()
                    await responses.put(
                        ("error", {"ok": False, "error": f"bad json: {exc}"})
                    )
                    continue
                payload = None
                error = None
                if (
                    request.get("op") == "apply"
                    and request.get("wire") == WIRE_BINARY
                ):
                    try:
                        payload, error = await self._read_payload(reader, request)
                    except asyncio.IncompleteReadError:
                        break  # client died mid-frame
                await slots.acquire()
                if error is not None:
                    await responses.put(("error", error))
                    continue
                op = request.get("op")
                task = asyncio.get_running_loop().create_task(
                    self._handle(request, payload)
                )
                await responses.put((op, task))
                if op == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished; its tenant state is unaffected
        finally:
            await responses.put(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _write_responses(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter, slots
    ) -> None:
        """Drain handler results to the socket in strict request order."""
        broken = False
        while True:
            item = await responses.get()
            if item is None:
                return
            op, result = item
            if isinstance(result, asyncio.Task):
                try:
                    response = await result
                except Exception as exc:  # keep the connection alive
                    response = {
                        "ok": False,
                        "error": str(exc),
                        "kind": type(exc).__name__,
                    }
            else:
                response = result
            slots.release()
            if broken:
                continue  # still await/drain tasks so none leak
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                broken = True
                continue
            if op == "shutdown" and response.get("ok"):
                asyncio.get_running_loop().create_task(self._shutdown_soon())

    def _too_large(self, what: str) -> dict:
        return {
            "ok": False,
            "error": "too_large",
            "kind": "ValueError",
            "what": what,
            "max_line_bytes": self._config.max_line_bytes,
            "max_frame_bytes": self._config.max_frame_bytes,
        }

    async def _read_payload(
        self, reader: asyncio.StreamReader, request: dict
    ) -> Tuple[Optional[bytes], Optional[dict]]:
        """Read (or exactly drain) the binary payload following a header.

        Returns ``(payload, None)`` on success, ``(None, error_dict)``
        when the frame is refused — in which case the frame bytes have
        still been consumed, so the stream stays in sync.
        """
        try:
            n = int(request["n"])
        except (KeyError, TypeError, ValueError):
            return None, {
                "ok": False,
                "error": "binary apply needs an integer op count 'n'",
            }
        if n < 0:
            return None, {"ok": False, "error": "op count 'n' must be >= 0"}
        nbytes = payload_nbytes(n)
        if nbytes > self._config.max_frame_bytes:
            remaining = nbytes
            while remaining:
                chunk = await reader.readexactly(min(remaining, 1 << 20))
                remaining -= len(chunk)
            return None, self._too_large("frame")
        payload = await reader.readexactly(nbytes)
        crc = request.get("crc")
        if crc is not None and payload_crc(payload) != int(crc):
            return None, {
                "ok": False,
                "error": "payload crc mismatch",
                "kind": "ValueError",
            }
        return payload, None

    async def _shutdown_soon(self) -> None:
        await self.stop()

    # ----------------------------------------------------------------- #
    # Routing
    # ----------------------------------------------------------------- #

    async def _handle(self, request: dict, payload: Optional[bytes] = None) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "tenants": self._supervisor.tenants()}
        if op == "hello":
            wires = [
                w
                for w in SUPPORTED_WIRES
                if w != WIRE_REF or self._supervisor.pool_root
            ]
            return {
                "ok": True,
                "wires": wires,
                "max_line_bytes": self._config.max_line_bytes,
                "max_frame_bytes": self._config.max_frame_bytes,
                "pool_root": self._supervisor.pool_root,
            }
        if op == "shutdown":
            return {"ok": True, "stopping": True}
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            return {"ok": False, "error": "request needs a tenant"}
        if self._stopping:
            return {"ok": False, "error": "daemon stopping", "shed": True}
        if op == "open":
            return await self._enqueue(tenant, request)
        if op in ("apply", "query", "checkpoint", "close"):
            if tenant not in self._queues:
                return {"ok": False, "error": f"tenant {tenant!r} not open"}
            return await self._enqueue(tenant, request, payload)
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _enqueue(
        self, tenant: str, request: dict, payload: Optional[bytes] = None
    ) -> dict:
        loop = asyncio.get_running_loop()
        if tenant not in self._queues:
            self._queues[tenant] = asyncio.Queue(maxsize=self._config.queue_depth)
            self._dispatchers[tenant] = loop.create_task(
                self._dispatch_tenant(tenant), name=f"dispatch-{tenant}"
            )
        deadline_s = float(request.get("deadline_s", self._config.deadline_s))
        wire = seq = n = ref = None
        if request.get("op") == "apply":
            declared = request.get("wire", WIRE_JSON)
            try:
                if declared == WIRE_BINARY:
                    wire = WIRE_BINARY
                    seq = int(request["seq"])
                    n = int(request["n"])
                elif declared == WIRE_REF:
                    if not self._supervisor.pool_root:
                        return {
                            "ok": False,
                            "error": "daemon has no shared pool; "
                            "ref wire unavailable",
                        }
                    wire = WIRE_REF
                    seq = int(request["seq"])
                    ref = (
                        str(request["key"]),
                        int(request["start"]),
                        int(request["stop"]),
                    )
                    n = ref[2] - ref[1]
                elif declared != WIRE_JSON:
                    return {"ok": False, "error": f"unknown wire {declared!r}"}
            except (KeyError, TypeError, ValueError) as exc:
                return {"ok": False, "error": f"bad apply header: {exc}"}
        pending = _Pending(
            request,
            loop.create_future(),
            loop.time(),
            deadline_s,
            wire=wire,
            seq=seq,
            n=n,
            payload=payload,
            ref=ref,
        )
        try:
            self._queues[tenant].put_nowait(pending)
        except asyncio.QueueFull:
            # Admission control: refuse instead of buffering unboundedly.
            return {
                "ok": False,
                "error": f"tenant {tenant!r} queue full",
                "shed": True,
            }
        return await pending.future

    # ----------------------------------------------------------------- #
    # Per-tenant dispatch (coalescing happens here)
    # ----------------------------------------------------------------- #

    @staticmethod
    def _shed(pending: _Pending, why: str) -> None:
        if not pending.future.done():
            pending.future.set_result({"ok": False, "error": why, "shed": True})

    def _expired(self, pending: _Pending, loop) -> bool:
        return loop.time() - pending.enqueued_at > pending.deadline_s

    async def _dispatch_tenant(self, tenant: str) -> None:
        queue = self._queues[tenant]
        loop = asyncio.get_running_loop()
        carry: Optional[_Pending] = None
        while True:
            if carry is not None:
                pending, carry = carry, None
            else:
                pending = await queue.get()
            if self._expired(pending, loop):
                # Expired in queue: shed without burning worker time.
                self._shed(pending, "deadline expired in queue")
                continue
            if pending.wire in (WIRE_BINARY, WIRE_REF):
                try:
                    carry = await self._dispatch_group(tenant, pending, queue, loop)
                except asyncio.CancelledError:
                    raise
                continue
            try:
                response = await loop.run_in_executor(
                    self._executor, self._call_blocking, tenant, pending.message
                )
            except asyncio.CancelledError:
                self._shed(pending, "daemon stopping")
                raise
            except TenantFailedError as exc:
                response = {"ok": False, "error": str(exc), "failed": True}
            except (WorkerCallError, ValueError, KeyError) as exc:
                response = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
            except Exception as exc:  # keep the dispatcher alive
                response = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
            if not pending.future.done():
                pending.future.set_result(response)

    async def _dispatch_group(
        self, tenant: str, first: _Pending, queue: asyncio.Queue, loop
    ) -> Optional[_Pending]:
        """Merge queued contiguous same-wire applies behind ``first`` into
        one worker call; returns a popped-but-not-coalescible carry (the
        next loop iteration's head) or None."""
        cfg = self._config
        group = [first]
        total_ops = first.n
        total_bytes = len(first.payload) if first.payload is not None else 0
        carry: Optional[_Pending] = None
        while (
            len(group) < cfg.coalesce_batches
            and total_ops < cfg.coalesce_ops
            and total_bytes < cfg.coalesce_bytes
        ):
            try:
                nxt = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if self._expired(nxt, loop):
                self._shed(nxt, "deadline expired in queue")
                break
            if nxt.wire != first.wire or nxt.seq != group[-1].seq + 1:
                carry = nxt
                break
            group.append(nxt)
            total_ops += nxt.n
            total_bytes += len(nxt.payload) if nxt.payload is not None else 0
        if first.wire == WIRE_BINARY:
            message = {
                "cmd": "apply_group",
                "first_seq": first.seq,
                "counts": [p.n for p in group],
                # Coalescing IS this join: the payloads arrive in wire
                # layout and leave in wire layout, no per-op work.
                "payload": b"".join(p.payload for p in group),
            }
        else:
            message = {
                "cmd": "apply_refs",
                "first_seq": first.seq,
                "refs": [p.ref for p in group],
            }
        try:
            response = await loop.run_in_executor(
                self._executor, self._supervisor.call, tenant, message
            )
        except asyncio.CancelledError:
            for p in group:
                self._shed(p, "daemon stopping")
            if carry is not None:
                self._shed(carry, "daemon stopping")
            raise
        except TenantFailedError as exc:
            response = {"ok": False, "error": str(exc), "failed": True}
        except Exception as exc:  # keep the dispatcher alive
            response = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        acks = response.get("acks") if response.get("ok") else None
        if acks is not None and len(acks) == len(group):
            for p, ack in zip(group, acks):
                if not p.future.done():
                    p.future.set_result(ack)
        else:
            for p in group:
                if not p.future.done():
                    p.future.set_result(response)
        return carry

    # ----------------------------------------------------------------- #
    # Blocking side (runs in the executor)
    # ----------------------------------------------------------------- #

    def _call_blocking(self, tenant: str, request: dict) -> dict:
        op = request["op"]
        if op == "open":
            config = config_from_dict(request["config"])
            frontier_base = int(request["capacity_sectors"])
            self._supervisor.ensure_tenant(tenant, config, frontier_base)
            applied = self._supervisor.call(tenant, {"cmd": "query", "kind": "applied"})
            return {
                "ok": True,
                "tenant": tenant,
                "applied_seq": applied.get("result", {}).get("applied_seq", 0),
            }
        if op == "apply":
            ops = request["ops"]
            is_read = np.asarray(ops["is_read"], dtype=bool)
            lba = np.asarray(ops["lba"], dtype=np.int64)
            length = np.asarray(ops["length"], dtype=np.int64)
            message = {"cmd": "apply", "seq": int(request["seq"])}
            message.update(encode_ops(is_read, lba, length))
            return self._supervisor.call(tenant, message)
        if op == "query":
            return self._supervisor.call(
                tenant,
                {
                    "cmd": "query",
                    "kind": request.get("kind", "applied"),
                    "params": request.get("params", {}),
                },
            )
        if op == "checkpoint":
            return self._supervisor.call(tenant, {"cmd": "checkpoint"})
        if op == "close":
            self._supervisor.stop_tenant(tenant)
            return {"ok": True, "tenant": tenant, "closed": True}
        raise ValueError(f"unknown op {op!r}")
