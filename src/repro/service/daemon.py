"""Asyncio front end: many clients, per-tenant queues, deadline shedding.

The daemon is the concurrency boundary of the service.  Everything below
it is blocking and single-threaded-per-tenant (a supervisor call holds
the tenant's lock while the worker computes); everything above it is a
newline-delimited-JSON TCP conversation.  The shape:

* One reader task per client connection parses requests and routes them.
* One **bounded** :class:`asyncio.Queue` plus one dispatcher task per
  tenant.  The dispatcher pops a request, checks its deadline, and runs
  the supervisor call in the shared thread pool — so one slow tenant
  occupies one pool thread, not the event loop, and ops for a tenant
  stay strictly ordered.

Backpressure and shedding, per tenant:

* **Admission.**  A request arriving to a full queue is refused
  immediately (``error: "overloaded"``, ``shed: true``) — the client
  slows down or goes away; memory stays bounded either way.
* **Deadline.**  Each request carries its enqueue time; if the
  dispatcher pops it after ``deadline_s`` (daemon default, overridable
  per request), it is shed without touching the worker — a queue that
  built up behind a slow batch drains at queue speed, not worker speed.
* **Isolation.**  Queues, dispatchers and worker processes are per
  tenant, so a dead-slow or disconnected client stalls only its own
  stream; neighbours' queries keep answering at their own pace.

Shed/refused batches are *not* lost: the sequence-number protocol means
the client just resends from its last acknowledged batch.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.core.config import config_from_dict
from repro.service.supervisor import (
    Supervisor,
    SupervisorConfig,
    TenantFailedError,
    WorkerCallError,
)
from repro.service.worker import encode_ops

#: Ceiling on one request line; protects the loop from a hostile client.
MAX_LINE_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class DaemonConfig:
    """Front-end policy knobs.

    Attributes:
        host/port: Bind address (``port=0`` picks a free port; read it
            back from :attr:`ReplayDaemon.port`).
        queue_depth: Bounded per-tenant queue length (admission control).
        deadline_s: Default time a request may wait in queue before being
            shed.
        executor_threads: Pool threads shared by all tenants' supervisor
            calls (each call blocks one thread for its duration).
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_depth: int = 16
    deadline_s: float = 30.0
    executor_threads: int = 8

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if self.executor_threads < 1:
            raise ValueError("executor_threads must be >= 1")


class _Pending:
    __slots__ = ("message", "future", "enqueued_at", "deadline_s")

    def __init__(self, message, future, enqueued_at, deadline_s):
        self.message = message
        self.future = future
        self.enqueued_at = enqueued_at
        self.deadline_s = deadline_s


class ReplayDaemon:
    """The streaming replay daemon (see module docs).

    Usage::

        daemon = ReplayDaemon(root, DaemonConfig(port=0))
        await daemon.start()
        ...                      # clients connect to daemon.port
        await daemon.stop()      # checkpoints every session
    """

    def __init__(
        self,
        root: Path,
        config: Optional[DaemonConfig] = None,
        supervisor: Optional[Supervisor] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> None:
        self._config = config or DaemonConfig()
        self._supervisor = supervisor or Supervisor(
            Path(root), config=supervisor_config
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._queues: Dict[str, asyncio.Queue] = {}
        self._dispatchers: Dict[str, asyncio.Task] = {}
        self._stopping = False
        self.port: Optional[int] = None

    @property
    def supervisor(self) -> Supervisor:
        return self._supervisor

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #

    async def start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._serve_client,
            host=self._config.host,
            port=self._config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Clean shutdown: stop intake, drain nothing, checkpoint all."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._dispatchers.values():
            task.cancel()
        for task in self._dispatchers.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers.clear()
        for queue in self._queues.values():
            while not queue.empty():
                pending = queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_result(
                        {"ok": False, "error": "daemon stopping", "shed": True}
                    )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._supervisor.shutdown)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ----------------------------------------------------------------- #
    # Client protocol
    # ----------------------------------------------------------------- #

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(
                        writer, {"ok": False, "error": "request line too long"}
                    )
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await self._reply(
                        writer, {"ok": False, "error": f"bad json: {exc}"}
                    )
                    continue
                response = await self._handle(request)
                await self._reply(writer, response)
                if request.get("op") == "shutdown" and response.get("ok"):
                    asyncio.get_running_loop().create_task(self._shutdown_soon())
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished; its tenant state is unaffected
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _shutdown_soon(self) -> None:
        await self.stop()

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    # ----------------------------------------------------------------- #
    # Routing
    # ----------------------------------------------------------------- #

    async def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "tenants": self._supervisor.tenants()}
        if op == "shutdown":
            return {"ok": True, "stopping": True}
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            return {"ok": False, "error": "request needs a tenant"}
        if self._stopping:
            return {"ok": False, "error": "daemon stopping", "shed": True}
        if op == "open":
            return await self._enqueue(tenant, request)
        if op in ("apply", "query", "checkpoint", "close"):
            if tenant not in self._queues:
                return {"ok": False, "error": f"tenant {tenant!r} not open"}
            return await self._enqueue(tenant, request)
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _enqueue(self, tenant: str, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        if tenant not in self._queues:
            self._queues[tenant] = asyncio.Queue(maxsize=self._config.queue_depth)
            self._dispatchers[tenant] = loop.create_task(
                self._dispatch_tenant(tenant), name=f"dispatch-{tenant}"
            )
        deadline_s = float(request.get("deadline_s", self._config.deadline_s))
        pending = _Pending(request, loop.create_future(), loop.time(), deadline_s)
        try:
            self._queues[tenant].put_nowait(pending)
        except asyncio.QueueFull:
            # Admission control: refuse instead of buffering unboundedly.
            return {
                "ok": False,
                "error": f"tenant {tenant!r} queue full",
                "shed": True,
            }
        return await pending.future

    async def _dispatch_tenant(self, tenant: str) -> None:
        queue = self._queues[tenant]
        loop = asyncio.get_running_loop()
        while True:
            pending = await queue.get()
            if loop.time() - pending.enqueued_at > pending.deadline_s:
                # Expired in queue: shed without burning worker time.
                if not pending.future.done():
                    pending.future.set_result(
                        {"ok": False, "error": "deadline expired in queue", "shed": True}
                    )
                continue
            try:
                response = await loop.run_in_executor(
                    self._executor, self._call_blocking, tenant, pending.message
                )
            except asyncio.CancelledError:
                if not pending.future.done():
                    pending.future.set_result(
                        {"ok": False, "error": "daemon stopping", "shed": True}
                    )
                raise
            except TenantFailedError as exc:
                response = {"ok": False, "error": str(exc), "failed": True}
            except (WorkerCallError, ValueError, KeyError) as exc:
                response = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
            except Exception as exc:  # keep the dispatcher alive
                response = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
            if not pending.future.done():
                pending.future.set_result(response)

    # ----------------------------------------------------------------- #
    # Blocking side (runs in the executor)
    # ----------------------------------------------------------------- #

    def _call_blocking(self, tenant: str, request: dict) -> dict:
        op = request["op"]
        if op == "open":
            config = config_from_dict(request["config"])
            frontier_base = int(request["capacity_sectors"])
            self._supervisor.ensure_tenant(tenant, config, frontier_base)
            applied = self._supervisor.call(tenant, {"cmd": "query", "kind": "applied"})
            return {
                "ok": True,
                "tenant": tenant,
                "applied_seq": applied.get("result", {}).get("applied_seq", 0),
            }
        if op == "apply":
            ops = request["ops"]
            is_read = np.asarray(ops["is_read"], dtype=bool)
            lba = np.asarray(ops["lba"], dtype=np.int64)
            length = np.asarray(ops["length"], dtype=np.int64)
            message = {"cmd": "apply", "seq": int(request["seq"])}
            message.update(encode_ops(is_read, lba, length))
            return self._supervisor.call(tenant, message)
        if op == "query":
            return self._supervisor.call(
                tenant,
                {
                    "cmd": "query",
                    "kind": request.get("kind", "applied"),
                    "params": request.get("params", {}),
                },
            )
        if op == "checkpoint":
            return self._supervisor.call(tenant, {"cmd": "checkpoint"})
        if op == "close":
            self._supervisor.stop_tenant(tenant)
            return {"ok": True, "tenant": tenant, "closed": True}
        raise ValueError(f"unknown op {op!r}")
