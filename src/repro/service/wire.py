"""Columnar wire format: one batch = one buffer, end to end.

The PR 6 serving path re-encoded every op three times: the client turned
numpy columns into JSON lists, the daemon turned the lists back into
arrays, and the worker pipe re-packed them as raw bytes.  At streaming
rates the per-op Python work dwarfs the replay kernel itself.  This
module defines the *single* byte layout a batch keeps for its whole
journey — client frame, daemon queue, worker pipe, and WAL group record
all carry the same bytes:

    payload(n) = is_read u8[n] · lba i64[n] · length i64[n]   (little-endian)

which is exactly the column triple :meth:`repro.trace.trace.Trace.as_arrays`
produces and :meth:`repro.core.batch.IncrementalBatchReplay.feed_arrays`
consumes, and exactly the payload layout of a journal record — so the
daemon coalesces batches by *byte concatenation* and the session journals
a coalesced group by *byte slicing*, with zero per-op work anywhere.

Framing on the socket stays newline-JSON for headers (one small dict per
request), with the binary payload following the header line verbatim::

    {"op": "apply", "tenant": t, "seq": s, "wire": "bin", "n": N, "crc": C}\n
    <N * OP_BYTES raw bytes>

``crc`` is the CRC-32 of the payload; the daemon verifies it at
admission, before the batch can reach a queue or the WAL.  The ``"ref"``
wire goes one step further and ships no payload at all: the header names
a content-addressed :class:`~repro.service.pool.TracePool` entry and an
op range, and every hop moves ~100 bytes regardless of batch size.

Wire names (negotiated via the daemon's ``hello`` op):

* ``"json"`` — the PR 6 per-op JSON lists; kept as the compatibility
  fallback and differential-tested byte-identical to the binary path.
* ``"bin"`` — the framed columnar payload above.
* ``"ref"`` — by-reference batches out of the shared mmap pool.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence, Tuple

import numpy as np

#: Bytes per op in a columnar payload (u8 flag + i64 lba + i64 length).
OP_BYTES = 1 + 8 + 8

WIRE_JSON = "json"
WIRE_BINARY = "bin"
WIRE_REF = "ref"

#: Wires the daemon offers in its ``hello`` response, preference order.
SUPPORTED_WIRES = (WIRE_BINARY, WIRE_REF, WIRE_JSON)


def payload_nbytes(n_ops: int) -> int:
    """Size in bytes of a columnar payload holding ``n_ops`` operations."""
    return int(n_ops) * OP_BYTES


def encode_payload(
    is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
) -> bytes:
    """Pack op columns into one contiguous payload buffer."""
    if not (len(is_read) == len(lba) == len(length)):
        raise ValueError("batch columns must have equal length")
    return (
        np.ascontiguousarray(is_read, dtype=np.uint8).tobytes()
        + np.ascontiguousarray(lba, dtype="<i8").tobytes()
        + np.ascontiguousarray(length, dtype="<i8").tobytes()
    )


def decode_payload(
    payload, n_ops: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unpack a payload back into ``(is_read, lba, length)`` columns.

    The integer columns are copied out of the byte buffer (they sit at
    odd offsets, and the replay kernels want aligned arrays); the copy is
    one memcpy per column, never per-op work.
    """
    if len(payload) != payload_nbytes(n_ops):
        raise ValueError(
            f"payload is {len(payload)} bytes; {n_ops} ops need "
            f"{payload_nbytes(n_ops)}"
        )
    is_read = np.frombuffer(payload, dtype=np.uint8, count=n_ops).astype(bool)
    lba = np.array(np.frombuffer(payload, dtype="<i8", count=n_ops, offset=n_ops))
    length = np.array(
        np.frombuffer(payload, dtype="<i8", count=n_ops, offset=9 * n_ops)
    )
    return is_read, lba, length


def payload_crc(payload) -> int:
    """CRC-32 of a payload buffer (the frame's admission check)."""
    return zlib.crc32(payload)


def split_group_payload(
    payload, counts: Sequence[int]
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Split a concatenation of per-batch payloads back into column triples.

    ``counts[i]`` is the op count of batch ``i``; the group payload is the
    byte concatenation of each batch's :func:`encode_payload`.  Returns one
    ``(is_read, lba, length)`` triple per batch.
    """
    view = memoryview(payload)
    batches = []
    offset = 0
    for n in counts:
        n = int(n)
        nbytes = payload_nbytes(n)
        batches.append(decode_payload(view[offset : offset + nbytes], n))
        offset += nbytes
    if offset != len(view):
        raise ValueError(
            f"group payload is {len(view)} bytes; counts {list(counts)} "
            f"need {offset}"
        )
    return batches


def concat_columns(
    batches: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-batch column triples into one whole-group triple.

    Feeding the concatenation to the resumable engine in one call is
    bit-identical to feeding the batches one by one (the kernels are
    chunk-size invariant; ``tests/differential`` holds the proof), and
    pays the per-call overhead once per *group* instead of per batch.
    """
    if len(batches) == 1:
        return batches[0]
    return (
        np.concatenate([b[0] for b in batches]),
        np.concatenate([b[1] for b in batches]),
        np.concatenate([b[2] for b in batches]),
    )
