"""Shared mmap op pool: N workers map one machine-wide copy of a trace.

The PR 5 compiled-trace store (:class:`~repro.trace.store.TraceStore`)
already keeps each parsed/synthesized trace as a content-addressed entry
of page-aligned ``.npy`` columns that any process can ``mmap`` read-only.
This module is the *serving-side* view of that store: a
:class:`TracePool` resolves a store **key** (the entry's directory name —
the SHA-256 of its parse/synthesis identity) straight to the
``(is_read, lba, length)`` columns, without knowing or re-deriving the
meta that produced the key.

Why the daemon wants this: with the ``"ref"`` wire a client that streams
a stored trace sends ``(key, start, stop)`` instead of op bytes, and

* the batch crosses client → daemon → worker as ~100 bytes however large
  it is;
* the WAL journals a 60-byte ref record instead of re-writing the ops
  (see :class:`~repro.service.journal.RefRecord`);
* every worker process that replays the same trace maps the **same**
  physical pages out of the OS page cache — N tenants replaying one
  workload cost one copy of it machine-wide, not N private loads.

Durability contract: a pool entry is immutable, content-addressed, and
fsynced before it is published (:func:`repro.util.npystore.commit_entry_dir`),
so a journal tail that refs it can always be re-resolved at recovery.
The pool never deletes entries; whoever clears the backing store must
retire the sessions journaled against it first (recovery raises on an
unresolvable key instead of guessing).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.trace.store import STORE_SCHEMA, TraceStore, meta_key
from repro.trace.trace import Trace
from repro.util.npystore import load_mmap_npy

Columns = Tuple[np.ndarray, np.ndarray, np.ndarray]

_COLUMNS = ("is_read", "lba", "length")


class PoolMissError(KeyError):
    """The pool has no (intact) entry under the requested key."""


class TracePool:
    """Read-only, per-process resolver of content-addressed op columns.

    Args:
        root: The backing :class:`~repro.trace.store.TraceStore` directory.
        max_entries: Resident mmap handles kept per process (LRU); the
            arrays themselves live in the shared page cache, this only
            bounds open file handles.
    """

    def __init__(
        self, root: Union[str, Path], max_entries: int = 16
    ) -> None:
        self.root = Path(root)
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._open: "OrderedDict[str, Tuple[Columns, int]]" = OrderedDict()

    def resolve(self, key: str) -> Tuple[Columns, int]:
        """The full ``(is_read, lba, length)`` columns and op count for ``key``.

        Columns are zero-copy read-only mmap views.  Raises
        :class:`PoolMissError` when the entry is absent, torn, or not a
        schema-2 store entry (the pool never deletes — healing is the
        writing store's job).
        """
        cached = self._open.get(key)
        if cached is not None:
            self._open.move_to_end(key)
            return cached
        path = self.root / key
        try:
            with open(path / "header.json") as handle:
                header = json.load(handle)
            if header.get("schema") != STORE_SCHEMA:
                raise ValueError("not a schema-2 store entry")
            columns = []
            for name in _COLUMNS:
                column = load_mmap_npy(path / f"{name}.npy")
                column.setflags(write=False)
                columns.append(column)
            ops = int(header.get("ops", -1))
            if any(len(c) != ops for c in columns):
                raise ValueError("column length mismatch")
        except (OSError, ValueError, KeyError) as exc:
            raise PoolMissError(
                f"pool entry {key!r} missing or unreadable under {self.root}: {exc}"
            ) from exc
        entry = ((columns[0], columns[1], columns[2]), ops)
        self._open[key] = entry
        while len(self._open) > self._max_entries:
            self._open.popitem(last=False)
        return entry

    def slice(self, key: str, start: int, stop: int) -> Columns:
        """Columns for ops ``[start, stop)`` of entry ``key`` (mmap views)."""
        (is_read, lba, length), ops = self.resolve(key)
        start, stop = int(start), int(stop)
        if not (0 <= start <= stop <= ops):
            raise ValueError(
                f"ref range [{start}, {stop}) out of bounds for pool entry "
                f"{key!r} with {ops} ops"
            )
        return is_read[start:stop], lba[start:stop], length[start:stop]


def publish_trace(
    store: TraceStore, trace: Trace, meta: dict
) -> str:
    """Publish ``trace`` into ``store`` under ``meta``; returns the pool key.

    Thin convenience for ref-wire clients: after this returns, the key is
    resolvable by every :class:`TracePool` rooted at the same directory
    (the commit is fsynced + atomic, so refs to it are immediately safe
    to journal).
    """
    store.store(trace, meta)
    return meta_key(meta)
