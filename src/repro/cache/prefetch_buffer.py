"""FIFO buffer of physically contiguous prefetch windows.

Look-ahead-behind prefetching (Algorithm 2) pulls a physical window around
each fragment it reads into the drive buffer.  Drive buffers are small ring
buffers refilled continuously, so FIFO replacement (not LRU) models them
faithfully: the oldest window is overwritten first.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class PrefetchBuffer:
    """Bounded FIFO of ``[start, end)`` physical windows.

    Args:
        capacity_sectors: Total sectors the buffer may hold; the oldest
            window is dropped when an insertion exceeds it.
    """

    def __init__(self, capacity_sectors: int) -> None:
        if capacity_sectors <= 0:
            raise ValueError(f"capacity_sectors must be > 0, got {capacity_sectors}")
        self._capacity = capacity_sectors
        self._windows: Deque[Tuple[int, int]] = deque()
        self._used = 0

    @property
    def capacity_sectors(self) -> int:
        return self._capacity

    @property
    def used_sectors(self) -> int:
        return self._used

    @property
    def window_count(self) -> int:
        return len(self._windows)

    def add_window(self, start: int, end: int) -> None:
        """Buffer the window ``[max(start,0), end)``, evicting FIFO-style.

        Windows larger than the whole buffer are truncated to its capacity
        (keeping the tail end, nearest the head's final position).
        """
        start = max(0, start)
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if end - start > self._capacity:
            start = end - self._capacity
        self._windows.append((start, end))
        self._used += end - start
        while self._used > self._capacity:
            old_start, old_end = self._windows.popleft()
            self._used -= old_end - old_start

    def covers(self, pba: int, length: int) -> bool:
        """True if some buffered window contains all of ``[pba, pba+length)``.

        Containment within a single window is required: drive buffer
        segments are independent ring slots, not a coalesced cache.
        """
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        end = pba + length
        return any(start <= pba and end <= w_end for start, w_end in self._windows)

    def windows(self) -> list:
        """The buffered ``(start, end)`` windows, oldest first.

        This is the buffer's complete mutable state; feed it back through
        :meth:`restore_windows` to reconstruct an identical buffer.
        """
        return [(int(start), int(end)) for start, end in self._windows]

    def restore_windows(self, windows) -> None:
        """Replace the buffered windows with ``windows`` (oldest first).

        The windows must respect the invariants :meth:`add_window`
        maintains (non-empty, within capacity in total), so a snapshot
        from a same-sized buffer always round-trips exactly.
        """
        restored: Deque[Tuple[int, int]] = deque()
        used = 0
        for start, end in windows:
            start, end = int(start), int(end)
            if end <= start or start < 0:
                raise ValueError(f"invalid window [{start}, {end})")
            restored.append((start, end))
            used += end - start
        if used > self._capacity:
            raise ValueError(
                f"restored windows hold {used} sectors, over capacity {self._capacity}"
            )
        self._windows = restored
        self._used = used

    def clear(self) -> None:
        self._windows.clear()
        self._used = 0
