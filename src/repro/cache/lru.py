"""Byte-budgeted, block-granular LRU cache.

Translation-aware selective caching (Algorithm 3) caches the data returned
by fragmented reads in a small RAM cache (64 MB in the paper's evaluation)
with LRU eviction.  We cache at fixed block granularity: a physical range
is a *hit* only when every block covering it is resident — the same
hit/miss semantics as caching whole fragments, with simpler bookkeeping
(see DESIGN.md §7).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.util.units import SECTOR_BYTES


class LRUCache:
    """LRU set of fixed-size blocks keyed by block index, bounded in bytes.

    Args:
        capacity_bytes: Total budget; at least one block.
        block_sectors: Block size in sectors (default 8 = 4 KiB).
    """

    def __init__(self, capacity_bytes: int, block_sectors: int = 8) -> None:
        if block_sectors <= 0:
            raise ValueError(f"block_sectors must be > 0, got {block_sectors}")
        block_bytes = block_sectors * SECTOR_BYTES
        if capacity_bytes < block_bytes:
            raise ValueError(
                f"capacity_bytes {capacity_bytes} below one block ({block_bytes})"
            )
        self._block_sectors = block_sectors
        self._capacity_blocks = capacity_bytes // block_bytes
        self._blocks: "OrderedDict[int, None]" = OrderedDict()
        self.evictions = 0

    @property
    def block_sectors(self) -> int:
        return self._block_sectors

    @property
    def capacity_blocks(self) -> int:
        return self._capacity_blocks

    @property
    def capacity_bytes(self) -> int:
        return self._capacity_blocks * self._block_sectors * SECTOR_BYTES

    @property
    def used_blocks(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return len(self._blocks) * self._block_sectors * SECTOR_BYTES

    def _block_range(self, pba: int, length: int) -> range:
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        if pba < 0:
            raise ValueError(f"pba must be >= 0, got {pba}")
        first = pba // self._block_sectors
        last = (pba + length - 1) // self._block_sectors
        return range(first, last + 1)

    def contains_range(self, pba: int, length: int) -> bool:
        """True if every block covering ``[pba, pba+length)`` is resident.

        Does not update recency — pair with :meth:`touch_range` on a hit.
        """
        return all(block in self._blocks for block in self._block_range(pba, length))

    def hit_and_touch(self, pba: int, length: int) -> bool:
        """One-pass :meth:`contains_range` + :meth:`touch_range`.

        Returns True and marks every covering block most-recently-used
        iff all of them are resident; on a miss nothing is touched.
        Exactly equivalent to the two-call sequence, but computes the
        block range once and probes the resident set once per block —
        this sits on the per-fragment hot path of the batch kernels.
        """
        blocks = self._blocks
        covering = self._block_range(pba, length)
        for block in covering:
            if block not in blocks:
                return False
        move = blocks.move_to_end
        for block in covering:
            move(block)
        return True

    def touch_range(self, pba: int, length: int) -> None:
        """Mark the blocks covering the range most-recently-used."""
        for block in self._block_range(pba, length):
            if block in self._blocks:
                self._blocks.move_to_end(block)

    def insert_range(self, pba: int, length: int) -> None:
        """Insert (or refresh) the blocks covering the range, evicting LRU
        blocks as needed to stay within budget."""
        for block in self._block_range(pba, length):
            if block in self._blocks:
                self._blocks.move_to_end(block)
            else:
                self._blocks[block] = None
        while len(self._blocks) > self._capacity_blocks:
            self._blocks.popitem(last=False)
            self.evictions += 1

    def invalidate_range(self, pba: int, length: int) -> None:
        """Drop any resident blocks covering the range."""
        for block in self._block_range(pba, length):
            self._blocks.pop(block, None)

    def clear(self) -> None:
        self._blocks.clear()

    def resident_blocks(self) -> list:
        """Resident block indices from least to most recently used.

        Together with :attr:`evictions` this is the cache's complete
        mutable state; feed it back through :meth:`restore_blocks` to
        reconstruct an identical cache (checkpoint restore).
        """
        return list(self._blocks)

    def restore_blocks(self, blocks, evictions: int = 0) -> None:
        """Replace the resident set with ``blocks`` (LRU→MRU order).

        ``blocks`` must fit the capacity — restore never evicts, so a
        snapshot from a same-sized cache always round-trips exactly.
        """
        blocks = [int(b) for b in blocks]
        if len(blocks) > self._capacity_blocks:
            raise ValueError(
                f"{len(blocks)} blocks exceed capacity {self._capacity_blocks}"
            )
        if len(set(blocks)) != len(blocks):
            raise ValueError("restored block list contains duplicates")
        self._blocks = OrderedDict((block, None) for block in blocks)
        self.evictions = int(evictions)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[int]:
        """Iterate resident block indices from least to most recently used."""
        return iter(self._blocks)
