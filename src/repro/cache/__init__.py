"""Caching substrate: the byte-budgeted LRU used by translation-aware
selective caching (Algorithm 3) and the FIFO window buffer used by
look-ahead-behind prefetching (Algorithm 2).
"""

from repro.cache.lru import LRUCache
from repro.cache.prefetch_buffer import PrefetchBuffer

__all__ = ["LRUCache", "PrefetchBuffer"]
