"""Recorder hooks for replay-time observation.

A recorder receives every ``(op_index, outcome)`` pair during a replay and
accumulates whatever the caller needs — seek logs, temporal series,
fragmentation statistics — without the simulator having to retain
per-operation state itself.  Specialized recorders for the paper's figures
live in :mod:`repro.analysis`; the generic ones are here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

from repro.core.outcomes import IOOutcome


class Recorder(Protocol):
    """Anything with an ``observe(op_index, outcome)`` method."""

    def observe(self, op_index: int, outcome: IOOutcome) -> None:
        """Called once per operation, in replay order."""
        ...


@dataclass(frozen=True)
class SeekRecord:
    """One seek as it happened during a replay.

    Attributes:
        op_index: Index of the operation that incurred the seek.
        is_read: Direction of the seeking operation (defrag rewrites record
            as writes).
        distance: Signed seek distance in sectors.
    """

    op_index: int
    is_read: bool
    distance: int


class SeekLogRecorder:
    """Collect every seek of a replay as :class:`SeekRecord` entries.

    Memory is proportional to the seek count; use windowed recorders for
    very long traces when only aggregates are needed.
    """

    def __init__(self) -> None:
        self.records: List[SeekRecord] = []

    def observe(self, op_index: int, outcome: IOOutcome) -> None:
        is_read = outcome.request.is_read
        for access in outcome.accesses:
            if access.seek:
                # Defrag rewrites appear inside read outcomes but seek in
                # the write direction.
                self.records.append(
                    SeekRecord(
                        op_index=op_index,
                        is_read=is_read and not access.defrag,
                        distance=access.distance,
                    )
                )

    @property
    def distances(self) -> List[int]:
        return [r.distance for r in self.records]

    @property
    def read_distances(self) -> List[int]:
        return [r.distance for r in self.records if r.is_read]


class OutcomeLogRecorder:
    """Retain every outcome (tests and small scenario replays only)."""

    def __init__(self) -> None:
        self.outcomes: List[IOOutcome] = []

    def observe(self, op_index: int, outcome: IOOutcome) -> None:
        self.outcomes.append(outcome)


class FragmentationRecorder:
    """Per-read dynamic-fragmentation counts (input to the Fig. 5 CDF)."""

    def __init__(self) -> None:
        self.read_fragments: List[int] = []

    def observe(self, op_index: int, outcome: IOOutcome) -> None:
        if outcome.request.is_read:
            self.read_fragments.append(outcome.fragments)

    @property
    def fragmented_read_fragments(self) -> List[int]:
        """Fragment counts of fragmented reads only (Fig. 5 ignores
        unfragmented reads)."""
        return [f for f in self.read_fragments if f > 1]
