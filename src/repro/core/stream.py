"""Shared-replay technique kernels over a recorded fragment-access stream.

The chunked batch kernel (:mod:`repro.core.batch`) replays one
configuration per pass, paying the extent-map work — ``lookup_pieces`` per
read, ``map_range`` per write — every time.  But the paper's read-path
techniques have a key structural property: **look-ahead-behind prefetching
(Alg. 2) and selective caching (Alg. 3) never change the log layout.**
Only writes (and opportunistic-defrag rewrites, Alg. 1) move the frontier
or remap extents, so for any defrag-free configuration the sequence of
physical fragments each read resolves to is *identical* to plain LS —
the techniques merely decide, per fragment of a fragmented read, whether
the disk access happens at all.

This module exploits that:

* :func:`record_fragment_stream` performs **one** plain-LS replay of a
  trace and records the full fragment-access stream — every would-be disk
  access (pba, length, read/write kind) plus the grouping of fragments
  into fragmented reads — as flat numpy arrays.
* :func:`stream_replay` evaluates any cache/prefetch configuration
  against the recorded stream without touching the extent map: a Python
  loop drives the stateful policy over the *fragmented-read fragments
  only* (the minority of accesses), producing a keep-mask; seek
  classification over the kept accesses is then fully vectorized.
* :func:`stream_cache_sweep` evaluates an entire *cache-capacity sweep*
  in one shared pass: block-granular LRU caches obey the stack-inclusion
  property (a larger cache always holds a superset of a smaller one under
  the same access sequence), so a single Mattson-style stack-distance
  pass yields, for every fragment access, the minimum capacity at which
  it hits — each capacity point then costs only an array threshold plus
  the vectorized classification.

All three are **exact**: results are bit-for-bit equal to the reference
:class:`~repro.core.simulator.Simulator` (stats, seek-distance log, seek
directions, final head/frontier and technique-internal state), enforced
by ``tests/differential/test_techniques_vs_reference.py``.  Defrag
configurations mutate the layout and therefore have no stream kernel —
they stay on the chunked stateful kernel in :mod:`repro.core.batch`.

Doctest (one recording, two cache sizes, no re-replay)::

    >>> from repro.core.config import TechniqueConfig
    >>> from repro.core.selective_cache import SelectiveCacheConfig
    >>> from repro.core.stream import record_fragment_stream, stream_replay
    >>> from repro.trace.record import IORequest
    >>> from repro.trace.trace import Trace
    >>> trace = Trace(
    ...     [IORequest.write(0, 32), IORequest.write(8, 8)]
    ...     + [IORequest.read(0, 32) for _ in range(3)],
    ...     name="doc",
    ... )
    >>> stream = record_fragment_stream(trace)
    >>> stream.fragmented_reads, stream.accesses
    (3, 11)
    >>> cached = TechniqueConfig(name="c", cache=SelectiveCacheConfig(1.0))
    >>> stream_replay(stream, cached).stats.cache_fragment_hits
    6
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import DEFAULT_CHUNK_OPS
from repro.core.config import TechniqueConfig
from repro.core.outcomes import SimStats
from repro.core.prefetch import LookAheadBehindPrefetcher
from repro.core.selective_cache import SelectiveFragmentCache
from repro.core.simulator import RunResult
from repro.core.translators import LogStructuredTranslator
from repro.extentmap.array_map import ArrayExtentMap
from repro.extentmap.tiers import (
    DEFAULT_KERNEL_TIER,
    make_address_map,
    resolve_map_tier,
)
from repro.trace.trace import Trace
from repro.util.units import BYTES_PER_MIB, SECTOR_BYTES

# Access-stream kind codes (shared with repro.core.batch).
_KIND_READ = 0
_KIND_WRITE = 1

#: Threshold sentinel for fragments that can never hit (a block was never
#: cached before), larger than any real capacity in blocks.
_NEVER_HITS = np.int64(1) << 62


class StreamUnsupportedError(ValueError):
    """The requested configuration has no stream kernel (e.g. defrag)."""


def supports_stream(config: TechniqueConfig) -> bool:
    """True if :func:`stream_replay` covers this technique configuration.

    The stream kernels require a layout identical to plain LS, so any
    log-structured configuration *without* defrag qualifies: plain LS,
    LS+prefetch, LS+cache and LS+prefetch+cache.  NoLS (different
    layout), defrag configurations (layout-mutating) and multi-frontier
    configurations (per-class placement) do not.
    """
    return (
        isinstance(config, TechniqueConfig)
        and config.log_structured
        and config.defrag is None
        and config.multi_frontier is None
    )


def supports_cache_sweep(config: TechniqueConfig) -> bool:
    """True if the config can join a shared :func:`stream_cache_sweep`.

    Capacity sweeping rides on the LRU stack-inclusion property, which
    holds only when the cache is the sole technique: a prefetch buffer
    would make admissions depend on coverage (and thus on capacity), and
    defrag would change the layout.
    """
    return (
        supports_stream(config)
        and config.cache is not None
        and config.prefetch is None
    )


@dataclass(frozen=True)
class FragmentStream:
    """The fragment-access stream of one plain-LS replay of a trace.

    Attributes:
        trace_name: Name of the recorded trace.
        frontier_base: First log sector (``trace.max_end``).
        frontier: Final write frontier after the replay.
        layout: The plain-LS translator the recording replay drove; its
            extent map, frontier and head position are exactly the
            reference end-state — and, because cache/prefetch never remap
            anything, also the end-state of *every* defrag-free replay.
            ``None`` for streams rehydrated from the persistent
            :class:`~repro.core.stream_store.StreamStore` — only the
            differential tests inspect the layout, and persisting a whole
            extent map would defeat the zero-copy load.
        pba / length / kind: The access stream a technique-free LS replay
            performs, one entry per physical access (``kind`` is 0 for
            reads, 1 for writes).  Cache/prefetch configurations serve a
            *subset* of these accesses from RAM; they never add accesses.
        op_index: Originating trace request index of each access (int64,
            non-decreasing): a write contributes one entry, a read one per
            fragment.  Lets windowed/temporal analyses attribute stream
            accesses back to trace positions.
        group_start / group_size: One entry per fragmented read: index of
            its first fragment in the access stream, and its fragment
            count.  Only these accesses are policy-eligible (the paper's
            ``FragmentedRead`` guard).
        reads / writes / sectors_read / sectors_written / read_fragments /
            fragmented_reads: Aggregate counters that are invariant across
            every defrag-free configuration (resolution is layout-only).
    """

    trace_name: str
    frontier_base: int
    frontier: int
    layout: Optional[LogStructuredTranslator]
    pba: np.ndarray
    length: np.ndarray
    kind: np.ndarray
    op_index: np.ndarray
    group_start: np.ndarray
    group_size: np.ndarray
    reads: int
    writes: int
    sectors_read: int
    sectors_written: int
    read_fragments: int
    fragmented_reads: int

    @property
    def accesses(self) -> int:
        """Number of physical accesses in the plain-LS stream."""
        return int(self.pba.shape[0])

    def fragment_access_indices(self) -> np.ndarray:
        """Indices (into the access stream) of all policy-eligible fragments."""
        if self.group_size.size == 0:
            return np.empty(0, dtype=np.int64)
        total = int(self.group_size.sum())
        offsets = np.repeat(
            np.cumsum(self.group_size) - self.group_size, self.group_size
        )
        return np.repeat(self.group_start, self.group_size) + (
            np.arange(total, dtype=np.int64) - offsets
        )


@dataclass(frozen=True)
class StreamRunResult:
    """Result of evaluating one configuration against a recorded stream.

    Attributes:
        run_result: Drop-in :class:`~repro.core.simulator.RunResult`
            identical to the reference simulator's.
        distances: Signed distances of every seek, in access order.
        distance_is_read: Parallel bool array (True = read-direction seek).
        frontier: Final write frontier (same as the stream's — defrag-free
            replays never move it differently).
        head_position: Final head position, or None if nothing accessed
            the disk.
        cache: The live cache the evaluation drove (None when no cache is
            configured, or for thresholded sweep points which never build
            one).
        prefetcher: The live prefetcher (None when not configured).
    """

    run_result: RunResult
    distances: np.ndarray
    distance_is_read: np.ndarray
    frontier: int
    head_position: Optional[int]
    cache: Optional[SelectiveFragmentCache]
    prefetcher: Optional[LookAheadBehindPrefetcher]

    @property
    def stats(self) -> SimStats:
        return self.run_result.stats

    @property
    def read_distances(self) -> np.ndarray:
        """Distances of read-direction seeks only (Fig. 4's input)."""
        return self.distances[self.distance_is_read]


# --------------------------------------------------------------------- #
# Recording: one plain-LS replay, stream captured
# --------------------------------------------------------------------- #


def record_fragment_stream(
    trace: Trace,
    chunk_ops: int = DEFAULT_CHUNK_OPS,
) -> FragmentStream:
    """Replay ``trace`` once under plain LS and record the access stream.

    The recording translator runs on the kernel extent-map tier (array by
    default, :data:`~repro.extentmap.tiers.ENV_TIER` overrides): plain LS
    has no layout-mutating techniques, so whole read runs resolve through
    one ``lookup_pieces_batch`` call and write runs allocate their
    frontier PBAs with a single cumulative sum.  When the tier is forced
    to ``extent`` the scalar per-op path runs instead; both produce
    bit-identical streams (``tests/differential``).  ``chunk_ops`` only
    bounds the scalar path's peak buffer memory and is unobservable in
    the result.
    """
    if chunk_ops <= 0:
        raise ValueError(f"chunk_ops must be > 0, got {chunk_ops}")
    translator = LogStructuredTranslator(
        frontier_base=trace.max_end,
        address_map=make_address_map(resolve_map_tier(DEFAULT_KERNEL_TIER)),
    )
    if isinstance(translator.address_map, ArrayExtentMap):
        return _record_stream_batched(trace, translator)
    return _record_stream_scalar(trace, translator, chunk_ops)


def _record_stream_scalar(
    trace: Trace,
    translator: LogStructuredTranslator,
    chunk_ops: int,
) -> FragmentStream:
    """Per-op recording loop (any :class:`AddressMap` implementation).

    Follows the chunked-sweep pattern of the batch LS kernel (stateful
    extent-map work in a tight Python loop, buffers flushed to arrays per
    chunk).
    """
    amap = translator.address_map
    lookup_pieces = amap.lookup_pieces
    map_range = amap.map_range
    frontier = translator.frontier
    frontier_base = translator.frontier_base

    requests = trace.requests
    n = len(requests)
    pba_chunks: List[np.ndarray] = []
    len_chunks: List[np.ndarray] = []
    kind_chunks: List[np.ndarray] = []
    op_chunks: List[np.ndarray] = []
    group_start: List[int] = []
    group_size: List[int] = []
    stream_len = 0

    reads = writes = 0
    sectors_read = sectors_written = 0
    read_fragments = fragmented_reads = 0

    for start in range(0, n, chunk_ops):
        chunk = requests[start : start + chunk_ops]
        pba_buf: List[int] = []
        len_buf: List[int] = []
        kind_buf: List[int] = []
        op_buf: List[int] = []
        append_pba = pba_buf.append
        append_len = len_buf.append
        append_kind = kind_buf.append
        append_op = op_buf.append

        for op, request in enumerate(chunk, start):
            req_length = request.length
            if request.is_write:
                append_pba(frontier)
                append_len(req_length)
                append_kind(_KIND_WRITE)
                append_op(op)
                map_range(request.lba, frontier, req_length)
                frontier += req_length
                writes += 1
                sectors_written += req_length
                continue

            req_lba = request.lba
            if req_lba + req_length > frontier_base:
                raise ValueError(
                    f"request [{req_lba}, {req_lba + req_length}) crosses the "
                    f"frontier base {frontier_base}; size the log above the "
                    "workload's LBA space"
                )
            pieces = lookup_pieces(req_lba, req_length)
            fragments = len(pieces)
            reads += 1
            sectors_read += req_length
            read_fragments += fragments
            if fragments > 1:
                fragmented_reads += 1
                group_start.append(stream_len + len(pba_buf))
                group_size.append(fragments)
            for pba, piece_length, _hole in pieces:
                append_pba(pba)
                append_len(piece_length)
                append_kind(_KIND_READ)
                append_op(op)

        if pba_buf:
            pba_chunks.append(np.asarray(pba_buf, dtype=np.int64))
            len_chunks.append(np.asarray(len_buf, dtype=np.int64))
            kind_chunks.append(np.asarray(kind_buf, dtype=np.int8))
            op_chunks.append(np.asarray(op_buf, dtype=np.int64))
            stream_len += len(pba_buf)

    return _assemble_stream(
        trace,
        translator,
        frontier,
        pba_chunks,
        len_chunks,
        kind_chunks,
        op_chunks,
        np.asarray(group_start, dtype=np.int64),
        np.asarray(group_size, dtype=np.int64),
        reads,
        writes,
        sectors_read,
        sectors_written,
        read_fragments,
        fragmented_reads,
    )


def _record_stream_batched(
    trace: Trace,
    translator: LogStructuredTranslator,
) -> FragmentStream:
    """Run-split recording on an :class:`ArrayExtentMap` translator.

    Plain LS needs no technique windows, so the trace splits into maximal
    same-kind runs: a write run allocates all its frontier PBAs with one
    cumulative sum and applies them via ``map_range_batch``; a read run
    resolves through a single ``lookup_pieces_batch`` call whose
    ``offsets`` directly yield per-read fragment counts, the fragmented
    groups, and the repeated ``op_index`` column.  Produces streams
    bit-identical to :func:`_record_stream_scalar`.
    """
    amap = translator.address_map
    frontier = translator.frontier
    frontier_base = translator.frontier_base

    is_read, lba_all, len_all = trace.as_arrays()
    n = int(len_all.shape[0])

    # The scalar loop rejects the first read crossing the frontier base
    # the moment it reaches it; nothing of the partially-built stream is
    # observable after the raise, so pre-scanning and failing up front is
    # exactly equivalent.
    violating = is_read & (lba_all + len_all > frontier_base)
    if violating.any():
        bad = int(violating.argmax())
        req_lba = int(lba_all[bad])
        req_length = int(len_all[bad])
        raise ValueError(
            f"request [{req_lba}, {req_lba + req_length}) crosses the "
            f"frontier base {frontier_base}; size the log above the "
            "workload's LBA space"
        )

    pba_chunks: List[np.ndarray] = []
    len_chunks: List[np.ndarray] = []
    kind_chunks: List[np.ndarray] = []
    op_chunks: List[np.ndarray] = []
    group_start_chunks: List[np.ndarray] = []
    group_size_chunks: List[np.ndarray] = []
    stream_len = 0

    reads = writes = 0
    sectors_read = sectors_written = 0
    read_fragments = fragmented_reads = 0

    if n:
        edges = np.flatnonzero(is_read[1:] != is_read[:-1]) + 1
        bounds = [0, *edges.tolist(), n]
        for run_start, run_stop in zip(bounds[:-1], bounds[1:]):
            run_ops = run_stop - run_start
            run_len = len_all[run_start:run_stop]
            run_total = int(run_len.sum())
            if not is_read[run_start]:
                # Write run: batched frontier allocation (exclusive
                # cumulative sum) + one map_range_batch.
                run_pba = np.empty(run_ops, dtype=np.int64)
                run_pba[0] = frontier
                np.cumsum(run_len[:-1], out=run_pba[1:])
                run_pba[1:] += frontier
                amap.map_range_batch(
                    lba_all[run_start:run_stop], run_pba, run_len
                )
                frontier += run_total
                writes += run_ops
                sectors_written += run_total
                pba_chunks.append(run_pba)
                len_chunks.append(run_len)
                kind_chunks.append(np.full(run_ops, _KIND_WRITE, dtype=np.int8))
                op_chunks.append(np.arange(run_start, run_stop, dtype=np.int64))
                stream_len += run_ops
                continue

            piece_pba, piece_len, _hole, offsets = amap.lookup_pieces_batch(
                lba_all[run_start:run_stop], run_len
            )
            counts = np.diff(offsets)
            reads += run_ops
            sectors_read += run_total
            read_fragments += int(offsets[-1])
            fragmented = np.flatnonzero(counts > 1)
            if fragmented.size:
                fragmented_reads += int(fragmented.size)
                group_start_chunks.append(stream_len + offsets[fragmented])
                group_size_chunks.append(counts[fragmented])
            pba_chunks.append(piece_pba)
            len_chunks.append(piece_len)
            kind_chunks.append(
                np.full(piece_pba.shape[0], _KIND_READ, dtype=np.int8)
            )
            op_chunks.append(
                np.repeat(np.arange(run_start, run_stop, dtype=np.int64), counts)
            )
            stream_len += int(piece_pba.shape[0])

    group_start = (
        np.concatenate(group_start_chunks)
        if group_start_chunks
        else np.empty(0, dtype=np.int64)
    )
    group_size = (
        np.concatenate(group_size_chunks)
        if group_size_chunks
        else np.empty(0, dtype=np.int64)
    )
    return _assemble_stream(
        trace,
        translator,
        frontier,
        pba_chunks,
        len_chunks,
        kind_chunks,
        op_chunks,
        group_start,
        group_size,
        reads,
        writes,
        sectors_read,
        sectors_written,
        read_fragments,
        fragmented_reads,
    )


def _assemble_stream(
    trace: Trace,
    translator: LogStructuredTranslator,
    frontier: int,
    pba_chunks: List[np.ndarray],
    len_chunks: List[np.ndarray],
    kind_chunks: List[np.ndarray],
    op_chunks: List[np.ndarray],
    group_start: np.ndarray,
    group_size: np.ndarray,
    reads: int,
    writes: int,
    sectors_read: int,
    sectors_written: int,
    read_fragments: int,
    fragmented_reads: int,
) -> FragmentStream:
    """Concatenate recording buffers and freeze the finished stream."""
    pba = (
        np.concatenate(pba_chunks) if pba_chunks else np.empty(0, dtype=np.int64)
    )
    length = (
        np.concatenate(len_chunks) if len_chunks else np.empty(0, dtype=np.int64)
    )
    kind = (
        np.concatenate(kind_chunks) if kind_chunks else np.empty(0, dtype=np.int8)
    )
    op_index = (
        np.concatenate(op_chunks) if op_chunks else np.empty(0, dtype=np.int64)
    )
    for array in (pba, length, kind, op_index):
        array.setflags(write=False)

    # Leave the layout translator in the exact reference end-state.
    translator._frontier = frontier
    if pba.shape[0]:
        translator.head._position = int(pba[-1] + length[-1])

    return FragmentStream(
        trace_name=trace.name,
        frontier_base=translator.frontier_base,
        frontier=frontier,
        layout=translator,
        pba=pba,
        length=length,
        kind=kind,
        op_index=op_index,
        group_start=group_start,
        group_size=group_size,
        reads=reads,
        writes=writes,
        sectors_read=sectors_read,
        sectors_written=sectors_written,
        read_fragments=read_fragments,
        fragmented_reads=fragmented_reads,
    )


# --------------------------------------------------------------------- #
# Evaluation: one configuration against the recorded stream
# --------------------------------------------------------------------- #


def _classify(
    pba: np.ndarray, length: np.ndarray, kind: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int, int, Optional[int]]:
    """Vectorized seek classification of a (kept) access stream.

    Returns ``(distances, distance_is_read, read_seeks, write_seeks,
    final_head_position)``; the first access never seeks (fresh head).
    """
    if pba.shape[0] == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool),
            0,
            0,
            None,
        )
    prev_end = np.empty_like(pba)
    prev_end[0] = pba[0]
    np.add(pba[:-1], length[:-1], out=prev_end[1:])
    seek = pba != prev_end
    seek_kinds = kind[seek]
    distances = (pba - prev_end)[seek]
    distance_is_read = seek_kinds == _KIND_READ
    read_seeks = int(np.count_nonzero(distance_is_read))
    write_seeks = int(seek_kinds.shape[0] - read_seeks)
    return (
        distances,
        distance_is_read,
        read_seeks,
        write_seeks,
        int(pba[-1] + length[-1]),
    )


def _description(config: TechniqueConfig) -> str:
    """The reference translator's description for a defrag-free config."""
    parts = ["LS"]
    if config.prefetch is not None:
        parts.append("prefetch")
    if config.cache is not None:
        parts.append("cache")
    return "+".join(parts)


def _stream_stats(
    stream: FragmentStream,
    cache_hits: int,
    buffer_hits: int,
    read_seeks: int,
    write_seeks: int,
) -> SimStats:
    stats = SimStats()
    stats.reads = stream.reads
    stats.writes = stream.writes
    stats.sectors_read = stream.sectors_read
    stats.sectors_written = stream.sectors_written
    stats.read_fragments = stream.read_fragments
    stats.fragmented_reads = stream.fragmented_reads
    stats.cache_fragment_hits = cache_hits
    stats.buffer_fragment_hits = buffer_hits
    stats.read_seeks = read_seeks
    stats.write_seeks = write_seeks
    return stats


def _result(
    stream: FragmentStream,
    config: TechniqueConfig,
    keep: Optional[np.ndarray],
    cache_hits: int,
    buffer_hits: int,
    cache: Optional[SelectiveFragmentCache],
    prefetcher: Optional[LookAheadBehindPrefetcher],
) -> StreamRunResult:
    if keep is None:
        kept = (stream.pba, stream.length, stream.kind)
    else:
        kept = (stream.pba[keep], stream.length[keep], stream.kind[keep])
    distances, distance_is_read, read_seeks, write_seeks, head = _classify(*kept)
    stats = _stream_stats(stream, cache_hits, buffer_hits, read_seeks, write_seeks)
    return StreamRunResult(
        run_result=RunResult(
            trace_name=stream.trace_name,
            translator=_description(config),
            stats=stats,
        ),
        distances=distances,
        distance_is_read=distance_is_read,
        frontier=stream.frontier,
        head_position=head,
        cache=cache,
        prefetcher=prefetcher,
    )


def stream_replay(
    stream: FragmentStream, config: TechniqueConfig
) -> StreamRunResult:
    """Evaluate one defrag-free configuration against a recorded stream.

    The policy loop visits only the fragments of fragmented reads (every
    other access reaches the disk unconditionally) and mirrors the
    reference service order exactly: cache lookup, then prefetch-buffer
    coverage, then the disk access followed by window prefetch and cache
    admission.  Raises :class:`StreamUnsupportedError` for configurations
    without a stream kernel (NoLS, defrag).
    """
    if not supports_stream(config):
        raise StreamUnsupportedError(
            f"no stream kernel for config {config!r}; use repro.core.batch "
            "(defrag / NoLS) or the reference Simulator"
        )
    cache = SelectiveFragmentCache(config.cache) if config.cache else None
    prefetcher = (
        LookAheadBehindPrefetcher(config.prefetch) if config.prefetch else None
    )
    if cache is None and prefetcher is None:
        return _result(stream, config, None, 0, 0, None, None)

    keep = np.ones(stream.accesses, dtype=bool)
    cache_hits = buffer_hits = 0
    pba, length = stream.pba, stream.length
    for start, size in zip(stream.group_start.tolist(), stream.group_size.tolist()):
        for i in range(start, start + size):
            piece_pba = int(pba[i])
            piece_length = int(length[i])
            if cache is not None and cache.lookup(piece_pba, piece_length):
                cache_hits += 1
                keep[i] = False
                continue
            if prefetcher is not None and prefetcher.covers(piece_pba, piece_length):
                buffer_hits += 1
                keep[i] = False
                continue
            if prefetcher is not None:
                prefetcher.note_fragment_read(piece_pba, piece_length)
            if cache is not None:
                cache.admit(piece_pba, piece_length)
    return _result(stream, config, keep, cache_hits, buffer_hits, cache, prefetcher)


# --------------------------------------------------------------------- #
# Capacity sweep: one stack-distance pass, one threshold per point
# --------------------------------------------------------------------- #


class _Fenwick:
    """Minimal Fenwick (binary indexed) tree for the stack-distance pass."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        tree = self.tree
        while index <= self.size:
            tree[index] += delta
            index += index & (-index)

    def prefix(self, index: int) -> int:
        tree = self.tree
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total


def cache_hit_thresholds(
    stream: FragmentStream, block_sectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimum hitting capacity, in blocks, for every policy-eligible fragment.

    One Mattson stack-distance pass over the fragment accesses of the
    recorded stream.  Returns ``(access_indices, min_blocks)``: for the
    fragment at stream index ``access_indices[i]``, a selective cache of
    ``c`` blocks (and this ``block_sectors``) hits **iff**
    ``min_blocks[i] <= c``.  Fragments touching a never-before-cached
    block get a sentinel larger than any real capacity.

    This is sound because the cache's recency timeline is
    capacity-independent: whether a fragment hits (``touch_range``) or
    misses (``admit``), all its blocks end up most-recently-used in block
    order, so a capacity-``c`` cache always holds exactly the ``c`` most
    recently touched distinct blocks (LRU stack inclusion) and residency
    reduces to a stack-distance threshold.
    """
    if block_sectors <= 0:
        raise ValueError(f"block_sectors must be > 0, got {block_sectors}")
    access_indices = stream.fragment_access_indices()
    if access_indices.size == 0:
        return access_indices, np.empty(0, dtype=np.int64)
    pba = stream.pba[access_indices]
    length = stream.length[access_indices]
    first_blocks = pba // block_sectors
    last_blocks = (pba + length - 1) // block_sectors
    total_touches = int((last_blocks - first_blocks + 1).sum())

    fenwick = _Fenwick(total_touches)
    fenwick_add = fenwick.add
    fenwick_prefix = fenwick.prefix
    last_touch: Dict[int, int] = {}
    alive = 0
    clock = 0
    min_blocks = np.empty(access_indices.size, dtype=np.int64)

    firsts = first_blocks.tolist()
    lasts = last_blocks.tolist()
    for position, (first, last) in enumerate(zip(firsts, lasts)):
        # Rank phase: the state is frozen while contains_range() checks.
        worst = 0
        for block in range(first, last + 1):
            touched_at = last_touch.get(block)
            if touched_at is None:
                worst = -1
                break
            rank = alive - fenwick_prefix(touched_at - 1)
            if rank > worst:
                worst = rank
        min_blocks[position] = _NEVER_HITS if worst < 0 else worst
        # Touch phase: hit or miss, every block becomes MRU in block order.
        for block in range(first, last + 1):
            touched_at = last_touch.get(block)
            if touched_at is None:
                alive += 1
            else:
                fenwick_add(touched_at, -1)
            clock += 1
            fenwick_add(clock, 1)
            last_touch[block] = clock
    return access_indices, min_blocks


def _capacity_blocks(config: TechniqueConfig) -> int:
    """The cache's block capacity, exactly as :class:`LRUCache` computes it."""
    cache_config = config.cache
    capacity_bytes = int(cache_config.capacity_mib * BYTES_PER_MIB)
    return capacity_bytes // (cache_config.block_sectors * SECTOR_BYTES)


def stream_cache_sweep(
    stream: FragmentStream,
    configs: Sequence[TechniqueConfig],
    thresholds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> List[StreamRunResult]:
    """Evaluate a selective-cache capacity sweep against one recording.

    Every config must satisfy :func:`supports_cache_sweep` and share one
    ``block_sectors``.  The stack-distance pass runs once (pass a
    precomputed ``thresholds`` pair to reuse it across calls); each sweep
    point then costs a threshold compare plus the vectorized seek
    classification.  Results are exact and in ``configs`` order; sweep
    results carry ``cache=None`` (no per-point cache object is ever
    built).
    """
    configs = list(configs)
    if not configs:
        return []
    for config in configs:
        if not supports_cache_sweep(config):
            raise StreamUnsupportedError(
                f"config {config.name!r} cannot join a shared cache sweep "
                "(requires log-structured + cache only)"
            )
    block_sectors = configs[0].cache.block_sectors
    if any(c.cache.block_sectors != block_sectors for c in configs):
        raise StreamUnsupportedError(
            "cache sweep requires a single block_sectors across all configs"
        )
    if thresholds is None:
        thresholds = cache_hit_thresholds(stream, block_sectors)
    access_indices, min_blocks = thresholds

    results: List[StreamRunResult] = []
    for config in configs:
        hit = min_blocks <= _capacity_blocks(config)
        keep = np.ones(stream.accesses, dtype=bool)
        keep[access_indices[hit]] = False
        cache_hits = int(np.count_nonzero(hit))
        results.append(
            _result(stream, config, keep, cache_hits, 0, None, None)
        )
    return results


# --------------------------------------------------------------------- #
# Derived analyses over the recorded stream (no re-replay)
# --------------------------------------------------------------------- #


def stream_windowed_long_seeks(
    stream: FragmentStream,
    window_ops: int = 1000,
    min_seek_kib: float = 500.0,
) -> List[int]:
    """Per-window long-seek counts of the plain-LS replay (Fig. 3's LS side).

    Exactly :class:`~repro.analysis.temporal.WindowedSeekRecorder` attached
    to a plain-LS reference replay: windows are ``op_index // window_ops``
    over the *trace* request index, a seek is an access whose pba differs
    from the previous access's end, and only ``|distance| >=
    kib_to_sectors(min_seek_kib)`` counts.  The series is dense over every
    window the trace touches (the recorder observes all requests, seeking
    or not), so its length is ``(n_requests - 1) // window_ops + 1``.
    """
    from repro.util.units import kib_to_sectors

    if window_ops <= 0:
        raise ValueError(f"window_ops must be > 0, got {window_ops}")
    if min_seek_kib < 0:
        raise ValueError(f"min_seek_kib must be >= 0, got {min_seek_kib}")
    n_requests = stream.reads + stream.writes
    if n_requests == 0:
        return []
    n_windows = (n_requests - 1) // window_ops + 1
    pba, length = stream.pba, stream.length
    if pba.shape[0] == 0:
        return [0] * n_windows
    prev_end = np.empty_like(pba)
    prev_end[0] = pba[0]
    np.add(pba[:-1], length[:-1], out=prev_end[1:])
    deltas = pba - prev_end
    long = (deltas != 0) & (np.abs(deltas) >= kib_to_sectors(min_seek_kib))
    counts = np.bincount(
        stream.op_index[long] // window_ops, minlength=n_windows
    )
    return counts.tolist()


def stream_fragment_stats(stream: FragmentStream) -> List[Tuple[int, int]]:
    """Per-fragment ``(access_count, size_sectors)`` pairs (Fig. 10's input).

    Exactly :meth:`~repro.analysis.popularity.FragmentPopularityRecorder.
    fragment_stats` under a plain-LS replay: fragments are keyed by pba
    (stable — the infinite log never rewrites a physical extent), counts
    tally every policy-eligible access, sizes take the maximum observed
    access length, and the order is first-access order (the recorder's
    dict insertion order), which is the tie-break
    :func:`~repro.analysis.fast.popularity_curve_fast` relies on.
    """
    indices = stream.fragment_access_indices()
    if indices.size == 0:
        return []
    pbas = stream.pba[indices]
    lengths = stream.length[indices]
    _, first_seen, inverse = np.unique(
        pbas, return_index=True, return_inverse=True
    )
    counts = np.bincount(inverse)
    sizes = np.zeros(first_seen.size, dtype=np.int64)
    np.maximum.at(sizes, inverse, lengths)
    order = np.argsort(first_seen, kind="stable")
    return [
        (int(count), int(size))
        for count, size in zip(counts[order], sizes[order])
    ]
