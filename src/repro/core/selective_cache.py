"""Translation-aware selective caching (paper §IV-C, Algorithm 3).

Fragment accesses are highly skewed (Fig. 10): a small population of
fragments causes most fragment-induced seeks, and together they fit in a
few tens of MB.  Caching *only* data returned by fragmented reads therefore
eliminates most extra seeks with a cache far smaller than the host buffer
cache — and without competing with it, since unfragmented data is never
admitted (no cache pollution).

The cache is keyed by **physical** address.  Under the infinite-disk log
model this is sound: log PBAs are never rewritten, and the identity region
(PBA = LBA, holding pre-trace data) is never written either — every host
write goes to the frontier.  A logical overwrite simply redirects future
reads to new PBAs; stale cached blocks age out via LRU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.lru import LRUCache
from repro.util.units import BYTES_PER_MIB


@dataclass(frozen=True)
class SelectiveCacheConfig:
    """Sizing for the selective fragment cache.

    Attributes:
        capacity_mib: RAM budget; the paper evaluates with 64 MB.
        block_sectors: Caching granularity (4 KiB blocks by default).
    """

    capacity_mib: float = 64.0
    block_sectors: int = 8

    def __post_init__(self) -> None:
        if self.capacity_mib <= 0:
            raise ValueError(f"capacity_mib must be > 0, got {self.capacity_mib}")
        if self.block_sectors <= 0:
            raise ValueError(f"block_sectors must be > 0, got {self.block_sectors}")


class SelectiveFragmentCache:
    """Hit/miss bookkeeping for Algorithm 3.

    The translator consults :meth:`lookup` for each fragment of a
    fragmented read (CheckCache); misses are read from disk and admitted
    via :meth:`admit` (ReadDisk + WriteCache).  Unfragmented reads bypass
    the cache entirely, per the algorithm's ``FragmentedRead`` guard.
    """

    def __init__(self, config: Optional[SelectiveCacheConfig] = None) -> None:
        # A `config=SelectiveCacheConfig()` default would be evaluated once
        # at def time and shared by every instance; build one per instance.
        config = SelectiveCacheConfig() if config is None else config
        self._config = config
        self._lru = LRUCache(
            capacity_bytes=int(config.capacity_mib * BYTES_PER_MIB),
            block_sectors=config.block_sectors,
        )
        self.hits = 0
        self.misses = 0

    @property
    def config(self) -> SelectiveCacheConfig:
        return self._config

    @property
    def used_bytes(self) -> int:
        return self._lru.used_bytes

    @property
    def capacity_bytes(self) -> int:
        return self._lru.capacity_bytes

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, pba: int, length: int) -> bool:
        """CheckCache: True (and refresh recency) if the fragment is resident."""
        if self._lru.hit_and_touch(pba, length):
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, pba: int, length: int) -> None:
        """WriteCache: admit a fragment just read from disk."""
        self._lru.insert_range(pba, length)

    def clear(self) -> None:
        self._lru.clear()

    def state_dict(self) -> dict:
        """JSON-serializable mutable state (checkpoint snapshot).

        Configuration is *not* included — restore builds a cache from the
        same :class:`SelectiveCacheConfig` and loads this state into it.
        """
        return {
            "blocks": self._lru.resident_blocks(),
            "evictions": self._lru.evictions,
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (replaces current state)."""
        self._lru.restore_blocks(state["blocks"], evictions=state["evictions"])
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
