"""Seek amplification factor (SAF) — the paper's evaluation metric.

    "Performance is expressed as seek amplification: the ratio of seeks
    (read, write, or total) for the log-structured system to seeks incurred
    on a conventional drive by the workload trace."  (§II)

SAF < 1 means log-structuring *reduced* seeks (typical for write-intensive
workloads); SAF > 1 means read fragmentation cost more than sequential
writing saved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.outcomes import SimStats


@dataclass(frozen=True)
class SeekAmplification:
    """Read / write / total seek amplification of one translation vs. NoLS.

    A component is ``inf`` when the baseline had zero seeks of that kind
    but the translated replay had some, and 1.0 when both had zero.
    """

    read: float
    write: float
    total: float

    def improvement_over(self, other: "SeekAmplification") -> float:
        """How many times lower this total SAF is than ``other``'s.

        Used for the paper's headline claims ("up to 18x improvement of
        seek amplification factor").  Values > 1 mean *this* is better.
        """
        if self.total == 0:
            return math.inf if other.total > 0 else 1.0
        return other.total / self.total


def _ratio(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return math.inf if numerator > 0 else 1.0
    return numerator / denominator


def seek_amplification(translated: SimStats, baseline: SimStats) -> SeekAmplification:
    """Compute SAF of ``translated`` relative to the ``baseline`` replay.

    Defrag rewrite seeks are charged to the translated system's write
    seeks: they are real head movements the technique added.
    """
    return SeekAmplification(
        read=_ratio(translated.read_seeks, baseline.read_seeks),
        write=_ratio(translated.total_write_seeks, baseline.write_seeks),
        total=_ratio(translated.total_seeks, baseline.total_seeks),
    )


def time_amplification(
    translated_distances,
    baseline_distances,
    model=None,
) -> float:
    """Seek-*time* amplification factor (TAF).

    The paper evaluates by counting seeks but motivates them by cost
    (§III): a missed rotation costs a full revolution while a short
    forward skip costs almost nothing, so two replays with equal seek
    counts can differ widely in time.  TAF weights each seek in a replay's
    seek log by the §III piecewise cost model and takes the ratio.

    Args:
        translated_distances: Signed seek distances of the translated
            replay (e.g. ``SeekLogRecorder.distances``).
        baseline_distances: Same for the conventional-drive replay.
        model: :class:`~repro.disk.seek_time.SeekTimeModel` (default one).

    Returns ``inf`` when the baseline spent no seek time but the
    translated replay did, and 1.0 when neither spent any.
    """
    from repro.disk.seek_time import SeekTimeModel

    model = model or SeekTimeModel()
    translated_ms = model.total_ms(translated_distances)
    baseline_ms = model.total_ms(baseline_distances)
    if baseline_ms == 0.0:
        return math.inf if translated_ms > 0.0 else 1.0
    return translated_ms / baseline_ms
