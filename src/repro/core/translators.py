"""Block translation layers: the in-place baseline and the log-structured
translator with the paper's three seek-reduction techniques.

Disk model (paper §II–III):

* Infinite disk, no cleaning.  The write frontier starts just above the
  highest sector the trace touches; every write — host or defrag — goes to
  the frontier and advances it.
* Data never written during the trace is assumed resident at PBA = LBA
  below the frontier base ("unwritten data at its LBA", §III), so reads of
  pre-trace data behave exactly as on a conventional drive.
* A seek is an access that does not start at the sector immediately
  following the previous access; it is a read or write seek according to
  the direction of the second operation.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.core.defrag import OpportunisticDefrag
from repro.core.outcomes import AccessSource, IOOutcome, SegmentAccess
from repro.core.prefetch import LookAheadBehindPrefetcher
from repro.core.selective_cache import SelectiveFragmentCache
from repro.disk.head import DiskHead
from repro.extentmap.base import AddressMap
from repro.extentmap.extent_map import ExtentMap
from repro.trace.record import IORequest


class Translator(abc.ABC):
    """A block device front-end that maps host requests to physical accesses."""

    def __init__(self) -> None:
        self._head = DiskHead()

    @property
    def head(self) -> DiskHead:
        return self._head

    @abc.abstractmethod
    def submit(self, request: IORequest) -> IOOutcome:
        """Serve one host request and account its physical behaviour."""

    @property
    @abc.abstractmethod
    def description(self) -> str:
        """Short label used in reports (e.g. ``"LS+cache"``)."""


class InPlaceTranslator(Translator):
    """Conventional update-in-place translation (the paper's *NoLS* baseline).

    Every request is served at PBA = LBA in a single physically contiguous
    access; the seek count of a replay is the workload's intrinsic seek
    behaviour on a conventional drive, the denominator of the SAF metric.
    """

    @property
    def description(self) -> str:
        return "NoLS"

    def state_dict(self) -> dict:
        """Complete mutable state (the head position is all there is)."""
        return {"kind": "in-place", "head_position": self._head.position}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this translator."""
        if state.get("kind") != "in-place":
            raise ValueError(f"not an in-place translator state: {state.get('kind')!r}")
        self._head.restore_position(state["head_position"])

    def submit(self, request: IORequest) -> IOOutcome:
        event = self._head.access(request.lba, request.length)
        access = SegmentAccess(
            pba=request.lba,
            length=request.length,
            source=AccessSource.DISK,
            seek=event.seek,
            distance=event.distance,
        )
        seeks = 1 if event.seek else 0
        return IOOutcome(
            request=request,
            accesses=(access,),
            fragments=1,
            read_seeks=seeks if request.is_read else 0,
            write_seeks=seeks if request.is_write else 0,
        )


class LogStructuredTranslator(Translator):
    """Log-structured translation with optional seek-reduction techniques.

    Args:
        frontier_base: First log sector; must sit above every LBA the
            workload will touch (use ``Trace.max_end``).  Addresses below it
            form the identity region holding "unwritten" pre-trace data.
        address_map: LBA→PBA map implementation (default a fresh
            :class:`~repro.extentmap.extent_map.ExtentMap`).
        defrag: Opportunistic-defragmentation policy (Algorithm 1), or None.
        prefetcher: Look-ahead-behind prefetcher (Algorithm 2), or None.
        cache: Selective fragment cache (Algorithm 3), or None.

    Techniques compose: when several are enabled, each fragment of a
    fragmented read is served from the selective cache if resident, else
    from the prefetch buffer if covered, else from the media.  Fig. 11
    evaluates them one at a time; composition is exercised by the ablation
    benchmarks.
    """

    def __init__(
        self,
        frontier_base: int,
        address_map: Optional[AddressMap] = None,
        defrag: Optional[OpportunisticDefrag] = None,
        prefetcher: Optional[LookAheadBehindPrefetcher] = None,
        cache: Optional[SelectiveFragmentCache] = None,
    ) -> None:
        super().__init__()
        if frontier_base < 0:
            raise ValueError(f"frontier_base must be >= 0, got {frontier_base}")
        self._map = address_map if address_map is not None else ExtentMap()
        self._frontier_base = frontier_base
        self._frontier = frontier_base
        self._defrag = defrag
        self._prefetcher = prefetcher
        self._cache = cache

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def description(self) -> str:
        parts = ["LS"]
        if self._defrag is not None:
            parts.append("defrag")
        if self._prefetcher is not None:
            parts.append("prefetch")
        if self._cache is not None:
            parts.append("cache")
        return "+".join(parts)

    @property
    def frontier(self) -> int:
        """Next sector the log will write (the write frontier)."""
        return self._frontier

    @property
    def frontier_base(self) -> int:
        return self._frontier_base

    @property
    def log_sectors_written(self) -> int:
        """Total sectors appended to the log (host writes + defrag rewrites)."""
        return self._frontier - self._frontier_base

    @property
    def address_map(self) -> AddressMap:
        return self._map

    @property
    def defrag(self) -> Optional[OpportunisticDefrag]:
        return self._defrag

    @property
    def prefetcher(self) -> Optional[LookAheadBehindPrefetcher]:
        return self._prefetcher

    @property
    def cache(self) -> Optional[SelectiveFragmentCache]:
        return self._cache

    def static_fragmentation(self) -> int:
        """Number of mapped extents — seeks a full-LBA-space scan would pay."""
        return self._map.mapped_extent_count()

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Complete mutable state of the translator, serializable.

        The extent map is exported as three parallel int64 numpy arrays
        (everything else is plain Python scalars/lists), so the snapshot
        can be persisted through :mod:`repro.util.npystore` and restored
        to a byte-identical translator.  Technique *configuration* is not
        included: restore builds a translator from the same
        :class:`~repro.core.config.TechniqueConfig` and loads this state
        into it (:meth:`load_state` checks the shapes match).

        Requires an address map with an ``extent_arrays`` export (both
        shipped tiers — :class:`ExtentMap` and
        :class:`~repro.extentmap.array_map.ArrayExtentMap` — have one,
        and export identical arrays for identical mappings, so snapshots
        restore across tiers).
        """
        if not hasattr(self._map, "extent_arrays"):
            raise TypeError(
                f"state_dict needs an address map with extent_arrays, "
                f"got {type(self._map).__name__}"
            )
        map_lba, map_pba, map_length = self._map.extent_arrays()
        return {
            "kind": "log-structured",
            "frontier_base": self._frontier_base,
            "frontier": self._frontier,
            "head_position": self._head.position,
            "defrag": self._defrag.state_dict() if self._defrag else None,
            "prefetch": self._prefetcher.state_dict() if self._prefetcher else None,
            "cache": self._cache.state_dict() if self._cache else None,
            "map_lba": map_lba,
            "map_pba": map_pba,
            "map_length": map_length,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this translator.

        The translator must have been built with the same technique
        line-up (and configs) as the snapshotted one; a presence mismatch
        raises rather than silently dropping state.
        """
        if state.get("kind") != "log-structured":
            raise ValueError(
                f"not a log-structured translator state: {state.get('kind')!r}"
            )
        for name, component, snapshot in (
            ("defrag", self._defrag, state["defrag"]),
            ("prefetch", self._prefetcher, state["prefetch"]),
            ("cache", self._cache, state["cache"]),
        ):
            if (component is None) != (snapshot is None):
                raise ValueError(
                    f"technique mismatch restoring state: {name} is "
                    f"{'absent' if component is None else 'present'} on the "
                    f"translator but {'present' if snapshot else 'absent'} "
                    "in the snapshot"
                )
        # Rebuild with the tier this translator was constructed with: the
        # exported arrays are tier-independent canonical form, so a
        # snapshot taken on one tier restores exactly onto any other.
        self._map = type(self._map).from_extent_arrays(
            state["map_lba"], state["map_pba"], state["map_length"]
        )
        self._frontier_base = int(state["frontier_base"])
        self._frontier = int(state["frontier"])
        head = state["head_position"]
        self._head.restore_position(None if head is None else int(head))
        if self._defrag is not None:
            self._defrag.load_state(state["defrag"])
        if self._prefetcher is not None:
            self._prefetcher.load_state(state["prefetch"])
        if self._cache is not None:
            self._cache.load_state(state["cache"])

    # ------------------------------------------------------------------ #
    # Request service
    # ------------------------------------------------------------------ #

    def submit(self, request: IORequest) -> IOOutcome:
        if request.is_write:
            return self._do_write(request)
        return self._do_read(request)

    def _do_write(self, request: IORequest) -> IOOutcome:
        """Append the write at the frontier and remap the logical range."""
        access = self._append_to_log(request.lba, request.length)
        return IOOutcome(
            request=request,
            accesses=(access,),
            fragments=1,
            read_seeks=0,
            write_seeks=1 if access.seek else 0,
        )

    def _do_read(self, request: IORequest) -> IOOutcome:
        """Serve a read from its current physical locations (Algorithms 1–3)."""
        pieces = self._resolve(request.lba, request.length)
        fragments = len(pieces)
        fragmented = fragments > 1

        accesses: List[SegmentAccess] = []
        read_seeks = 0
        cache_hits = 0
        buffer_hits = 0
        for pba, length, hole in pieces:
            if fragmented and self._cache is not None and self._cache.lookup(pba, length):
                accesses.append(
                    SegmentAccess(pba, length, AccessSource.CACHE, False, 0, hole)
                )
                cache_hits += 1
                continue
            if (
                fragmented
                and self._prefetcher is not None
                and self._prefetcher.covers(pba, length)
            ):
                accesses.append(
                    SegmentAccess(pba, length, AccessSource.BUFFER, False, 0, hole)
                )
                buffer_hits += 1
                continue
            event = self._head.access(pba, length)
            if event.seek:
                read_seeks += 1
            accesses.append(
                SegmentAccess(pba, length, AccessSource.DISK, event.seek, event.distance, hole)
            )
            if fragmented and self._prefetcher is not None:
                self._prefetcher.note_fragment_read(pba, length)
            if fragmented and self._cache is not None:
                self._cache.admit(pba, length)

        defrag_seeks = 0
        defrag_sectors = 0
        if (
            fragmented
            and self._defrag is not None
            and self._defrag.should_defragment(request.lba, request.length, fragments)
        ):
            rewrite = self._append_to_log(request.lba, request.length, defrag=True)
            accesses.append(rewrite)
            defrag_seeks = 1 if rewrite.seek else 0
            defrag_sectors = request.length
            self._defrag.note_defragmented(request.lba, request.length)

        return IOOutcome(
            request=request,
            accesses=tuple(accesses),
            fragments=fragments,
            read_seeks=read_seeks,
            write_seeks=0,
            defrag_write_seeks=defrag_seeks,
            defrag_rewritten_sectors=defrag_sectors,
            cache_fragment_hits=cache_hits,
            buffer_fragment_hits=buffer_hits,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolve(self, lba: int, length: int) -> List[Tuple[int, int, bool]]:
        """Resolve a logical range to ``(pba, length, is_hole)`` pieces.

        Holes (never-written ranges) resolve to the identity region.  The
        map already merges physically contiguous pieces, so the list length
        is the read's dynamic fragmentation.
        """
        if lba + length > self._frontier_base:
            raise ValueError(
                f"request [{lba}, {lba + length}) crosses the frontier base "
                f"{self._frontier_base}; size the log above the workload's LBA space"
            )
        pieces: List[Tuple[int, int, bool]] = []
        for segment in self._map.lookup(lba, length):
            if segment.is_hole:
                pieces.append((segment.lba, segment.length, True))
            else:
                pieces.append((segment.pba, segment.length, False))
        return pieces

    def _append_to_log(self, lba: int, length: int, defrag: bool = False) -> SegmentAccess:
        """Write ``[lba, lba+length)`` at the frontier and remap it."""
        event = self._head.access(self._frontier, length)
        self._map.map_range(lba, self._frontier, length)
        self._frontier += length
        return SegmentAccess(
            pba=event.pba,
            length=length,
            source=AccessSource.DISK,
            seek=event.seek,
            distance=event.distance,
            defrag=defrag,
        )
