"""Per-operation result types returned by translators.

Every :meth:`Translator.submit` call returns an :class:`IOOutcome`
describing exactly which physical accesses served the request, which of
them seeked, and what each seek-reduction technique contributed.  Recorders
and the analysis layer consume these outcomes; nothing downstream needs to
re-derive physical behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.trace.record import IORequest


class AccessSource(enum.Enum):
    """Where the data for one physical segment came from."""

    DISK = "disk"
    CACHE = "cache"          # translation-aware selective cache hit
    BUFFER = "buffer"        # look-ahead-behind prefetch buffer hit


@dataclass(frozen=True)
class SegmentAccess:
    """One physically contiguous piece of a request's service.

    Attributes:
        pba: First physical sector of the piece.
        length: Sector count.
        source: Medium that served it; only DISK accesses can seek.
        seek: Whether serving it moved the head non-contiguously.
        distance: Signed seek distance in sectors (0 when not a seek).
        hole: True if the piece resolves "unwritten" data at PBA = LBA.
        defrag: True for the log rewrite appended by opportunistic
            defragmentation (seeks on it are write-direction).
    """

    pba: int
    length: int
    source: AccessSource
    seek: bool
    distance: int
    hole: bool = False
    defrag: bool = False


@dataclass(frozen=True)
class IOOutcome:
    """Full account of how one request was served.

    Attributes:
        request: The request served.
        accesses: Segment accesses in service order (includes cache and
            buffer hits, which never seek).
        fragments: Number of physical segments the logical range resolved
            to — the paper's *dynamic fragmentation* of this read (1 for
            writes and unfragmented reads).
        read_seeks / write_seeks: Seeks charged to this request, classified
            by the direction of the seeking operation (§II).
        defrag_write_seeks: Seeks incurred by an opportunistic-defrag
            rewrite triggered by this read (charged as write seeks in
            totals).
        defrag_rewritten_sectors: Sectors rewritten by that defrag.
        cache_fragment_hits: Fragments served from the selective cache.
        buffer_fragment_hits: Fragments served from the prefetch buffer.
    """

    request: IORequest
    accesses: Tuple[SegmentAccess, ...]
    fragments: int
    read_seeks: int
    write_seeks: int
    defrag_write_seeks: int = 0
    defrag_rewritten_sectors: int = 0
    cache_fragment_hits: int = 0
    buffer_fragment_hits: int = 0

    @property
    def total_seeks(self) -> int:
        return self.read_seeks + self.write_seeks + self.defrag_write_seeks

    @property
    def fragmented(self) -> bool:
        """True when the request resolved to more than one physical piece."""
        return self.fragments > 1

    @property
    def seek_distances(self) -> List[int]:
        """Signed distances of the seeks in this outcome, in service order."""
        return [a.distance for a in self.accesses if a.seek]


@dataclass
class SimStats:
    """Aggregate counters over a replay (summed :class:`IOOutcome` fields)."""

    reads: int = 0
    writes: int = 0
    read_seeks: int = 0
    write_seeks: int = 0
    defrag_write_seeks: int = 0
    fragmented_reads: int = 0
    read_fragments: int = 0
    cache_fragment_hits: int = 0
    buffer_fragment_hits: int = 0
    defrag_rewrites: int = 0
    defrag_rewritten_sectors: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    transient_errors: int = 0
    retried_ops: int = 0
    retry_backoff_s: float = 0.0

    @property
    def ops(self) -> int:
        return self.reads + self.writes

    @property
    def seek_counters(self) -> Tuple[int, int, int]:
        """The (read, write, defrag) seek triple — the SAF-relevant core.

        Fault-injection tests compare this across runs: transient errors
        retried by the simulator must never perturb seek accounting.
        """
        return (self.read_seeks, self.write_seeks, self.defrag_write_seeks)

    @property
    def total_seeks(self) -> int:
        """All seeks: host reads + host writes + defrag rewrites."""
        return self.read_seeks + self.write_seeks + self.defrag_write_seeks

    @property
    def total_write_seeks(self) -> int:
        """Write-direction seeks including defrag traffic."""
        return self.write_seeks + self.defrag_write_seeks

    @property
    def write_amplification(self) -> float:
        """Log bytes written per host byte written (1.0 without defrag).

        Opportunistic defragmentation "does not come for free" (§IV-A):
        every rewrite consumes log space and, on a finite disk, brings
        cleaning closer.  This is that cost as a WAF.
        """
        if self.sectors_written == 0:
            return 1.0
        return (
            self.sectors_written + self.defrag_rewritten_sectors
        ) / self.sectors_written

    def absorb(self, outcome: IOOutcome) -> None:
        """Fold one outcome into the aggregate."""
        request = outcome.request
        if request.is_read:
            self.reads += 1
            self.sectors_read += request.length
            self.read_fragments += outcome.fragments
            if outcome.fragmented:
                self.fragmented_reads += 1
        else:
            self.writes += 1
            self.sectors_written += request.length
        self.read_seeks += outcome.read_seeks
        self.write_seeks += outcome.write_seeks
        self.defrag_write_seeks += outcome.defrag_write_seeks
        self.cache_fragment_hits += outcome.cache_fragment_hits
        self.buffer_fragment_hits += outcome.buffer_fragment_hits
        if outcome.defrag_rewritten_sectors:
            self.defrag_rewrites += 1
            self.defrag_rewritten_sectors += outcome.defrag_rewritten_sectors
