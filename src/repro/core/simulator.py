"""Trace replay driver.

:class:`Simulator` feeds a trace through a translator, folds every outcome
into a :class:`~repro.core.outcomes.SimStats`, and fans outcomes out to any
registered recorders.  It is deliberately dumb — all behaviour lives in the
translator and the recorders — so a replay is fully described by
``(trace, translator construction, recorders)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.errors import RetriesExhaustedError, TransientIOError
from repro.core.outcomes import IOOutcome, SimStats
from repro.core.recorders import Recorder
from repro.core.translators import Translator
from repro.trace.trace import Trace
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient I/O errors.

    Drives the simulator's service path when a translator raises
    :class:`~repro.core.errors.TransientIOError`: the request is retried up
    to ``max_retries`` times, charging a *simulated* backoff delay of
    ``base_delay_s * multiplier**attempt`` per retry to
    ``SimStats.retry_backoff_s`` (no wall-clock sleeping — replays stay
    fast and deterministic).

    Attributes:
        max_retries: Retries after the first attempt (so a request is
            tried ``max_retries + 1`` times in total).
        base_delay_s: Simulated delay before the first retry.
        multiplier: Backoff growth factor per subsequent retry.
    """

    max_retries: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        check_non_negative("max_retries", self.max_retries)
        check_non_negative("base_delay_s", self.base_delay_s)
        check_positive("multiplier", self.multiplier)

    def delay_for(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (0-based)."""
        return self.base_delay_s * (self.multiplier ** attempt)


@dataclass(frozen=True)
class RunResult:
    """Summary of one trace replay.

    Attributes:
        trace_name: Name of the replayed trace.
        translator: The translator's description string (e.g. ``"LS+cache"``).
        stats: Aggregate counters.
    """

    trace_name: str
    translator: str
    stats: SimStats


class Simulator:
    """Replays traces through translators.

    Args:
        recorders: Observers receiving every ``(op_index, outcome)`` pair.
        progress_every: If set, invoke ``progress`` every N operations.
        progress: Callback ``(ops_done, ops_total)`` for long replays.
        retry_policy: If set, requests failing with
            :class:`~repro.core.errors.TransientIOError` are retried with
            exponential backoff; without one, transient errors propagate.
    """

    def __init__(
        self,
        recorders: Sequence[Recorder] = (),
        progress_every: Optional[int] = None,
        progress=None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if progress_every is not None and progress_every <= 0:
            raise ValueError(f"progress_every must be > 0, got {progress_every}")
        self._recorders = list(recorders)
        self._progress_every = progress_every
        self._progress = progress
        self._retry_policy = retry_policy

    def add_recorder(self, recorder: Recorder) -> None:
        self._recorders.append(recorder)

    def run(self, trace: Trace, translator: Translator) -> RunResult:
        """Replay ``trace`` through ``translator`` and return the summary."""
        stats = SimStats()
        total = len(trace)
        for op_index, request in enumerate(trace):
            outcome = self._serve(translator, request, op_index, stats)
            stats.absorb(outcome)
            for recorder in self._recorders:
                recorder.observe(op_index, outcome)
            if (
                self._progress_every is not None
                and self._progress is not None
                and (op_index + 1) % self._progress_every == 0
            ):
                self._progress(op_index + 1, total)
        return RunResult(
            trace_name=trace.name,
            translator=translator.description,
            stats=stats,
        )

    def _serve(
        self,
        translator: Translator,
        request,
        op_index: int,
        stats: SimStats,
    ) -> IOOutcome:
        """Submit one request, applying the retry policy if configured.

        Raises :class:`RetriesExhaustedError` when the request keeps
        failing past the policy's budget.  Translators raise
        :class:`TransientIOError` before mutating state, so each retry is a
        clean resubmission and seek accounting is unaffected by retries.
        """
        if self._retry_policy is None:
            return translator.submit(request)
        retried = False
        for attempt in range(self._retry_policy.max_retries + 1):
            try:
                return translator.submit(request)
            except TransientIOError as exc:
                stats.transient_errors += 1
                if not retried:
                    retried = True
                    stats.retried_ops += 1
                if attempt >= self._retry_policy.max_retries:
                    raise RetriesExhaustedError(op_index, attempt + 1, exc) from exc
                stats.retry_backoff_s += self._retry_policy.delay_for(attempt)
        raise AssertionError("unreachable")  # pragma: no cover


def replay(
    trace: Trace,
    translator: Translator,
    recorders: Iterable[Recorder] = (),
    retry_policy: Optional[RetryPolicy] = None,
    fast: bool = False,
) -> RunResult:
    """One-shot convenience wrapper: replay and return the result.

    With ``fast=True`` the replay is dispatched to the vectorized batch
    kernel (:mod:`repro.core.batch`), which produces bit-identical results
    and leaves ``translator`` in the identical final state.  The fast path
    falls back to the reference simulator when it cannot apply — recorders
    or a retry policy are present (they need per-op outcomes), or the
    translator type has no kernel (fault wrappers, media-cache STL) — and
    tallies the reason via
    :func:`repro.experiments.common.note_reference_fallback` so ``--fast``
    runs can report the downgrade instead of hiding it.
    """
    recorders = list(recorders)
    if fast:
        from repro.experiments.common import note_reference_fallback

        if recorders:
            note_reference_fallback("recorders")
        elif retry_policy is not None:
            note_reference_fallback("retry-policy")
        else:
            from repro.core.batch import (
                BatchUnsupportedError,
                batch_replay_translator,
            )

            try:
                return batch_replay_translator(trace, translator).run_result
            except BatchUnsupportedError as exc:
                note_reference_fallback(exc.reason)
    return Simulator(
        recorders=recorders, retry_policy=retry_policy
    ).run(trace, translator)
