"""Trace replay driver.

:class:`Simulator` feeds a trace through a translator, folds every outcome
into a :class:`~repro.core.outcomes.SimStats`, and fans outcomes out to any
registered recorders.  It is deliberately dumb — all behaviour lives in the
translator and the recorders — so a replay is fully described by
``(trace, translator construction, recorders)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.outcomes import SimStats
from repro.core.recorders import Recorder
from repro.core.translators import Translator
from repro.trace.trace import Trace


@dataclass(frozen=True)
class RunResult:
    """Summary of one trace replay.

    Attributes:
        trace_name: Name of the replayed trace.
        translator: The translator's description string (e.g. ``"LS+cache"``).
        stats: Aggregate counters.
    """

    trace_name: str
    translator: str
    stats: SimStats


class Simulator:
    """Replays traces through translators.

    Args:
        recorders: Observers receiving every ``(op_index, outcome)`` pair.
        progress_every: If set, invoke ``progress`` every N operations.
        progress: Callback ``(ops_done, ops_total)`` for long replays.
    """

    def __init__(
        self,
        recorders: Sequence[Recorder] = (),
        progress_every: Optional[int] = None,
        progress=None,
    ) -> None:
        if progress_every is not None and progress_every <= 0:
            raise ValueError(f"progress_every must be > 0, got {progress_every}")
        self._recorders = list(recorders)
        self._progress_every = progress_every
        self._progress = progress

    def add_recorder(self, recorder: Recorder) -> None:
        self._recorders.append(recorder)

    def run(self, trace: Trace, translator: Translator) -> RunResult:
        """Replay ``trace`` through ``translator`` and return the summary."""
        stats = SimStats()
        total = len(trace)
        for op_index, request in enumerate(trace):
            outcome = translator.submit(request)
            stats.absorb(outcome)
            for recorder in self._recorders:
                recorder.observe(op_index, outcome)
            if (
                self._progress_every is not None
                and self._progress is not None
                and (op_index + 1) % self._progress_every == 0
            ):
                self._progress(op_index + 1, total)
        return RunResult(
            trace_name=trace.name,
            translator=translator.description,
            stats=stats,
        )


def replay(
    trace: Trace,
    translator: Translator,
    recorders: Iterable[Recorder] = (),
) -> RunResult:
    """One-shot convenience wrapper: replay and return the result."""
    return Simulator(recorders=list(recorders)).run(trace, translator)
