"""Finite-disk log-structured translation with zone cleaning.

The paper's evaluation uses an infinite disk ("for archival workloads
cleaning may never be needed", §II) — but a deployable SMR translation
layer eventually fills its zones and must garbage-collect.  This module
provides that substrate: a log-structured translator whose log lives in
SMR zones (:class:`~repro.disk.zones.ZonedAddressSpace`), with a
selectable victim policy — greedy (least-valid-first) or LFS-style
cost-benefit — so write amplification and seek amplification can be
studied *jointly*: the trade-off Fig. 11 and the media-cache baseline
only bracket from either side.

Layout: logical space ``[0, frontier_base)`` doubles as the identity
region for pre-trace data (as in the infinite model); the log occupies
``n_zones`` sequential zones starting at ``frontier_base``.  Cleaning
starts when free zones fall to ``reserve_zones`` and relocates the
victim's live data to the current frontier (paying the same seeks any
other I/O pays), then resets the victim.

Per-zone live-sector accounting lives in a numpy
:class:`~repro.extentmap.live_counts.ZoneLiveCounts` array so both this
reference path and the batch kernel (:mod:`repro.core.batch`) share one
bookkeeping structure, and victim selection is a masked reduction over
the array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.outcomes import AccessSource, IOOutcome, SegmentAccess
from repro.core.translators import Translator
from repro.disk.zones import SequentialZoneError, Zone, ZonedAddressSpace
from repro.extentmap.base import AddressMap
from repro.extentmap.extent_map import ExtentMap
from repro.extentmap.live_counts import ZoneLiveCounts
from repro.trace.record import IORequest
from repro.util.units import mib_to_sectors

#: Victim-selection policies (the ``policy=`` constructor argument).
CLEANING_POLICIES = ("greedy", "cost_benefit")

_INT64_MAX = np.iinfo(np.int64).max


@dataclass
class CleaningStats:
    """Counters specific to the cleaning machinery."""

    cleanings: int = 0
    relocated_sectors: int = 0
    cleaning_read_seeks: int = 0
    cleaning_write_seeks: int = 0
    host_written_sectors: int = 0
    zone_resets: int = 0

    @property
    def write_amplification(self) -> float:
        """(host + relocated) sectors per host sector written."""
        if self.host_written_sectors == 0:
            return 1.0
        return (
            self.host_written_sectors + self.relocated_sectors
        ) / self.host_written_sectors

    @property
    def cleaning_seeks(self) -> int:
        return self.cleaning_read_seeks + self.cleaning_write_seeks


class ZonedCleaningTranslator(Translator):
    """Log-structured translation over a finite set of SMR zones.

    Args:
        frontier_base: First log sector; also the size of the identity
            region (must exceed the workload's highest LBA).
        zone_mib: Zone size (shipped drives: 256 MiB; experiments shrink it).
        n_zones: Number of log zones; total log capacity bounds how much
            can be written between cleanings.
        reserve_zones: Cleaning starts when free zones drop to this count
            (must be >= 1 so a cleaning destination always exists).
        policy: Victim selection — ``"greedy"`` takes the closed zone
            with the least live data; ``"cost_benefit"`` maximizes the
            LFS score ``(1-u)·age/(1+u)`` (utilization ``u`` = live
            fraction, ``age`` = appends since the zone was last written),
            which prefers old, mostly-dead zones over young ones still
            being invalidated.
    """

    def __init__(
        self,
        frontier_base: int,
        zone_mib: float = 4.0,
        n_zones: int = 16,
        reserve_zones: int = 2,
        address_map: Optional[AddressMap] = None,
        policy: str = "greedy",
    ) -> None:
        super().__init__()
        if frontier_base < 0:
            raise ValueError(f"frontier_base must be >= 0, got {frontier_base}")
        if reserve_zones < 1:
            raise ValueError(f"reserve_zones must be >= 1, got {reserve_zones}")
        if n_zones <= reserve_zones:
            raise ValueError(
                f"n_zones ({n_zones}) must exceed reserve_zones ({reserve_zones})"
            )
        if policy not in CLEANING_POLICIES:
            raise ValueError(
                f"unknown cleaning policy {policy!r}; choose from "
                f"{CLEANING_POLICIES}"
            )
        zone_sectors = mib_to_sectors(zone_mib)
        self._base = frontier_base
        self._zones = ZonedAddressSpace(zone_sectors=zone_sectors, n_zones=n_zones)
        self._map = address_map if address_map is not None else ExtentMap()
        self._reserve = reserve_zones
        self._policy = policy
        self._live = ZoneLiveCounts(zone_sectors=zone_sectors, n_zones=n_zones)
        self._entries: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(n_zones)
        ]
        """Per-zone (pba, lba, length) appends in order; superseded parts
        detected lazily against the map (:meth:`_live_pieces`)."""
        self._open_order: List[int] = list(range(n_zones))  # allocation order
        self._open_idx = 0
        self._cleaning = False
        #: Monotone append sequence; per-zone last-write stamps feed the
        #: cost-benefit age term.
        self._write_seq = 0
        self._zone_write_seq = np.zeros(n_zones, dtype=np.int64)
        self.cleaning_stats = CleaningStats()

    # ------------------------------------------------------------------ #

    @property
    def description(self) -> str:
        return "LS+cleaning"

    @property
    def frontier_base(self) -> int:
        return self._base

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def zone_sectors(self) -> int:
        return self._zones.zone_sectors

    @property
    def log_capacity_sectors(self) -> int:
        return self._zones.capacity_sectors

    def free_zones(self) -> int:
        return sum(1 for z in self._zones.zones if z.is_empty)

    def live_sectors(self) -> int:
        return self._live.total()

    def address_map(self) -> AddressMap:
        return self._map

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Complete mutable state of the translator, serializable.

        Follows the :class:`~repro.core.translators.LogStructuredTranslator`
        template: the extent map exports as three parallel int64 arrays;
        zone write pointers, ledger entries, live counts, the allocation
        order and the cleaning counters are plain scalars/lists.
        """
        if not hasattr(self._map, "extent_arrays"):
            raise TypeError(
                f"state_dict needs an address map with extent_arrays, "
                f"got {type(self._map).__name__}"
            )
        map_lba, map_pba, map_length = self._map.extent_arrays()
        stats = self.cleaning_stats
        return {
            "kind": "zoned-cleaning",
            "frontier_base": self._base,
            "zone_sectors": self._zones.zone_sectors,
            "n_zones": len(self._zones.zones),
            "reserve_zones": self._reserve,
            "policy": self._policy,
            "write_pointers": [z.write_pointer for z in self._zones.zones],
            "entries": [
                [list(entry) for entry in zone_entries]
                for zone_entries in self._entries
            ],
            "live_counts": self._live.state_list(),
            "open_order": list(self._open_order),
            "open_idx": self._open_idx,
            "write_seq": self._write_seq,
            "zone_write_seq": [int(s) for s in self._zone_write_seq],
            "cleaning_stats": {
                "cleanings": stats.cleanings,
                "relocated_sectors": stats.relocated_sectors,
                "cleaning_read_seeks": stats.cleaning_read_seeks,
                "cleaning_write_seeks": stats.cleaning_write_seeks,
                "host_written_sectors": stats.host_written_sectors,
                "zone_resets": stats.zone_resets,
            },
            "head_position": self._head.position,
            "map_lba": map_lba,
            "map_pba": map_pba,
            "map_length": map_length,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this translator.

        The translator must have been built with the same layout and
        policy as the snapshotted one; a mismatch raises rather than
        corrupting the log.
        """
        if state.get("kind") != "zoned-cleaning":
            raise ValueError(
                f"not a zoned-cleaning translator state: {state.get('kind')!r}"
            )
        for name, ours in (
            ("frontier_base", self._base),
            ("zone_sectors", self._zones.zone_sectors),
            ("n_zones", len(self._zones.zones)),
            ("reserve_zones", self._reserve),
            ("policy", self._policy),
        ):
            theirs = state[name]
            if (theirs if name == "policy" else int(theirs)) != ours:
                raise ValueError(
                    f"layout mismatch restoring state: {name} is {ours!r} on "
                    f"the translator but {theirs!r} in the snapshot"
                )
        self._map = type(self._map).from_extent_arrays(
            state["map_lba"], state["map_pba"], state["map_length"]
        )
        for zone, pointer in zip(self._zones.zones, state["write_pointers"]):
            zone.write_pointer = int(pointer)
        self._entries = [
            [tuple(int(v) for v in entry) for entry in zone_entries]
            for zone_entries in state["entries"]
        ]
        self._live.load_state_list(state["live_counts"])
        self._open_order = [int(z) for z in state["open_order"]]
        self._open_idx = int(state["open_idx"])
        self._write_seq = int(state["write_seq"])
        self._zone_write_seq = np.asarray(state["zone_write_seq"], dtype=np.int64)
        snapshot = state["cleaning_stats"]
        self.cleaning_stats = CleaningStats(
            cleanings=int(snapshot["cleanings"]),
            relocated_sectors=int(snapshot["relocated_sectors"]),
            cleaning_read_seeks=int(snapshot["cleaning_read_seeks"]),
            cleaning_write_seeks=int(snapshot["cleaning_write_seeks"]),
            host_written_sectors=int(snapshot["host_written_sectors"]),
            zone_resets=int(snapshot["zone_resets"]),
        )
        head = state["head_position"]
        self._head.restore_position(None if head is None else int(head))
        self._cleaning = False

    # ------------------------------------------------------------------ #

    def submit(self, request: IORequest) -> IOOutcome:
        if request.end > self._base:
            raise ValueError(
                f"request end {request.end} crosses the identity/log boundary "
                f"{self._base}"
            )
        if request.is_write:
            return self._do_write(request)
        return self._do_read(request)

    def _do_write(self, request: IORequest) -> IOOutcome:
        self.cleaning_stats.host_written_sectors += request.length
        accesses, write_seeks = self._append(request.lba, request.length)
        return IOOutcome(
            request=request,
            accesses=tuple(accesses),
            fragments=1,
            read_seeks=0,
            write_seeks=write_seeks,
        )

    def _do_read(self, request: IORequest) -> IOOutcome:
        accesses: List[SegmentAccess] = []
        read_seeks = 0
        segments = self._map.lookup(request.lba, request.length)
        for segment in segments:
            pba = segment.lba if segment.is_hole else segment.pba
            event = self._head.access(pba, segment.length)
            if event.seek:
                read_seeks += 1
            accesses.append(
                SegmentAccess(
                    pba=pba,
                    length=segment.length,
                    source=AccessSource.DISK,
                    seek=event.seek,
                    distance=event.distance,
                    hole=segment.is_hole,
                )
            )
        return IOOutcome(
            request=request,
            accesses=tuple(accesses),
            fragments=len(segments),
            read_seeks=read_seeks,
            write_seeks=0,
        )

    # ------------------------------------------------------------------ #
    # Log append + cleaning
    # ------------------------------------------------------------------ #

    def _append(self, lba: int, length: int) -> Tuple[List[SegmentAccess], int]:
        """Append ``[lba, lba+length)`` at the frontier, cleaning if needed.

        Returns the write accesses (one per zone piece) and the seek count.
        """
        if length > self._zones.capacity_sectors // 2:
            raise ValueError(
                f"write of {length} sectors too large for the configured log"
            )
        self._ensure_room(length)
        self._invalidate(lba, length)
        accesses: List[SegmentAccess] = []
        seeks = 0
        remaining = length
        cursor_lba = lba
        while remaining:
            zone = self._current_zone()
            take = min(remaining, zone.remaining_sectors)
            pba = zone.write_pointer
            self._zones.write(pba, take)
            event = self._head.access(self._base + pba, take)
            if event.seek:
                seeks += 1
            self._map.map_range(cursor_lba, self._base + pba, take)
            self._note_append(zone.zone_id, self._base + pba, cursor_lba, take)
            accesses.append(
                SegmentAccess(
                    pba=self._base + pba,
                    length=take,
                    source=AccessSource.DISK,
                    seek=event.seek,
                    distance=event.distance,
                )
            )
            cursor_lba += take
            remaining -= take
        return accesses, seeks

    def _note_append(self, zone_id: int, pba: int, lba: int, length: int) -> None:
        """Ledger one appended piece (shared with the batch kernel)."""
        self._live.add(zone_id, length)
        self._entries[zone_id].append((pba, lba, length))
        self._zone_write_seq[zone_id] = self._write_seq
        self._write_seq += 1

    def _current_zone(self) -> Zone:
        """The zone the frontier writes into, advancing past full zones."""
        while self._open_idx < len(self._open_order):
            zone = self._zones.zones[self._open_order[self._open_idx]]
            if not zone.is_full:
                return zone
            self._open_idx += 1
        raise SequentialZoneError("log out of zones despite cleaning reserve")

    def _ensure_room(self, length: int) -> None:
        """Clean until the write fits without exhausting reserves.

        Relocation writes issued *by* cleaning bypass this check: the
        reserve zones exist precisely so a cleaning pass always has a
        destination (a victim's live data never exceeds one zone).
        """
        if self._cleaning:
            return
        while self._writable_sectors() < length or self.free_zones() < self._reserve:
            victim = self._pick_victim()
            if victim is None or (
                self._live.get(victim) >= self._zones.zone_sectors
            ):
                # Cleaning a fully-live zone frees nothing: the workload's
                # live data exceeds the log's effective capacity.
                raise SequentialZoneError(
                    "log full of live data: workload exceeds log capacity"
                )
            self._clean_zone(victim)

    def _writable_sectors(self) -> int:
        return sum(z.remaining_sectors for z in self._zones.zones)

    def _pick_victim(self) -> Optional[int]:
        """Select the victim zone under the configured policy.

        Candidates are non-empty zones other than the frontier zone; ties
        break to the lowest zone id (``argmin``/``argmax`` take the first
        extremal entry, matching a zone-id-ordered scan).
        """
        frontier_zone = None
        if self._open_idx < len(self._open_order):
            zone = self._zones.zones[self._open_order[self._open_idx]]
            if not zone.is_full:
                frontier_zone = zone.zone_id
        zones = self._zones.zones
        eligible = np.fromiter(
            (
                not z.is_empty and z.zone_id != frontier_zone
                for z in zones
            ),
            dtype=bool,
            count=len(zones),
        )
        if not eligible.any():
            return None
        counts = self._live.counts
        if self._policy == "greedy":
            keyed = np.where(eligible, counts, _INT64_MAX)
            return int(keyed.argmin())
        utilization = counts / float(self._zones.zone_sectors)
        age = (self._write_seq - self._zone_write_seq).astype(np.float64)
        score = (1.0 - utilization) * age / (1.0 + utilization)
        score[~eligible] = -np.inf
        return int(score.argmax())

    def _clean_zone(self, zone_id: int) -> None:
        """Relocate the victim's live extents to the frontier, then reset it.

        Copy-before-reset, as a real drive must: the reserve zones
        guarantee the relocation has a destination.
        """
        live = self._live_pieces(zone_id)
        self._cleaning = True
        try:
            for pba, lba, length in live:
                read_evt = self._head.access(pba, length)
                if read_evt.seek:
                    self.cleaning_stats.cleaning_read_seeks += 1
                seeks = self._relocate(pba, lba, length)
                self.cleaning_stats.cleaning_write_seeks += seeks
                self.cleaning_stats.relocated_sectors += length
        finally:
            self._cleaning = False
        self._zones.reset(zone_id)
        self._entries[zone_id] = []
        self._live.reset(zone_id)
        self.cleaning_stats.zone_resets += 1
        self.cleaning_stats.cleanings += 1
        # Allocation order: the cleaned zone becomes writable again after
        # every currently queued zone.
        self._open_order.append(zone_id)

    def _relocate(self, piece_pba: int, lba: int, length: int) -> int:
        """Append one live piece at the frontier; returns the write-seek count.

        :meth:`_append` minus two lookups it can prove redundant for a live
        piece: ``_ensure_room`` is a no-op mid-cleaning (the reserve zones
        are the destination), and ``_invalidate`` would look ``[lba,
        lba+length)`` up in the map only to find the single segment
        :meth:`_live_pieces` already identified — mapped contiguously at
        exactly ``[piece_pba, piece_pba+length)`` — so the decrement is
        issued directly.
        """
        self._live.decrement_range(piece_pba - self._base, length)
        seeks = 0
        remaining = length
        cursor_lba = lba
        while remaining:
            zone = self._current_zone()
            take = min(remaining, zone.remaining_sectors)
            pba = zone.write_pointer
            self._zones.write(pba, take)
            event = self._head.access(self._base + pba, take)
            if event.seek:
                seeks += 1
            self._map.map_range(cursor_lba, self._base + pba, take)
            self._note_append(zone.zone_id, self._base + pba, cursor_lba, take)
            cursor_lba += take
            remaining -= take
        return seeks

    def _live_pieces(self, zone_id: int) -> List[Tuple[int, int, int]]:
        """(pba, lba, length) pieces of the zone still referenced by the map.

        On the array tier the whole ledger resolves in one
        ``lookup_pieces_batch`` call; the scalar path below is the
        executable specification (and the only path for plain
        :class:`~repro.extentmap.extent_map.ExtentMap`).  Both emit pieces
        in ledger order, then LBA order within an entry.
        """
        entries = self._entries[zone_id]
        if not entries:
            return []
        batch_lookup = getattr(self._map, "lookup_pieces_batch", None)
        if batch_lookup is not None:
            n = len(entries)
            e_pba = np.fromiter((e[0] for e in entries), dtype=np.int64, count=n)
            e_lba = np.fromiter((e[1] for e in entries), dtype=np.int64, count=n)
            e_len = np.fromiter((e[2] for e in entries), dtype=np.int64, count=n)
            piece_pba, piece_len, hole, offsets = batch_lookup(e_lba, e_len)
            query = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(offsets)
            )
            # Pieces tile each query contiguously from its start LBA.
            cum = np.zeros(len(piece_len), dtype=np.int64)
            np.cumsum(piece_len[:-1], out=cum[1:])
            piece_lba = e_lba[query] + (cum - cum[offsets[:-1]][query])
            keep = ~hole & (piece_pba == e_pba[query] + (piece_lba - e_lba[query]))
            return list(
                zip(
                    piece_pba[keep].tolist(),
                    piece_lba[keep].tolist(),
                    piece_len[keep].tolist(),
                )
            )
        pieces: List[Tuple[int, int, int]] = []
        for pba, lba, length in entries:
            for segment in self._map.lookup(lba, length):
                if segment.is_hole:
                    continue
                offset = segment.lba - lba
                if segment.pba == pba + offset:
                    pieces.append((segment.pba, segment.lba, segment.length))
        return pieces

    def _invalidate(self, lba: int, length: int) -> None:
        """Decrement live counts for data about to be overwritten.

        A mapped segment may span a zone boundary (the extent map merges
        pieces that are contiguous in both LBA and PBA, and consecutive
        zones are PBA-contiguous), so the decrement is split per zone
        (:meth:`ZoneLiveCounts.decrement_range`).
        """
        for segment in self._map.lookup(lba, length):
            if segment.is_hole or segment.pba < self._base:
                continue
            self._live.decrement_range(segment.pba - self._base, segment.length)
