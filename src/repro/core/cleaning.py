"""Finite-disk log-structured translation with zone cleaning.

The paper's evaluation uses an infinite disk ("for archival workloads
cleaning may never be needed", §II) — but a deployable SMR translation
layer eventually fills its zones and must garbage-collect.  This module
provides that substrate: a log-structured translator whose log lives in
SMR zones (:class:`~repro.disk.zones.ZonedAddressSpace`), with greedy
(least-valid-first) zone cleaning, so write amplification and seek
amplification can be studied *jointly* — the trade-off Fig. 11 and the
media-cache baseline only bracket from either side.

Layout: logical space ``[0, frontier_base)`` doubles as the identity
region for pre-trace data (as in the infinite model); the log occupies
``n_zones`` sequential zones starting at ``frontier_base``.  Cleaning
starts when free zones fall to ``reserve_zones`` and relocates the
victim's live data to the current frontier (paying the same seeks any
other I/O pays), then resets the victim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.outcomes import AccessSource, IOOutcome, SegmentAccess
from repro.core.translators import Translator
from repro.disk.zones import SequentialZoneError, Zone, ZonedAddressSpace
from repro.extentmap.base import AddressMap
from repro.extentmap.extent_map import ExtentMap
from repro.trace.record import IORequest
from repro.util.units import mib_to_sectors


@dataclass
class CleaningStats:
    """Counters specific to the cleaning machinery."""

    cleanings: int = 0
    relocated_sectors: int = 0
    cleaning_read_seeks: int = 0
    cleaning_write_seeks: int = 0
    host_written_sectors: int = 0
    zone_resets: int = 0

    @property
    def write_amplification(self) -> float:
        """(host + relocated) sectors per host sector written."""
        if self.host_written_sectors == 0:
            return 1.0
        return (
            self.host_written_sectors + self.relocated_sectors
        ) / self.host_written_sectors

    @property
    def cleaning_seeks(self) -> int:
        return self.cleaning_read_seeks + self.cleaning_write_seeks


@dataclass
class _ZoneLedger:
    """Per-zone bookkeeping: what was appended, and how much is live."""

    live_sectors: int = 0
    entries: List[Tuple[int, int, int]] = field(default_factory=list)
    """(pba, lba, length) in append order; superseded parts detected lazily."""


class ZonedCleaningTranslator(Translator):
    """Log-structured translation over a finite set of SMR zones.

    Args:
        frontier_base: First log sector; also the size of the identity
            region (must exceed the workload's highest LBA).
        zone_mib: Zone size (shipped drives: 256 MiB; experiments shrink it).
        n_zones: Number of log zones; total log capacity bounds how much
            can be written between cleanings.
        reserve_zones: Cleaning starts when free zones drop to this count
            (must be >= 1 so a cleaning destination always exists).
    """

    def __init__(
        self,
        frontier_base: int,
        zone_mib: float = 4.0,
        n_zones: int = 16,
        reserve_zones: int = 2,
        address_map: Optional[AddressMap] = None,
    ) -> None:
        super().__init__()
        if frontier_base < 0:
            raise ValueError(f"frontier_base must be >= 0, got {frontier_base}")
        if reserve_zones < 1:
            raise ValueError(f"reserve_zones must be >= 1, got {reserve_zones}")
        if n_zones <= reserve_zones:
            raise ValueError(
                f"n_zones ({n_zones}) must exceed reserve_zones ({reserve_zones})"
            )
        zone_sectors = mib_to_sectors(zone_mib)
        self._base = frontier_base
        self._zones = ZonedAddressSpace(zone_sectors=zone_sectors, n_zones=n_zones)
        self._map = address_map if address_map is not None else ExtentMap()
        self._reserve = reserve_zones
        self._ledgers: Dict[int, _ZoneLedger] = {
            z.zone_id: _ZoneLedger() for z in self._zones.zones
        }
        self._open_order: List[int] = list(range(n_zones))  # allocation order
        self._open_idx = 0
        self._cleaning = False
        self.cleaning_stats = CleaningStats()

    # ------------------------------------------------------------------ #

    @property
    def description(self) -> str:
        return "LS+cleaning"

    @property
    def zone_sectors(self) -> int:
        return self._zones.zone_sectors

    @property
    def log_capacity_sectors(self) -> int:
        return self._zones.capacity_sectors

    def free_zones(self) -> int:
        return sum(1 for z in self._zones.zones if z.is_empty)

    def live_sectors(self) -> int:
        return sum(ledger.live_sectors for ledger in self._ledgers.values())

    def address_map(self) -> AddressMap:
        return self._map

    # ------------------------------------------------------------------ #

    def submit(self, request: IORequest) -> IOOutcome:
        if request.end > self._base:
            raise ValueError(
                f"request end {request.end} crosses the identity/log boundary "
                f"{self._base}"
            )
        if request.is_write:
            return self._do_write(request)
        return self._do_read(request)

    def _do_write(self, request: IORequest) -> IOOutcome:
        self.cleaning_stats.host_written_sectors += request.length
        accesses, write_seeks = self._append(request.lba, request.length)
        return IOOutcome(
            request=request,
            accesses=tuple(accesses),
            fragments=1,
            read_seeks=0,
            write_seeks=write_seeks,
        )

    def _do_read(self, request: IORequest) -> IOOutcome:
        accesses: List[SegmentAccess] = []
        read_seeks = 0
        segments = self._map.lookup(request.lba, request.length)
        for segment in segments:
            pba = segment.lba if segment.is_hole else segment.pba
            event = self._head.access(pba, segment.length)
            if event.seek:
                read_seeks += 1
            accesses.append(
                SegmentAccess(
                    pba=pba,
                    length=segment.length,
                    source=AccessSource.DISK,
                    seek=event.seek,
                    distance=event.distance,
                    hole=segment.is_hole,
                )
            )
        return IOOutcome(
            request=request,
            accesses=tuple(accesses),
            fragments=len(segments),
            read_seeks=read_seeks,
            write_seeks=0,
        )

    # ------------------------------------------------------------------ #
    # Log append + cleaning
    # ------------------------------------------------------------------ #

    def _append(self, lba: int, length: int) -> Tuple[List[SegmentAccess], int]:
        """Append ``[lba, lba+length)`` at the frontier, cleaning if needed.

        Returns the write accesses (one per zone piece) and the seek count.
        """
        if length > self._zones.capacity_sectors // 2:
            raise ValueError(
                f"write of {length} sectors too large for the configured log"
            )
        self._ensure_room(length)
        self._invalidate(lba, length)
        accesses: List[SegmentAccess] = []
        seeks = 0
        remaining = length
        cursor_lba = lba
        while remaining:
            zone = self._current_zone()
            take = min(remaining, zone.remaining_sectors)
            pba = zone.write_pointer
            self._zones.write(pba, take)
            event = self._head.access(self._base + pba, take)
            if event.seek:
                seeks += 1
            self._map.map_range(cursor_lba, self._base + pba, take)
            ledger = self._ledgers[zone.zone_id]
            ledger.live_sectors += take
            ledger.entries.append((self._base + pba, cursor_lba, take))
            accesses.append(
                SegmentAccess(
                    pba=self._base + pba,
                    length=take,
                    source=AccessSource.DISK,
                    seek=event.seek,
                    distance=event.distance,
                )
            )
            cursor_lba += take
            remaining -= take
        return accesses, seeks

    def _current_zone(self) -> Zone:
        """The zone the frontier writes into, advancing past full zones."""
        while self._open_idx < len(self._open_order):
            zone = self._zones.zones[self._open_order[self._open_idx]]
            if not zone.is_full:
                return zone
            self._open_idx += 1
        raise SequentialZoneError("log out of zones despite cleaning reserve")

    def _ensure_room(self, length: int) -> None:
        """Clean greedily until the write fits without exhausting reserves.

        Relocation writes issued *by* cleaning bypass this check: the
        reserve zones exist precisely so a cleaning pass always has a
        destination (a victim's live data never exceeds one zone).
        """
        if self._cleaning:
            return
        while self._writable_sectors() < length or self.free_zones() < self._reserve:
            victim = self._pick_victim()
            if victim is None or (
                self._ledgers[victim].live_sectors >= self._zones.zone_sectors
            ):
                # Cleaning a fully-live zone frees nothing: the workload's
                # live data exceeds the log's effective capacity.
                raise SequentialZoneError(
                    "log full of live data: workload exceeds log capacity"
                )
            self._clean_zone(victim)

    def _writable_sectors(self) -> int:
        return sum(z.remaining_sectors for z in self._zones.zones)

    def _pick_victim(self) -> Optional[int]:
        """Greedy policy: the closed, non-empty zone with least live data."""
        frontier_zone = None
        if self._open_idx < len(self._open_order):
            zone = self._zones.zones[self._open_order[self._open_idx]]
            if not zone.is_full:
                frontier_zone = zone.zone_id
        candidates = [
            z.zone_id
            for z in self._zones.zones
            if not z.is_empty and z.zone_id != frontier_zone
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda zid: self._ledgers[zid].live_sectors)

    def _clean_zone(self, zone_id: int) -> None:
        """Relocate the victim's live extents to the frontier, then reset it.

        Copy-before-reset, as a real drive must: the reserve zones
        guarantee the relocation has a destination.
        """
        live = self._live_pieces(zone_id)
        self._cleaning = True
        try:
            for pba, lba, length in live:
                read_evt = self._head.access(pba, length)
                if read_evt.seek:
                    self.cleaning_stats.cleaning_read_seeks += 1
                _, seeks = self._append(lba, length)
                self.cleaning_stats.cleaning_write_seeks += seeks
                self.cleaning_stats.relocated_sectors += length
        finally:
            self._cleaning = False
        self._zones.reset(zone_id)
        self._ledgers[zone_id] = _ZoneLedger()
        self.cleaning_stats.zone_resets += 1
        self.cleaning_stats.cleanings += 1
        # Allocation order: the cleaned zone becomes writable again after
        # every currently queued zone.
        self._open_order.append(zone_id)

    def _live_pieces(self, zone_id: int) -> List[Tuple[int, int, int]]:
        """(pba, lba, length) pieces of the zone still referenced by the map."""
        pieces: List[Tuple[int, int, int]] = []
        for pba, lba, length in self._ledgers[zone_id].entries:
            for segment in self._map.lookup(lba, length):
                if segment.is_hole:
                    continue
                offset = segment.lba - lba
                if segment.pba == pba + offset:
                    pieces.append((segment.pba, segment.lba, segment.length))
        return pieces

    def _invalidate(self, lba: int, length: int) -> None:
        """Decrement live counts for data about to be overwritten.

        A mapped segment may span a zone boundary (the extent map merges
        pieces that are contiguous in both LBA and PBA, and consecutive
        zones are PBA-contiguous), so the decrement is split per zone.
        """
        for segment in self._map.lookup(lba, length):
            if segment.is_hole or segment.pba < self._base:
                continue
            pba = segment.pba - self._base
            remaining = segment.length
            while remaining:
                zone = self._zones.zone_for(pba)
                take = min(remaining, zone.end - pba)
                ledger = self._ledgers[zone.zone_id]
                ledger.live_sectors = max(0, ledger.live_sectors - take)
                pba += take
                remaining -= take
