"""Technique bundles and translator factories.

The evaluation compares four configurations per workload (Fig. 11): plain
LS, LS + opportunistic defrag, LS + look-ahead-behind prefetch, and LS +
selective caching.  :class:`TechniqueConfig` names one such bundle;
:func:`build_translator` constructs a fresh translator for a trace; and
:data:`PAPER_CONFIGS` is the Fig. 11 line-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.defrag import DefragConfig, OpportunisticDefrag
from repro.core.multifrontier import MultiFrontierTranslator, RecencyClassifier
from repro.core.prefetch import LookAheadBehindPrefetcher, PrefetchConfig
from repro.core.selective_cache import SelectiveCacheConfig, SelectiveFragmentCache
from repro.core.translators import InPlaceTranslator, LogStructuredTranslator, Translator
from repro.trace.trace import Trace
from repro.util.units import mib_to_sectors


@dataclass(frozen=True)
class MultiFrontierConfig:
    """Hot/cold-separated (WOLF-style) log placement settings.

    Attaching this to a :class:`TechniqueConfig` swaps the single-frontier
    :class:`LogStructuredTranslator` for a
    :class:`~repro.core.multifrontier.MultiFrontierTranslator`: writes are
    classified by recency and each class appends at its own frontier.

    Attributes:
        frontiers: Number of write frontiers (2 = the stock cold/hot
            split; higher counts are the seam for K BIT-classified
            frontiers, see ROADMAP item 2).
        region_mib: Size of *each* frontier's log region, in MiB.
        window: Recency window of the classifier, in distinct 4 KiB
            blocks (:class:`~repro.core.multifrontier.RecencyClassifier`).
        block_sectors: Classification granularity in sectors.
    """

    frontiers: int = 2
    region_mib: float = 2048.0
    window: int = 4096
    block_sectors: int = 8

    def __post_init__(self) -> None:
        if self.frontiers < 2:
            raise ValueError(f"frontiers must be >= 2, got {self.frontiers}")
        if self.region_mib <= 0:
            raise ValueError(f"region_mib must be > 0, got {self.region_mib}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.block_sectors < 1:
            raise ValueError(
                f"block_sectors must be >= 1, got {self.block_sectors}"
            )


@dataclass(frozen=True)
class TechniqueConfig:
    """One translator configuration for the evaluation matrix.

    Attributes:
        name: Report label (``"NoLS"``, ``"LS"``, ``"LS+defrag"`` …).
        log_structured: False for the in-place baseline.
        defrag: Opportunistic-defrag settings, or None to disable.
        prefetch: Look-ahead-behind settings, or None to disable.
        cache: Selective-cache settings, or None to disable.
        multi_frontier: Hot/cold frontier separation settings, or None
            for the single-frontier log.  Mutually exclusive with the
            three seek-reduction techniques (the multi-frontier
            translator has no technique hooks).
        fast: Prefer the vectorized batch kernel
            (:mod:`repro.core.batch`) when replaying this configuration
            through :func:`repro.experiments.common.replay_with`.  The
            kernel is exact (differential-suite pinned), so results are
            unchanged; replays needing recorders fall back to the
            reference simulator — visibly, via the fallback counters in
            :mod:`repro.experiments.common`.
    """

    name: str
    log_structured: bool = True
    defrag: Optional[DefragConfig] = None
    prefetch: Optional[PrefetchConfig] = None
    cache: Optional[SelectiveCacheConfig] = None
    multi_frontier: Optional[MultiFrontierConfig] = None
    fast: bool = False


NOLS = TechniqueConfig(name="NoLS", log_structured=False)
LS = TechniqueConfig(name="LS")
LS_DEFRAG = TechniqueConfig(name="LS+defrag", defrag=DefragConfig())
LS_PREFETCH = TechniqueConfig(name="LS+prefetch", prefetch=PrefetchConfig())
LS_CACHE = TechniqueConfig(name="LS+cache", cache=SelectiveCacheConfig(capacity_mib=64.0))

PAPER_CONFIGS: Tuple[TechniqueConfig, ...] = (LS, LS_DEFRAG, LS_PREFETCH, LS_CACHE)
"""The four bars of Fig. 11, in the paper's left-to-right order."""

LS_ALL = TechniqueConfig(
    name="LS+all",
    defrag=DefragConfig(min_fragments=4, min_accesses=2),
    prefetch=PrefetchConfig(),
    cache=SelectiveCacheConfig(),
)
"""All three techniques composed (defrag throttled per the §IV-A knobs so
its rewrites don't churn data the cache already holds — see the
``ablation_combined`` exhibit)."""

ALL_CONFIGS: Tuple[TechniqueConfig, ...] = (NOLS,) + PAPER_CONFIGS + (LS_ALL,)


def build_translator(
    trace: Trace,
    config: TechniqueConfig,
    address_map_tier: Optional[str] = None,
) -> Translator:
    """Construct a fresh translator for replaying ``trace`` under ``config``.

    The log frontier is placed at the trace's ``max_end`` so pre-trace data
    resolves at PBA = LBA (§III).
    """
    return build_translator_for_base(trace.max_end, config, address_map_tier)


def build_translator_for_base(
    frontier_base: int,
    config: TechniqueConfig,
    address_map_tier: Optional[str] = None,
) -> Translator:
    """Construct a fresh translator with an explicit log frontier base.

    The streaming service (:mod:`repro.service`) uses this: a live session
    has no whole trace to take ``max_end`` from, so the tenant declares the
    LBA capacity its ops will stay under and the log starts there.  For the
    in-place baseline the base is irrelevant and ignored.

    ``address_map_tier`` picks the extent-map implementation backing a
    log-structured translator (see :mod:`repro.extentmap.tiers`): ``None``
    resolves to the pure-Python reference tier unless the
    ``REPRO_EXTENT_MAP`` environment variable forces one; the batch
    kernels pass the ``"array"`` tier explicitly.  Every tier is exact,
    so the choice never changes results.
    """
    if not config.log_structured:
        return InPlaceTranslator()
    from repro.extentmap.tiers import make_address_map

    if config.multi_frontier is not None:
        if config.defrag or config.prefetch or config.cache:
            raise ValueError(
                f"config {config.name!r}: multi_frontier cannot be combined "
                "with defrag/prefetch/cache (the multi-frontier translator "
                "has no technique hooks)"
            )
        mf = config.multi_frontier
        return MultiFrontierTranslator(
            frontier_base=frontier_base,
            region_sectors=mib_to_sectors(mf.region_mib),
            classifier=RecencyClassifier(
                window=mf.window, block_sectors=mf.block_sectors
            ),
            address_map=make_address_map(address_map_tier),
            n_frontiers=mf.frontiers,
        )
    return LogStructuredTranslator(
        frontier_base=frontier_base,
        address_map=make_address_map(address_map_tier),
        defrag=OpportunisticDefrag(config.defrag) if config.defrag else None,
        prefetcher=LookAheadBehindPrefetcher(config.prefetch) if config.prefetch else None,
        cache=SelectiveFragmentCache(config.cache) if config.cache else None,
    )


def config_to_dict(config: TechniqueConfig) -> dict:
    """JSON-serializable encoding of a :class:`TechniqueConfig`.

    Round-trips exactly through :func:`config_from_dict`; used by the
    service wire protocol and checkpoint headers.
    """
    from dataclasses import asdict

    return {
        "name": config.name,
        "log_structured": config.log_structured,
        "defrag": asdict(config.defrag) if config.defrag else None,
        "prefetch": asdict(config.prefetch) if config.prefetch else None,
        "cache": asdict(config.cache) if config.cache else None,
        "multi_frontier": (
            asdict(config.multi_frontier) if config.multi_frontier else None
        ),
        "fast": config.fast,
    }


def config_from_dict(data: dict) -> TechniqueConfig:
    """Inverse of :func:`config_to_dict`."""
    return TechniqueConfig(
        name=data["name"],
        log_structured=bool(data.get("log_structured", True)),
        defrag=DefragConfig(**data["defrag"]) if data.get("defrag") else None,
        prefetch=PrefetchConfig(**data["prefetch"]) if data.get("prefetch") else None,
        cache=SelectiveCacheConfig(**data["cache"]) if data.get("cache") else None,
        multi_frontier=(
            MultiFrontierConfig(**data["multi_frontier"])
            if data.get("multi_frontier")
            else None
        ),
        fast=bool(data.get("fast", False)),
    )
