"""The paper's primary contribution: log-structured translation with
seek accounting and three seek-reduction techniques.

Typical use::

    from repro.core import build_translator, replay, seek_amplification, NOLS, LS_CACHE

    baseline = replay(trace, build_translator(trace, NOLS))
    cached = replay(trace, build_translator(trace, LS_CACHE))
    saf = seek_amplification(cached.stats, baseline.stats)
"""

from repro.core.outcomes import AccessSource, IOOutcome, SegmentAccess, SimStats
from repro.core.translators import (
    Translator,
    InPlaceTranslator,
    LogStructuredTranslator,
)
from repro.core.defrag import DefragConfig, OpportunisticDefrag
from repro.core.prefetch import LookAheadBehindPrefetcher, PrefetchConfig
from repro.core.selective_cache import SelectiveCacheConfig, SelectiveFragmentCache
from repro.core.errors import (
    RetriesExhaustedError,
    SimulationError,
    TransientIOError,
)
from repro.core.simulator import RetryPolicy, RunResult, Simulator, replay
from repro.core.batch import (
    BatchRunResult,
    BatchSupport,
    BatchUnsupportedError,
    batch_replay,
    batch_replay_translator,
    batch_support,
    supports_batch,
)
from repro.core.stream import (
    FragmentStream,
    StreamRunResult,
    StreamUnsupportedError,
    cache_hit_thresholds,
    record_fragment_stream,
    stream_cache_sweep,
    stream_fragment_stats,
    stream_replay,
    stream_windowed_long_seeks,
    supports_cache_sweep,
    supports_stream,
)
from repro.core.stream_store import StreamStore, stream_key
from repro.core.recorders import (
    Recorder,
    SeekRecord,
    SeekLogRecorder,
    OutcomeLogRecorder,
    FragmentationRecorder,
)
from repro.core.metrics import SeekAmplification, seek_amplification, time_amplification
from repro.core.cleaning import (
    CLEANING_POLICIES,
    CleaningStats,
    ZonedCleaningTranslator,
)
from repro.core.multifrontier import MultiFrontierTranslator, RecencyClassifier
from repro.core.config import (
    MultiFrontierConfig,
    TechniqueConfig,
    build_translator,
    NOLS,
    LS,
    LS_DEFRAG,
    LS_PREFETCH,
    LS_CACHE,
    LS_ALL,
    PAPER_CONFIGS,
    ALL_CONFIGS,
)

__all__ = [
    "AccessSource",
    "IOOutcome",
    "SegmentAccess",
    "SimStats",
    "Translator",
    "InPlaceTranslator",
    "LogStructuredTranslator",
    "DefragConfig",
    "OpportunisticDefrag",
    "LookAheadBehindPrefetcher",
    "PrefetchConfig",
    "SelectiveCacheConfig",
    "SelectiveFragmentCache",
    "RunResult",
    "RetryPolicy",
    "Simulator",
    "replay",
    "BatchRunResult",
    "BatchSupport",
    "BatchUnsupportedError",
    "batch_replay",
    "batch_replay_translator",
    "batch_support",
    "supports_batch",
    "FragmentStream",
    "StreamRunResult",
    "StreamUnsupportedError",
    "cache_hit_thresholds",
    "record_fragment_stream",
    "stream_cache_sweep",
    "stream_fragment_stats",
    "stream_replay",
    "stream_windowed_long_seeks",
    "supports_cache_sweep",
    "supports_stream",
    "StreamStore",
    "stream_key",
    "SimulationError",
    "TransientIOError",
    "RetriesExhaustedError",
    "Recorder",
    "SeekRecord",
    "SeekLogRecorder",
    "OutcomeLogRecorder",
    "FragmentationRecorder",
    "SeekAmplification",
    "seek_amplification",
    "time_amplification",
    "CLEANING_POLICIES",
    "CleaningStats",
    "ZonedCleaningTranslator",
    "MultiFrontierTranslator",
    "RecencyClassifier",
    "MultiFrontierConfig",
    "TechniqueConfig",
    "build_translator",
    "NOLS",
    "LS",
    "LS_DEFRAG",
    "LS_PREFETCH",
    "LS_CACHE",
    "LS_ALL",
    "PAPER_CONFIGS",
    "ALL_CONFIGS",
]
