"""Simulation-layer exceptions.

These live in :mod:`repro.core` (not :mod:`repro.faults`) so the simulator
can handle them without depending on the fault-injection subsystem: any
translator — a fault wrapper, or a future real-device backend — may raise
:class:`TransientIOError` to signal a retryable failure.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised while serving simulated I/O."""


class TransientIOError(SimulationError):
    """A retryable device error (e.g. an unrecovered-read retried in place).

    The simulator's service path catches this and retries the request under
    its :class:`~repro.core.simulator.RetryPolicy`.  Translators must raise
    it *before* mutating any state (head position, address map) so a retry
    replays the request cleanly.
    """

    def __init__(self, message: str = "transient I/O error", attempt: int = 0) -> None:
        super().__init__(message)
        self.attempt = attempt


class RetriesExhaustedError(SimulationError):
    """A request kept failing past the retry policy's attempt budget."""

    def __init__(self, op_index: int, attempts: int, last: TransientIOError) -> None:
        super().__init__(
            f"op {op_index} failed after {attempts} attempts: {last}"
        )
        self.op_index = op_index
        self.attempts = attempts
        self.last = last
