"""Opportunistic defragmentation (paper §IV-A, Algorithm 1).

When a read is fragmented, the translation layer has already paid the seeks
to assemble the data in order — writing it back contiguously at the log
head costs only one extra seek (to the write frontier) plus transfer, and
makes future reads of the same range seek-free.

The paper notes the technique "does not come for free" and proposes two
throttles, both implemented here:

* ``min_fragments`` (the paper's *N*): only defragment ranges split into at
  least N physical pieces.
* ``min_accesses`` (the paper's *k*): wait until a fragmented range has
  been read k times before rewriting it.

With the defaults (N=2, k=1) the policy is Algorithm 1 verbatim: every
fragmented read triggers a rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class DefragConfig:
    """Tuning knobs for opportunistic defragmentation.

    Attributes:
        min_fragments: Rewrite only ranges resolved into at least this many
            physical pieces (paper's N; >= 2 since 1 piece is unfragmented).
        min_accesses: Rewrite only after this many fragmented reads of the
            same range (paper's k; >= 1).
    """

    min_fragments: int = 2
    min_accesses: int = 1

    def __post_init__(self) -> None:
        if self.min_fragments < 2:
            raise ValueError(f"min_fragments must be >= 2, got {self.min_fragments}")
        if self.min_accesses < 1:
            raise ValueError(f"min_accesses must be >= 1, got {self.min_accesses}")


class OpportunisticDefrag:
    """Decision state for Algorithm 1 with the §IV-A throttles.

    The translator calls :meth:`should_defragment` after serving each
    fragmented read; a True return obliges the caller to rewrite the range
    at the log head and then call :meth:`note_defragmented`.
    """

    def __init__(self, config: Optional[DefragConfig] = None) -> None:
        # A `config=DefragConfig()` default would be evaluated once at def
        # time and shared by every instance; build one per instance.
        config = DefragConfig() if config is None else config
        self._config = config
        self._access_counts: Dict[Tuple[int, int], int] = {}

    @property
    def config(self) -> DefragConfig:
        return self._config

    @property
    def tracked_ranges(self) -> int:
        """Number of fragmented ranges currently being access-counted."""
        return len(self._access_counts)

    def should_defragment(self, lba: int, length: int, fragments: int) -> bool:
        """Decide whether the just-served fragmented read warrants a rewrite.

        Args:
            lba, length: The logical range that was read.
            fragments: Its dynamic fragmentation (physical piece count).
        """
        if fragments < self._config.min_fragments:
            return False
        if self._config.min_accesses == 1:
            return True
        key = (lba, length)
        count = self._access_counts.get(key, 0) + 1
        if count >= self._config.min_accesses:
            # The rewrite is about to happen; drop the counter so a future
            # re-fragmentation of the range starts counting afresh.
            self._access_counts.pop(key, None)
            return True
        self._access_counts[key] = count
        return False

    def note_defragmented(self, lba: int, length: int) -> None:
        """Forget access history for a range that was just rewritten."""
        self._access_counts.pop((lba, length), None)

    def state_dict(self) -> dict:
        """JSON-serializable mutable state (checkpoint snapshot).

        Configuration is *not* included — restore builds a policy from the
        same :class:`DefragConfig` and loads this state into it.
        """
        return {
            "access_counts": [
                [lba, length, count]
                for (lba, length), count in self._access_counts.items()
            ]
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (replaces current state)."""
        self._access_counts = {
            (int(lba), int(length)): int(count)
            for lba, length, count in state["access_counts"]
        }
