"""Persistent store for recorded fragment streams and NoLS baselines.

Recording a workload's plain-LS fragment stream
(:func:`repro.core.stream.record_fragment_stream`) is the dominant one-off
cost of the Layer-3 shared-replay path — a full stateful extent-map replay
per workload.  Before this store, every worker process of a parallel run
re-paid it (the :class:`~repro.experiments.sweep.SweepEngine` LRU is
per-process).  This module persists each recording once per machine:
whichever worker records a stream first publishes it; everyone else
memory-maps the published arrays zero-copy, sharing the OS page cache
exactly like the schema-2 :class:`~repro.trace.store.TraceStore`.

Store layout::

    <root>/<stream-key>/            (one directory per recorded stream)
        header.json                 (schema, trace key, scalar counters)
        pba.npy  length.npy  kind.npy  op_index.npy
        group_start.npy  group_size.npy
    <root>/<stream-key>.nols.json   (NoLS baseline SimStats, atomic JSON)

The key is the SHA-256 of the canonical JSON of ``{"kind":
"fragment-stream", "schema": STREAM_SCHEMA, "trace":
trace.content_key()}`` — :meth:`~repro.trace.trace.Trace.content_key`
hashes the replay-relevant trace content (name + ``(is_read, lba,
length)`` columns), so logically identical traces from different load
paths (fresh synthesis, compiled-store mmap, re-parse) land on one entry,
and any change to the trace, the stream schema, or the recorded format
lands on a different key.  Entries are committed with the
:mod:`repro.util.npystore` discipline (page-aligned ``.npy`` files, temp
directory + fsync + atomic rename); corrupt/torn/foreign-schema entries
count as misses and are removed so the next store heals them.

Streams rehydrated from the store carry ``layout=None`` — only the
differential tests inspect the recording translator, and persisting an
extent map would defeat the zero-copy load.  Everything observable by
:func:`~repro.core.stream.stream_replay` /
:func:`~repro.core.stream.stream_cache_sweep` and the derived analyses
round-trips exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.outcomes import SimStats
from repro.core.stream import FragmentStream
from repro.trace.trace import Trace
from repro.util.io import atomic_write_json
from repro.util.npystore import commit_entry_dir, load_mmap_npy, remove_entry

STREAM_SCHEMA = 1

#: Default store location (overridable per instance and via the runner's
#: ``--stream-store`` flag).
DEFAULT_STREAM_STORE_DIR = Path(".repro-stream-store")

_ARRAY_KEYS = ("pba", "length", "kind", "op_index", "group_start", "group_size")
_SCALAR_KEYS = (
    "trace_name",
    "frontier_base",
    "frontier",
    "reads",
    "writes",
    "sectors_read",
    "sectors_written",
    "read_fragments",
    "fragmented_reads",
)


def stream_key(trace: Trace) -> str:
    """The store key for ``trace``'s recorded stream (SHA-256 hex)."""
    canonical = json.dumps(
        {
            "kind": "fragment-stream",
            "schema": STREAM_SCHEMA,
            "trace": trace.content_key(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class StreamStore:
    """A directory of recorded fragment streams + NoLS baseline summaries.

    Thread/process-safe under the same discipline as
    :class:`~repro.trace.store.TraceStore`: concurrent writers of one
    entry are benign (first atomic rename wins, entries are identical by
    construction), and readers heal torn entries by deleting them.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_STREAM_STORE_DIR) -> None:
        self.root = Path(root)
        #: Lifetime stream-load outcomes (a corrupt entry counts as a miss).
        self.hits = 0
        self.misses = 0
        #: Lifetime NoLS-baseline-load outcomes.
        self.baseline_hits = 0
        self.baseline_misses = 0

    # ----------------------------------------------------------------- #
    # Recorded fragment streams
    # ----------------------------------------------------------------- #

    def path_for(self, trace: Trace) -> Path:
        return self.root / stream_key(trace)

    def load_stream(self, trace: Trace) -> Optional[FragmentStream]:
        """The recorded plain-LS stream for ``trace``, or None on a miss.

        A hit memory-maps all six arrays read-only (zero-copy, shared
        page cache across processes).  Corrupt, torn, or foreign-schema
        entries count as misses and are removed so a re-store heals them.
        """
        path = self.path_for(trace)
        try:
            with open(path / "header.json") as handle:
                header = json.load(handle)
            if (
                header.get("schema") != STREAM_SCHEMA
                or header.get("trace") != trace.content_key()
            ):
                raise ValueError("stream entry header mismatch")
            arrays = {}
            for key in _ARRAY_KEYS:
                array = load_mmap_npy(path / f"{key}.npy")
                array.setflags(write=False)
                arrays[key] = array
            if (
                len(arrays["pba"]) != len(arrays["length"])
                or len(arrays["pba"]) != len(arrays["kind"])
                or len(arrays["pba"]) != len(arrays["op_index"])
                or len(arrays["group_start"]) != len(arrays["group_size"])
                or len(arrays["pba"]) != header.get("accesses")
                or len(arrays["group_start"]) != header.get("fragmented_reads")
            ):
                raise ValueError("stream entry array length mismatch")
            scalars = {key: header[key] for key in _SCALAR_KEYS}
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            remove_entry(path)
            self.misses += 1
            return None
        self.hits += 1
        return FragmentStream(layout=None, **scalars, **arrays)

    def store_stream(self, trace: Trace, stream: FragmentStream) -> Path:
        """Publish ``stream`` (recorded from ``trace``) atomically.

        If a concurrent process published the same key first, its entry
        stands (streams are pure functions of the trace, so the contents
        are identical); the lost race is counted as a hit.
        """
        header = {
            "schema": STREAM_SCHEMA,
            "trace": trace.content_key(),
            "accesses": stream.accesses,
            **{key: getattr(stream, key) for key in _SCALAR_KEYS},
        }
        path, won = commit_entry_dir(
            self.path_for(trace),
            {key: getattr(stream, key) for key in _ARRAY_KEYS},
            header,
        )
        if not won:
            self.hits += 1
        return path

    # ----------------------------------------------------------------- #
    # NoLS baseline summaries
    # ----------------------------------------------------------------- #

    def baseline_path_for(self, trace: Trace) -> Path:
        return self.root / f"{stream_key(trace)}.nols.json"

    def load_baseline(self, trace: Trace) -> Optional[SimStats]:
        """The NoLS baseline :class:`SimStats` for ``trace``, or None."""
        path = self.baseline_path_for(trace)
        try:
            with open(path) as handle:
                data = json.load(handle)
            if (
                data.get("schema") != STREAM_SCHEMA
                or data.get("trace") != trace.content_key()
            ):
                raise ValueError("baseline header mismatch")
            stats = data["stats"]
            if set(stats) != {f.name for f in fields(SimStats)}:
                raise ValueError("baseline stats field mismatch")
            result = SimStats(**stats)
        except FileNotFoundError:
            self.baseline_misses += 1
            return None
        except Exception:
            remove_entry(path)
            self.baseline_misses += 1
            return None
        self.baseline_hits += 1
        return result

    def store_baseline(self, trace: Trace, stats: SimStats) -> Path:
        """Publish ``trace``'s NoLS baseline stats atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        return atomic_write_json(
            self.baseline_path_for(trace),
            {
                "schema": STREAM_SCHEMA,
                "trace": trace.content_key(),
                "stats": asdict(stats),
            },
        )

    # ----------------------------------------------------------------- #
    # Maintenance
    # ----------------------------------------------------------------- #

    def entries(self):
        """Entry paths — stream directories and baseline JSON files."""
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.iterdir()
            if not path.name.endswith(".tmp")
            and (path.is_dir() or path.name.endswith(".nols.json"))
        )

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            remove_entry(path)
            removed += 1
        return removed
