"""Vectorized (numpy) batch replay kernels for the translators.

The reference replay path — :class:`~repro.core.simulator.Simulator`
driving :meth:`Translator.submit` — materializes an
:class:`~repro.core.outcomes.IOOutcome` (plus one
:class:`~repro.core.outcomes.SegmentAccess` per fragment and one
:class:`~repro.disk.head.AccessEvent` per head movement) for every
operation.  That per-op object traffic is what makes multi-million-op
replays slow, not the extent-map arithmetic.  This module replays the same
translators over numpy op arrays instead:

* **NoLS** is stateless, so the whole replay collapses to array
  expressions over ``Trace.as_arrays()`` — no Python loop at all.
* **Log-structured** replay is stateful (the extent map evolves with every
  write), so the kernel sweeps the trace in *chunks*: a tight Python loop
  per chunk performs only the stateful work (extent-map lookups via
  :meth:`~repro.extentmap.base.AddressMap.lookup_pieces`, frontier
  appends, technique-policy calls), appending bare integers to flat
  access-stream buffers; seek classification and distance accumulation
  over each chunk's access stream are then fully vectorized.

Both kernels are **exact**, not approximate: they reproduce the reference
path's seek counts, seek-distance log, aggregate statistics and final
extent-map state bit for bit (the differential suite under
``tests/differential/`` is the oracle).  Translator features the kernels
do not cover — zoned cleaning, multi-frontier translation, fault
injection, retry policies, recorders — automatically fall back to the
reference simulator when selected through
:func:`repro.experiments.common.replay_with`.

Doctest (a write then a fragmenting overwrite-and-read)::

    >>> from repro.core.batch import batch_replay
    >>> from repro.core.config import LS
    >>> from repro.trace.record import IORequest
    >>> from repro.trace.trace import Trace
    >>> trace = Trace([
    ...     IORequest.write(0, 8, 0.0),     # maps [0, 8) at the frontier
    ...     IORequest.write(4, 4, 0.001),   # splits the first extent
    ...     IORequest.read(0, 8, 0.002),    # now a two-fragment read
    ... ], name="doc")
    >>> result = batch_replay(trace, LS)
    >>> result.stats.fragmented_reads, result.stats.read_seeks
    (1, 2)
    >>> list(result.distances)              # doctest: +ELLIPSIS
    [np.int64(-12), np.int64(4)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import TechniqueConfig, build_translator
from repro.core.outcomes import SimStats
from repro.core.simulator import RunResult
from repro.core.translators import (
    InPlaceTranslator,
    LogStructuredTranslator,
    Translator,
)
from repro.trace.trace import Trace

#: Operations swept per chunk by the log-structured kernel.  The result is
#: chunk-size independent (head position carries across chunks); the value
#: only bounds peak buffer memory and amortizes numpy call overhead.
DEFAULT_CHUNK_OPS = 8192

# Access-stream kind codes (mirror the reference seek attribution).
_KIND_READ = 0
_KIND_WRITE = 1
_KIND_DEFRAG = 2


class BatchUnsupportedError(ValueError):
    """The requested translator/configuration has no batch kernel."""


@dataclass(frozen=True)
class BatchRunResult:
    """Result of one batch replay: the reference summary plus array extras.

    Attributes:
        run_result: Drop-in :class:`~repro.core.simulator.RunResult`
            identical to what the reference simulator returns.
        distances: Signed distances of every seek, in access order —
            element-for-element what ``SeekLogRecorder.distances`` records.
        distance_is_read: Parallel bool array: True where the seek was
            charged in the read direction (False for host and defrag
            writes), matching ``SeekRecord.is_read``.
        translator: The translator the kernel drove; its extent map,
            frontier, head position and technique state are left exactly as
            a reference replay would leave them.
    """

    run_result: RunResult
    distances: np.ndarray
    distance_is_read: np.ndarray
    translator: Translator

    @property
    def stats(self) -> SimStats:
        return self.run_result.stats

    @property
    def read_distances(self) -> np.ndarray:
        """Distances of read-direction seeks only (Fig. 4's input)."""
        return self.distances[self.distance_is_read]


def supports_batch(config: TechniqueConfig) -> bool:
    """True if :func:`batch_replay` covers this technique configuration.

    Every :class:`TechniqueConfig` is covered (NoLS, plain LS and the
    three seek-reduction techniques in any combination).  Features outside
    the config system — cleaning, multi-frontier, fault injection,
    recorders, retry policies — are not, and callers needing them must use
    the reference simulator.
    """
    return isinstance(config, TechniqueConfig)


def batch_replay(
    trace: Trace,
    config: TechniqueConfig,
    chunk_ops: int = DEFAULT_CHUNK_OPS,
) -> BatchRunResult:
    """Replay ``trace`` under ``config`` with the vectorized kernels.

    Builds a fresh translator exactly like
    :func:`~repro.core.config.build_translator` and drives it through
    :func:`batch_replay_translator`; the returned ``run_result`` equals the
    reference ``replay(trace, build_translator(trace, config))`` result.
    """
    if not supports_batch(config):
        raise BatchUnsupportedError(
            f"no batch kernel for config {config!r}; use the reference Simulator"
        )
    return batch_replay_translator(trace, build_translator(trace, config), chunk_ops)


def batch_replay_translator(
    trace: Trace,
    translator: Translator,
    chunk_ops: int = DEFAULT_CHUNK_OPS,
) -> BatchRunResult:
    """Drive an existing translator with the matching batch kernel.

    The translator must be freshly constructed (or in the exact state a
    previous batch/reference replay left it — the kernel continues from
    the current head/frontier/map state).  Raises
    :class:`BatchUnsupportedError` for translator types without a kernel
    (cleaning, multi-frontier, fault wrappers).
    """
    if chunk_ops <= 0:
        raise ValueError(f"chunk_ops must be > 0, got {chunk_ops}")
    if type(translator) is InPlaceTranslator:
        return _batch_nols(trace, translator)
    if type(translator) is LogStructuredTranslator:
        return _batch_log_structured(trace, translator, chunk_ops)
    raise BatchUnsupportedError(
        f"no batch kernel for {type(translator).__name__}; "
        "use the reference Simulator"
    )


# --------------------------------------------------------------------- #
# NoLS: fully vectorized
# --------------------------------------------------------------------- #


def _batch_nols(trace: Trace, translator: InPlaceTranslator) -> BatchRunResult:
    """In-place baseline: PBA = LBA, one fragment per op, pure array math."""
    is_read, lba, length = trace.as_arrays()
    n = len(trace)
    stats = SimStats()
    distances = np.empty(0, dtype=np.int64)
    dist_is_read = np.empty(0, dtype=bool)
    if n:
        prev_end = np.empty(n, dtype=np.int64)
        prev_end[0] = lba[0]  # first access never seeks
        np.add(lba[:-1], length[:-1], out=prev_end[1:])
        seek = lba != prev_end
        distances = (lba - prev_end)[seek]
        dist_is_read = is_read[seek]
        reads = int(np.count_nonzero(is_read))
        stats.reads = reads
        stats.writes = n - reads
        stats.read_seeks = int(np.count_nonzero(dist_is_read))
        stats.write_seeks = int(distances.size - stats.read_seeks)
        stats.read_fragments = reads
        stats.sectors_read = int(length[is_read].sum())
        stats.sectors_written = int(length.sum()) - stats.sectors_read
        # Leave the head exactly where the reference replay would.
        translator.head._position = int(lba[-1] + length[-1])
    return BatchRunResult(
        run_result=RunResult(
            trace_name=trace.name,
            translator=translator.description,
            stats=stats,
        ),
        distances=distances,
        distance_is_read=dist_is_read,
        translator=translator,
    )


# --------------------------------------------------------------------- #
# Log-structured: chunked sweep + vectorized classification
# --------------------------------------------------------------------- #


def _batch_log_structured(
    trace: Trace,
    translator: LogStructuredTranslator,
    chunk_ops: int,
) -> BatchRunResult:
    stats = SimStats()
    amap = translator.address_map
    lookup_pieces = amap.lookup_pieces
    map_range = amap.map_range
    defrag = translator.defrag
    prefetcher = translator.prefetcher
    cache = translator.cache
    plain = defrag is None and prefetcher is None and cache is None

    frontier = translator.frontier
    frontier_base = translator.frontier_base
    head_position = translator.head.position  # None before any access

    requests = trace.requests
    n = len(requests)
    distance_chunks: List[np.ndarray] = []
    read_flag_chunks: List[np.ndarray] = []

    # Scalar accumulators kept in locals for speed, folded into stats after.
    reads = writes = 0
    sectors_read = sectors_written = 0
    read_fragments = fragmented_reads = 0
    cache_hits = buffer_hits = 0
    defrag_rewrites = defrag_sectors = 0
    read_seeks = write_seeks = defrag_write_seeks = 0

    for start in range(0, n, chunk_ops):
        chunk = requests[start : start + chunk_ops]
        # Flat access-stream buffers for this chunk (disk accesses only;
        # cache/buffer hits never move the head).
        pba_buf: List[int] = []
        len_buf: List[int] = []
        kind_buf: List[int] = []
        append_pba = pba_buf.append
        append_len = len_buf.append
        append_kind = kind_buf.append

        for request in chunk:
            req_length = request.length
            if request.is_write:
                append_pba(frontier)
                append_len(req_length)
                append_kind(_KIND_WRITE)
                map_range(request.lba, frontier, req_length)
                frontier += req_length
                writes += 1
                sectors_written += req_length
                continue

            req_lba = request.lba
            if req_lba + req_length > frontier_base:
                raise ValueError(
                    f"request [{req_lba}, {req_lba + req_length}) crosses the "
                    f"frontier base {frontier_base}; size the log above the "
                    "workload's LBA space"
                )
            pieces = lookup_pieces(req_lba, req_length)
            fragments = len(pieces)
            reads += 1
            sectors_read += req_length
            read_fragments += fragments
            if plain or fragments == 1:
                # Unfragmented reads bypass every technique (the paper's
                # FragmentedRead guard); plain LS has no techniques at all.
                for pba, piece_length, _hole in pieces:
                    append_pba(pba)
                    append_len(piece_length)
                    append_kind(_KIND_READ)
                if fragments > 1:
                    fragmented_reads += 1
                continue

            fragmented_reads += 1
            for pba, piece_length, _hole in pieces:
                if cache is not None and cache.lookup(pba, piece_length):
                    cache_hits += 1
                    continue
                if prefetcher is not None and prefetcher.covers(pba, piece_length):
                    buffer_hits += 1
                    continue
                append_pba(pba)
                append_len(piece_length)
                append_kind(_KIND_READ)
                if prefetcher is not None:
                    prefetcher.note_fragment_read(pba, piece_length)
                if cache is not None:
                    cache.admit(pba, piece_length)
            if defrag is not None and defrag.should_defragment(
                req_lba, req_length, fragments
            ):
                append_pba(frontier)
                append_len(req_length)
                append_kind(_KIND_DEFRAG)
                map_range(req_lba, frontier, req_length)
                frontier += req_length
                defrag_rewrites += 1
                defrag_sectors += req_length
                defrag.note_defragmented(req_lba, req_length)

        if not pba_buf:
            continue
        # Vectorized seek classification over the chunk's access stream.
        pba_arr = np.asarray(pba_buf, dtype=np.int64)
        len_arr = np.asarray(len_buf, dtype=np.int64)
        kind_arr = np.asarray(kind_buf, dtype=np.int8)
        prev_end = np.empty_like(pba_arr)
        prev_end[0] = pba_arr[0] if head_position is None else head_position
        np.add(pba_arr[:-1], len_arr[:-1], out=prev_end[1:])
        seek = pba_arr != prev_end
        seek_kinds = kind_arr[seek]
        read_seeks += int(np.count_nonzero(seek_kinds == _KIND_READ))
        write_seeks += int(np.count_nonzero(seek_kinds == _KIND_WRITE))
        defrag_write_seeks += int(np.count_nonzero(seek_kinds == _KIND_DEFRAG))
        distance_chunks.append((pba_arr - prev_end)[seek])
        read_flag_chunks.append(seek_kinds == _KIND_READ)
        head_position = int(pba_arr[-1] + len_arr[-1])

    stats.reads = reads
    stats.writes = writes
    stats.sectors_read = sectors_read
    stats.sectors_written = sectors_written
    stats.read_fragments = read_fragments
    stats.fragmented_reads = fragmented_reads
    stats.cache_fragment_hits = cache_hits
    stats.buffer_fragment_hits = buffer_hits
    stats.defrag_rewrites = defrag_rewrites
    stats.defrag_rewritten_sectors = defrag_sectors
    stats.read_seeks = read_seeks
    stats.write_seeks = write_seeks
    stats.defrag_write_seeks = defrag_write_seeks

    # Leave the translator in the exact state a reference replay produces.
    translator._frontier = frontier
    translator.head._position = head_position

    distances = (
        np.concatenate(distance_chunks)
        if distance_chunks
        else np.empty(0, dtype=np.int64)
    )
    dist_is_read = (
        np.concatenate(read_flag_chunks)
        if read_flag_chunks
        else np.empty(0, dtype=bool)
    )
    return BatchRunResult(
        run_result=RunResult(
            trace_name=trace.name,
            translator=translator.description,
            stats=stats,
        ),
        distances=distances,
        distance_is_read=dist_is_read,
        translator=translator,
    )
