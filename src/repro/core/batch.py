"""Vectorized (numpy) batch replay kernels for the translators.

The reference replay path — :class:`~repro.core.simulator.Simulator`
driving :meth:`Translator.submit` — materializes an
:class:`~repro.core.outcomes.IOOutcome` (plus one
:class:`~repro.core.outcomes.SegmentAccess` per fragment and one
:class:`~repro.disk.head.AccessEvent` per head movement) for every
operation.  That per-op object traffic is what makes multi-million-op
replays slow, not the extent-map arithmetic.  This module replays the same
translators over numpy op arrays instead:

* **NoLS** is stateless, so each batch collapses to array expressions over
  the op columns — no Python loop at all.
* **Log-structured** replay is stateful (the extent map evolves with every
  write), so the kernel sweeps the ops in *chunks*: a tight Python loop
  per chunk performs only the stateful work (extent-map lookups via
  :meth:`~repro.extentmap.base.AddressMap.lookup_pieces`, frontier
  appends, technique-policy calls), appending bare integers to flat
  access-stream buffers; seek classification and distance accumulation
  over each chunk's access stream are then fully vectorized.

All kernels are **exact**, not approximate: they reproduce the reference
path's seek counts, seek-distance log, aggregate statistics and final
extent-map state bit for bit (the differential suite under
``tests/differential/`` is the oracle).  The finite-log translators are
covered too:

* **Multi-frontier** replay keeps one running frontier per class;
  classification (:class:`~repro.core.multifrontier.RecencyClassifier`)
  is inherently sequential (each write's verdict depends on the recent
  set as *its* predecessors left it), so the write loop stays scalar but
  inlined, while mapping (:meth:`~ArrayExtentMap.map_range_batch` per
  run), read resolution and seek classification are vectorized.
* **Zoned-cleaning** replay maintains per-zone live-sector counts in a
  :class:`~repro.extentmap.live_counts.ZoneLiveCounts` array (scatter-add
  invalidation), checks the clean trigger with two integer compares per
  write, and on trigger *splits the chunk at the episode boundary*: the
  buffered access stream is seek-classified up to the boundary, the head
  is synced onto the translator, and the cleaning episode runs through
  the translator's own ``_ensure_room`` — exact by construction — before
  batching resumes.

Translator features with no kernel — fault injection, retry policies,
recorders — fall back to the reference simulator when selected through
:func:`repro.experiments.common.replay_with`, which now reports *why*
via :class:`BatchSupport` / :attr:`BatchUnsupportedError.reason` instead
of silently downgrading.

Resumable replay
----------------

The kernels live in :class:`IncrementalBatchReplay`, a **chunk-resumable
engine with explicit serializable state**: feed ops in arbitrary batches,
snapshot the complete kernel state at any batch boundary
(:meth:`~IncrementalBatchReplay.state_dict`), restore it into a fresh
process (:meth:`~IncrementalBatchReplay.from_state`) and continue —
the final stats, seek-distance log and translator state are bit-identical
to a one-shot replay of the same op stream (Hypothesis-tested in
``tests/differential/test_incremental_vs_oneshot.py``).  This is what
lets the streaming service (:mod:`repro.service`) keep per-tenant replay
state resident, checkpoint it, and recover from a ``kill -9`` — and what
bounds replay memory for arbitrarily long op streams.
:func:`batch_replay` is a thin one-shot wrapper over the same engine.

Doctest (a write then a fragmenting overwrite-and-read)::

    >>> from repro.core.batch import batch_replay
    >>> from repro.core.config import LS
    >>> from repro.trace.record import IORequest
    >>> from repro.trace.trace import Trace
    >>> trace = Trace([
    ...     IORequest.write(0, 8, 0.0),     # maps [0, 8) at the frontier
    ...     IORequest.write(4, 4, 0.001),   # splits the first extent
    ...     IORequest.read(0, 8, 0.002),    # now a two-fragment read
    ... ], name="doc")
    >>> result = batch_replay(trace, LS)
    >>> result.stats.fragmented_reads, result.stats.read_seeks
    (1, 2)
    >>> list(result.distances)              # doctest: +ELLIPSIS
    [np.int64(-12), np.int64(4)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cleaning import ZonedCleaningTranslator
from repro.core.config import TechniqueConfig, build_translator
from repro.core.multifrontier import (
    MultiFrontierTranslator,
    RecencyClassifier,
    _frontier_label,
)
from repro.core.outcomes import SimStats
from repro.core.simulator import RunResult
from repro.core.translators import (
    InPlaceTranslator,
    LogStructuredTranslator,
    Translator,
)
from repro.extentmap.array_map import ArrayExtentMap
from repro.extentmap.tiers import DEFAULT_KERNEL_TIER, resolve_map_tier
from repro.trace.record import IORequest
from repro.trace.trace import Trace

#: Operations swept per chunk by the log-structured kernel.  The result is
#: chunk-size independent (head position carries across chunks); the value
#: only bounds peak buffer memory and amortizes numpy call overhead.
DEFAULT_CHUNK_OPS = 8192

# Access-stream kind codes (mirror the reference seek attribution).
_KIND_READ = 0
_KIND_WRITE = 1
_KIND_DEFRAG = 2

# Run-length cutoffs below which the scalar per-op path beats the
# vectorized batch entry points (fixed numpy-call overhead dominates on
# tiny runs).  Purely perf knobs: both paths are exact.
_MIN_BATCH_WRITE_RUN = 8
_MIN_BATCH_READ_RUN = 16

#: Reads resolved per ``lookup_pieces_batch`` call on technique
#: configurations; a defrag rewrite invalidates the resolved window, so
#: windowing bounds the work thrown away when one fires.
_READ_RESOLVE_WINDOW = 512


class BatchUnsupportedError(ValueError):
    """The requested translator/configuration has no batch kernel.

    Attributes:
        reason: Short structured tag naming the feature that forced the
            reference fallback (e.g. ``"translator FaultyTranslator"``);
            surfaced in exhibit manifests and the CLI ``--fast`` summary
            so fallbacks are visible rather than silent.
    """

    def __init__(self, message: str, reason: Optional[str] = None) -> None:
        super().__init__(message)
        self.reason = reason if reason is not None else message


@dataclass(frozen=True)
class BatchSupport:
    """Whether the batch kernels cover a configuration, and if not, why.

    Attributes:
        supported: True if :func:`batch_replay` covers the configuration.
        reason: ``None`` when supported; otherwise the feature that forces
            the reference-simulator fallback.
    """

    supported: bool
    reason: Optional[str] = None

    def __bool__(self) -> bool:
        return self.supported


@dataclass(frozen=True)
class BatchRunResult:
    """Result of one batch replay: the reference summary plus array extras.

    Attributes:
        run_result: Drop-in :class:`~repro.core.simulator.RunResult`
            identical to what the reference simulator returns.
        distances: Signed distances of every seek, in access order —
            element-for-element what ``SeekLogRecorder.distances`` records.
        distance_is_read: Parallel bool array: True where the seek was
            charged in the read direction (False for host and defrag
            writes), matching ``SeekRecord.is_read``.
        translator: The translator the kernel drove; its extent map,
            frontier, head position and technique state are left exactly as
            a reference replay would leave them.
    """

    run_result: RunResult
    distances: np.ndarray
    distance_is_read: np.ndarray
    translator: Translator

    @property
    def stats(self) -> SimStats:
        return self.run_result.stats

    @property
    def read_distances(self) -> np.ndarray:
        """Distances of read-direction seeks only (Fig. 4's input)."""
        return self.distances[self.distance_is_read]


def batch_support(config: TechniqueConfig) -> BatchSupport:
    """Coverage verdict (with fallback reason) for a configuration.

    Every :class:`TechniqueConfig` is covered — NoLS, plain LS, the three
    seek-reduction techniques in any combination, and multi-frontier
    placement (``multi_frontier``).  Only objects outside the config
    system (and translator features like fault injection, recorders or
    retry policies, which never reach this check) force the reference
    simulator; the returned :class:`BatchSupport` names the culprit.
    """
    if not isinstance(config, TechniqueConfig):
        return BatchSupport(
            False, f"config type {type(config).__name__} has no batch kernel"
        )
    return BatchSupport(True)


def supports_batch(config: TechniqueConfig) -> bool:
    """True if :func:`batch_replay` covers this technique configuration.

    Boolean shorthand for :func:`batch_support`, which also reports *why*
    an unsupported configuration falls back.
    """
    return batch_support(config).supported


def batch_replay(
    trace: Trace,
    config: TechniqueConfig,
    chunk_ops: int = DEFAULT_CHUNK_OPS,
) -> BatchRunResult:
    """Replay ``trace`` under ``config`` with the vectorized kernels.

    Builds a fresh translator exactly like
    :func:`~repro.core.config.build_translator` and drives it through
    :func:`batch_replay_translator`; the returned ``run_result`` equals the
    reference ``replay(trace, build_translator(trace, config))`` result.
    """
    support = batch_support(config)
    if not support:
        raise BatchUnsupportedError(
            f"no batch kernel for config {config!r}; use the reference Simulator",
            reason=support.reason,
        )
    translator = build_translator(
        trace, config, address_map_tier=resolve_map_tier(DEFAULT_KERNEL_TIER)
    )
    return batch_replay_translator(trace, translator, chunk_ops)


def batch_replay_translator(
    trace: Trace,
    translator: Translator,
    chunk_ops: int = DEFAULT_CHUNK_OPS,
) -> BatchRunResult:
    """Drive an existing translator with the matching batch kernel.

    The translator must be freshly constructed (or in the exact state a
    previous batch/reference replay left it — the kernel continues from
    the current head/frontier/map state).  Raises
    :class:`BatchUnsupportedError` for translator types without a kernel
    (fault wrappers, the media-cache STL).
    """
    if chunk_ops <= 0:
        raise ValueError(f"chunk_ops must be > 0, got {chunk_ops}")
    engine = IncrementalBatchReplay(translator, trace_name=trace.name)
    if engine.log_structured:
        is_read, lba, length = trace.as_arrays()
        for start in range(0, len(lba), chunk_ops):
            stop = start + chunk_ops
            engine.feed_arrays(is_read[start:stop], lba[start:stop], length[start:stop])
    else:
        # NoLS needs no chunking: one fully vectorized pass over the
        # trace's cached column arrays.
        engine.feed_arrays(*trace.as_arrays())
    return engine.result()


class IncrementalBatchReplay:
    """Chunk-resumable exact replay with explicit serializable state.

    Feed operations in arbitrary batches (:meth:`feed` /
    :meth:`feed_arrays`); counters, the seek-distance log and the
    translator state advance exactly as a one-shot :func:`batch_replay`
    of the concatenated stream would — batch boundaries are invisible in
    the result.  At any boundary the complete kernel state can be
    exported (:meth:`state_dict`), persisted, and later restored
    (:meth:`from_state`) to continue the replay bit-identically, possibly
    in a different process.

    Args:
        translator: A fresh (or restored) :class:`InPlaceTranslator`,
            :class:`LogStructuredTranslator`,
            :class:`MultiFrontierTranslator` or
            :class:`ZonedCleaningTranslator`.  Other translator types
            raise :class:`BatchUnsupportedError`.
        trace_name: Label used in :meth:`result`'s ``RunResult``.
        track_fragments: Maintain a per-read fragment-count histogram
            (``{fragment_count: reads}``) alongside the counters.  The
            streaming service derives the live Fig. 5 fragment CDF from
            it; off by default so one-shot replays don't pay the extra
            dict update per read.
    """

    def __init__(
        self,
        translator: Translator,
        trace_name: str = "stream",
        track_fragments: bool = False,
    ) -> None:
        self._ls: Optional[LogStructuredTranslator] = None
        self._mf: Optional[MultiFrontierTranslator] = None
        self._zc: Optional[ZonedCleaningTranslator] = None
        if type(translator) is LogStructuredTranslator:
            self._ls = translator
        elif type(translator) is MultiFrontierTranslator:
            self._mf = translator
        elif type(translator) is ZonedCleaningTranslator:
            self._zc = translator
        elif type(translator) is not InPlaceTranslator:
            raise BatchUnsupportedError(
                f"no batch kernel for {type(translator).__name__}; "
                "use the reference Simulator",
                reason=f"translator {type(translator).__name__}",
            )
        self._translator = translator
        self.trace_name = trace_name
        self.ops_applied = 0
        self._track_fragments = track_fragments
        self.fragment_hist: Dict[int, int] = {}
        self._head_position = translator.head.position

        # Scalar accumulators (folded into a SimStats by result()).
        self._reads = 0
        self._writes = 0
        self._sectors_read = 0
        self._sectors_written = 0
        self._read_fragments = 0
        self._fragmented_reads = 0
        self._cache_hits = 0
        self._buffer_hits = 0
        self._defrag_rewrites = 0
        self._defrag_sectors = 0
        self._read_seeks = 0
        self._write_seeks = 0
        self._defrag_write_seeks = 0

        # Undrained seek-distance log, in access order.
        self._distance_chunks: List[np.ndarray] = []
        self._read_flag_chunks: List[np.ndarray] = []

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #

    @property
    def translator(self) -> Translator:
        return self._translator

    @property
    def log_structured(self) -> bool:
        """True for stateful (chunked) kernels: LS, multi-frontier, cleaning."""
        return self._ls is not None or self._mf is not None or self._zc is not None

    # ----------------------------------------------------------------- #
    # Feeding
    # ----------------------------------------------------------------- #

    def feed(self, requests: Sequence[IORequest]) -> None:
        """Replay one batch of requests, advancing the resident state.

        A mid-batch error (e.g. a read crossing the frontier base) leaves
        the engine partially advanced — discard it and restore from the
        last snapshot; this is exactly what the service's recovery path
        does.
        """
        n = len(requests)
        if n == 0:
            return
        packed = np.fromiter(
            ((r.is_read, r.lba, r.length) for r in requests),
            dtype=[("is_read", "?"), ("lba", "<i8"), ("length", "<i8")],
            count=n,
        )
        self.feed_arrays(packed["is_read"], packed["lba"], packed["length"])

    def feed_arrays(
        self, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        """Replay one batch already in column form (any kernel).

        The zero-conversion entry point: the NoLS kernel is one array
        expression over the columns, and the log-structured kernel splits
        the batch into write/read runs and drives the address map's batch
        entry points directly (:meth:`feed` is a thin packing wrapper
        over this).
        """
        if self.log_structured:
            columns = (
                np.ascontiguousarray(is_read, dtype=bool),
                np.ascontiguousarray(lba, dtype=np.int64),
                np.ascontiguousarray(length, dtype=np.int64),
            )
            if self._ls is not None:
                self._feed_ls_arrays(*columns)
            elif self._mf is not None:
                self._feed_mf_arrays(*columns)
            else:
                self._feed_cleaning_arrays(*columns)
            return
        n = len(lba)
        if n == 0:
            return
        prev_end = np.empty(n, dtype=np.int64)
        prev_end[0] = lba[0] if self._head_position is None else self._head_position
        np.add(lba[:-1], length[:-1], out=prev_end[1:])
        seek = lba != prev_end
        distances = (lba - prev_end)[seek]
        dist_is_read = np.ascontiguousarray(is_read[seek])
        reads = int(np.count_nonzero(is_read))
        read_seeks = int(np.count_nonzero(dist_is_read))
        sectors_read = int(length[is_read].sum())
        self._reads += reads
        self._writes += n - reads
        self._read_seeks += read_seeks
        self._write_seeks += int(distances.size) - read_seeks
        self._read_fragments += reads
        self._sectors_read += sectors_read
        self._sectors_written += int(length.sum()) - sectors_read
        if self._track_fragments and reads:
            self.fragment_hist[1] = self.fragment_hist.get(1, 0) + reads
        if distances.size:
            self._distance_chunks.append(np.ascontiguousarray(distances))
            self._read_flag_chunks.append(dist_is_read)
        self._head_position = int(lba[-1] + length[-1])
        self._translator.head.restore_position(self._head_position)
        self.ops_applied += n

    def _feed_ls_arrays(
        self, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        """The log-structured kernel: run-split, batch-mapped replay.

        The batch is cut into maximal write runs and read runs.  On an
        :class:`ArrayExtentMap` a write run maps in one call with a
        single batched frontier reservation (the run's PBAs are one
        cumulative sum — valid because host writes are the only frontier
        consumers inside a write run), and a plain-LS read run resolves
        in one :meth:`~ArrayExtentMap.lookup_pieces_batch` call.
        Technique configurations resolve reads in windows, replaying the
        per-read policy decisions (cache/prefetch/defrag) in order; a
        defrag rewrite moves both the map and the frontier, so it
        invalidates the resolved window.  Tiny runs and non-array maps
        take the scalar per-op path — all paths are exact and produce
        identical access streams, so results are independent of run
        shape and chunk size.
        """
        n = len(lba)
        if n == 0:
            return
        translator = self._ls
        amap = translator.address_map
        batch_map = isinstance(amap, ArrayExtentMap)
        lookup_pieces = amap.lookup_pieces
        map_range = amap.map_range
        defrag = translator.defrag
        prefetcher = translator.prefetcher
        cache = translator.cache
        plain = defrag is None and prefetcher is None and cache is None
        track_fragments = self._track_fragments
        fragment_hist = self.fragment_hist

        frontier = translator.frontier
        frontier_base = translator.frontier_base
        head_position = self._head_position

        # Stop before the first read crossing the frontier base: ops ahead
        # of it still apply (the engine ends partially advanced, exactly
        # like the per-op loop), then the same ValueError is raised.
        violation = is_read & (lba + length > frontier_base)
        stop = n
        bad_op = None
        if violation.any():
            stop = int(violation.argmax())
            bad_op = (int(lba[stop]), int(length[stop]))

        # Access-stream chunks (disk accesses only, in access order).
        # Vectorized runs append arrays; scalar paths spill into lists
        # that are drained into a chunk whenever the order requires it.
        chunks: List[tuple] = []
        pba_buf: List[int] = []
        len_buf: List[int] = []
        kind_buf: List[int] = []
        append_pba = pba_buf.append
        append_len = len_buf.append
        append_kind = kind_buf.append

        def drain_scalar() -> None:
            if pba_buf:
                chunks.append(
                    (
                        np.asarray(pba_buf, dtype=np.int64),
                        np.asarray(len_buf, dtype=np.int64),
                        np.asarray(kind_buf, dtype=np.int8),
                    )
                )
                del pba_buf[:]
                del len_buf[:]
                del kind_buf[:]

        # Scalar accumulators kept in locals for speed, folded in after.
        reads = writes = 0
        sectors_read = sectors_written = 0
        read_fragments = fragmented_reads = 0
        cache_hits = buffer_hits = 0
        defrag_rewrites = defrag_sectors = 0

        if stop:
            flags = is_read[:stop]
            edges = np.flatnonzero(np.diff(flags.view(np.int8))) + 1
            bounds = [0, *edges.tolist(), stop]
        else:
            bounds = [0]
        for run_start, run_stop in zip(bounds[:-1], bounds[1:]):
            run_ops = run_stop - run_start
            if not flags[run_start]:
                # ---------------------------- write run
                writes += run_ops
                run_len = length[run_start:run_stop]
                if batch_map and run_ops >= _MIN_BATCH_WRITE_RUN:
                    total = int(run_len.sum())
                    run_pba = np.empty(run_ops, dtype=np.int64)
                    run_pba[0] = frontier
                    np.cumsum(run_len[:-1], out=run_pba[1:])
                    run_pba[1:] += frontier
                    amap.map_range_batch(lba[run_start:run_stop], run_pba, run_len)
                    drain_scalar()
                    chunks.append(
                        (run_pba, run_len, np.full(run_ops, _KIND_WRITE, np.int8))
                    )
                    frontier += total
                    sectors_written += total
                else:
                    for op_lba, op_length in zip(
                        lba[run_start:run_stop].tolist(), run_len.tolist()
                    ):
                        append_pba(frontier)
                        append_len(op_length)
                        append_kind(_KIND_WRITE)
                        map_range(op_lba, frontier, op_length)
                        frontier += op_length
                        sectors_written += op_length
                continue

            # -------------------------------- read run
            run_lba = lba[run_start:run_stop]
            run_len = length[run_start:run_stop]
            if plain and batch_map and run_ops >= _MIN_BATCH_READ_RUN:
                piece_pba, piece_len, _hole, offsets = amap.lookup_pieces_batch(
                    run_lba, run_len
                )
                counts = np.diff(offsets)
                reads += run_ops
                sectors_read += int(run_len.sum())
                read_fragments += int(offsets[-1])
                fragmented_reads += int(np.count_nonzero(counts > 1))
                if track_fragments:
                    values, repeats = np.unique(counts, return_counts=True)
                    for value, repeat in zip(values.tolist(), repeats.tolist()):
                        fragment_hist[value] = fragment_hist.get(value, 0) + repeat
                drain_scalar()
                chunks.append(
                    (piece_pba, piece_len, np.full(len(piece_pba), _KIND_READ, np.int8))
                )
                continue
            if not plain and batch_map and run_ops >= _MIN_BATCH_READ_RUN:
                # Windowed batch resolution + per-read technique replay.
                # A defrag rewrite moves the map, but only for the range
                # it rewrote — instead of re-resolving the whole window,
                # remember the stale ranges and re-resolve just the ops
                # that overlap one (scalar, against the live map).
                lba_list = run_lba.tolist()
                len_list = run_len.tolist()
                window_base = window_stop = 0
                p_list: List[int] = []
                l_list: List[int] = []
                off_list: List[int] = []
                stale: List[tuple] = []
                for j in range(run_ops):
                    if j >= window_stop:
                        window_base = j
                        window_stop = min(j + _READ_RESOLVE_WINDOW, run_ops)
                        p_arr, l_arr, _h, off = amap.lookup_pieces_batch(
                            run_lba[window_base:window_stop],
                            run_len[window_base:window_stop],
                        )
                        p_list = p_arr.tolist()
                        l_list = l_arr.tolist()
                        off_list = off.tolist()
                        stale = []
                    req_lba = lba_list[j]
                    req_length = len_list[j]
                    req_end = req_lba + req_length
                    op_p = p_list
                    op_l = l_list
                    lo = off_list[j - window_base]
                    fragments = off_list[j - window_base + 1] - lo
                    for stale_start, stale_end in stale:
                        if stale_start < req_end and req_lba < stale_end:
                            pieces = lookup_pieces(req_lba, req_length)
                            op_p = [piece[0] for piece in pieces]
                            op_l = [piece[1] for piece in pieces]
                            lo = 0
                            fragments = len(pieces)
                            break
                    reads += 1
                    sectors_read += req_length
                    read_fragments += fragments
                    if track_fragments:
                        fragment_hist[fragments] = (
                            fragment_hist.get(fragments, 0) + 1
                        )
                    if fragments == 1:
                        # Unfragmented reads bypass every technique (the
                        # paper's FragmentedRead guard).
                        append_pba(op_p[lo])
                        append_len(op_l[lo])
                        append_kind(_KIND_READ)
                        continue
                    fragmented_reads += 1
                    for piece in range(lo, lo + fragments):
                        pba = op_p[piece]
                        piece_length = op_l[piece]
                        if cache is not None and cache.lookup(pba, piece_length):
                            cache_hits += 1
                            continue
                        if prefetcher is not None and prefetcher.covers(
                            pba, piece_length
                        ):
                            buffer_hits += 1
                            continue
                        append_pba(pba)
                        append_len(piece_length)
                        append_kind(_KIND_READ)
                        if prefetcher is not None:
                            prefetcher.note_fragment_read(pba, piece_length)
                        if cache is not None:
                            cache.admit(pba, piece_length)
                    if defrag is not None and defrag.should_defragment(
                        req_lba, req_length, fragments
                    ):
                        append_pba(frontier)
                        append_len(req_length)
                        append_kind(_KIND_DEFRAG)
                        map_range(req_lba, frontier, req_length)
                        frontier += req_length
                        defrag_rewrites += 1
                        defrag_sectors += req_length
                        defrag.note_defragmented(req_lba, req_length)
                        stale.append((req_lba, req_end))
                continue
            # Scalar read path (non-array maps and tiny runs) — the
            # original per-op logic, shared by every tier.
            for req_lba, req_length in zip(run_lba.tolist(), run_len.tolist()):
                pieces = lookup_pieces(req_lba, req_length)
                fragments = len(pieces)
                reads += 1
                sectors_read += req_length
                read_fragments += fragments
                if track_fragments:
                    fragment_hist[fragments] = fragment_hist.get(fragments, 0) + 1
                if plain or fragments == 1:
                    for pba, piece_length, _hole in pieces:
                        append_pba(pba)
                        append_len(piece_length)
                        append_kind(_KIND_READ)
                    if fragments > 1:
                        fragmented_reads += 1
                    continue
                fragmented_reads += 1
                for pba, piece_length, _hole in pieces:
                    if cache is not None and cache.lookup(pba, piece_length):
                        cache_hits += 1
                        continue
                    if prefetcher is not None and prefetcher.covers(
                        pba, piece_length
                    ):
                        buffer_hits += 1
                        continue
                    append_pba(pba)
                    append_len(piece_length)
                    append_kind(_KIND_READ)
                    if prefetcher is not None:
                        prefetcher.note_fragment_read(pba, piece_length)
                    if cache is not None:
                        cache.admit(pba, piece_length)
                if defrag is not None and defrag.should_defragment(
                    req_lba, req_length, fragments
                ):
                    append_pba(frontier)
                    append_len(req_length)
                    append_kind(_KIND_DEFRAG)
                    map_range(req_lba, frontier, req_length)
                    frontier += req_length
                    defrag_rewrites += 1
                    defrag_sectors += req_length
                    defrag.note_defragmented(req_lba, req_length)

        if bad_op is not None:
            # Match the per-op loop's error contract: the prefix mutated
            # the map/techniques, but nothing is folded or classified —
            # the engine must be discarded (restore from a snapshot).
            raise ValueError(
                f"request [{bad_op[0]}, {bad_op[0] + bad_op[1]}) crosses the "
                f"frontier base {frontier_base}; size the log above the "
                "workload's LBA space"
            )

        self._fold_scalars(
            reads, writes, sectors_read, sectors_written, read_fragments,
            fragmented_reads, cache_hits, buffer_hits, defrag_rewrites,
            defrag_sectors,
        )
        self.ops_applied += n
        drain_scalar()

        self._head_position = self._classify_access_stream(chunks, head_position)

        # Leave the translator in the exact state a reference replay
        # produces after the same ops.
        translator._frontier = frontier
        translator.head.restore_position(self._head_position)

    def _classify_access_stream(
        self, chunks: List[tuple], head_position: Optional[int]
    ) -> Optional[int]:
        """Vectorized seek classification over a buffered access stream.

        Folds seek counts and distances into the engine counters and
        returns the head position after the stream (``head_position``
        unchanged when the stream is empty).  Shared by every stateful
        kernel; the zoned-cleaning kernel also calls it mid-batch at each
        cleaning-episode boundary.
        """
        if not chunks:
            return head_position
        pba_arr = np.concatenate([chunk[0] for chunk in chunks])
        len_arr = np.concatenate([chunk[1] for chunk in chunks])
        kind_arr = np.concatenate([chunk[2] for chunk in chunks])
        prev_end = np.empty_like(pba_arr)
        prev_end[0] = pba_arr[0] if head_position is None else head_position
        np.add(pba_arr[:-1], len_arr[:-1], out=prev_end[1:])
        seek = pba_arr != prev_end
        seek_kinds = kind_arr[seek]
        self._read_seeks += int(np.count_nonzero(seek_kinds == _KIND_READ))
        self._write_seeks += int(np.count_nonzero(seek_kinds == _KIND_WRITE))
        self._defrag_write_seeks += int(
            np.count_nonzero(seek_kinds == _KIND_DEFRAG)
        )
        self._distance_chunks.append((pba_arr - prev_end)[seek])
        self._read_flag_chunks.append(seek_kinds == _KIND_READ)
        return int(pba_arr[-1] + len_arr[-1])

    def _feed_mf_arrays(
        self, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        """The multi-frontier kernel: inline classification, batched mapping.

        Write classification is inherently sequential — each op's verdict
        depends on the recent-block set exactly as *its* predecessors left
        it — so the write loop stays scalar, but with the classifier's LRU
        update inlined (no method dispatch, no per-op objects) while it
        maintains every per-class running frontier.  A write run then maps
        in one :meth:`~ArrayExtentMap.map_range_batch` call (the per-op
        PBA assignment the loop produced *is* the N-frontier exclusive
        cumsum, applied in op order so overlapping writes resolve exactly
        like the reference).  Read runs and seek classification are fully
        vectorized, identical to the plain-LS paths.  Exact for any
        classifier: non-stock classifiers fall back to
        ``classify_and_note`` per op.
        """
        n = len(lba)
        if n == 0:
            return
        translator = self._mf
        amap = translator.address_map
        batch_map = isinstance(amap, ArrayExtentMap)
        lookup_pieces = amap.lookup_pieces
        map_range = amap.map_range
        classifier = translator.classifier
        inline_classify = type(classifier) is RecencyClassifier
        if inline_classify:
            recent = classifier._recent
            window = classifier._window
            block_sectors = classifier._block
        track_fragments = self._track_fragments
        fragment_hist = self.fragment_hist

        frontier_base = translator.frontier_base
        region_sectors = translator.region_sectors
        frontiers = list(translator._frontiers)
        frontier_writes = list(translator._frontier_writes)
        switches = translator.frontier_switches
        last_idx = translator._last_frontier
        head_position = self._head_position

        # Stop before the first read crossing the frontier base, exactly
        # like the per-op loop (writes are classified, not range-checked).
        violation = is_read & (lba + length > frontier_base)
        stop = n
        bad_read = None
        if violation.any():
            stop = int(violation.argmax())
            bad_read = (int(lba[stop]), int(length[stop]))

        chunks: List[tuple] = []
        pba_buf: List[int] = []
        len_buf: List[int] = []
        kind_buf: List[int] = []
        append_pba = pba_buf.append
        append_len = len_buf.append
        append_kind = kind_buf.append

        def drain_scalar() -> None:
            if pba_buf:
                chunks.append(
                    (
                        np.asarray(pba_buf, dtype=np.int64),
                        np.asarray(len_buf, dtype=np.int64),
                        np.asarray(kind_buf, dtype=np.int8),
                    )
                )
                del pba_buf[:]
                del len_buf[:]
                del kind_buf[:]

        reads = writes = 0
        sectors_read = sectors_written = 0
        read_fragments = fragmented_reads = 0
        exhausted: Optional[int] = None

        if stop:
            flags = is_read[:stop]
            edges = np.flatnonzero(np.diff(flags.view(np.int8))) + 1
            bounds = [0, *edges.tolist(), stop]
        else:
            bounds = [0]
        for run_start, run_stop in zip(bounds[:-1], bounds[1:]):
            run_ops = run_stop - run_start
            if not flags[run_start]:
                # ---------------------------- write run
                run_lba = lba[run_start:run_stop]
                run_len = length[run_start:run_stop]
                batch_run = batch_map and run_ops >= _MIN_BATCH_WRITE_RUN
                pba_list: List[int] = []
                applied = 0
                for op_lba, op_length in zip(run_lba.tolist(), run_len.tolist()):
                    if inline_classify:
                        first_block = op_lba // block_sectors
                        last_block = (op_lba + op_length - 1) // block_sectors
                        hot = False
                        for block in range(first_block, last_block + 1):
                            if block in recent:
                                hot = True
                                break
                        for block in range(first_block, last_block + 1):
                            if block in recent:
                                recent.move_to_end(block)
                            else:
                                recent[block] = None
                        while len(recent) > window:
                            recent.popitem(last=False)
                        index = 1 if hot else 0
                    else:
                        index = int(classifier.classify_and_note(op_lba, op_length))
                    frontier_writes[index] += 1
                    frontier = frontiers[index]
                    if (
                        frontier + op_length
                        > frontier_base + (index + 1) * region_sectors
                    ):
                        exhausted = index
                        break
                    frontiers[index] = frontier + op_length
                    if last_idx is not None and last_idx != index:
                        switches += 1
                    last_idx = index
                    writes += 1
                    sectors_written += op_length
                    if batch_run:
                        pba_list.append(frontier)
                    else:
                        append_pba(frontier)
                        append_len(op_length)
                        append_kind(_KIND_WRITE)
                        map_range(op_lba, frontier, op_length)
                    applied += 1
                if batch_run and applied:
                    run_pba = np.asarray(pba_list, dtype=np.int64)
                    amap.map_range_batch(
                        run_lba[:applied], run_pba, run_len[:applied]
                    )
                    drain_scalar()
                    chunks.append(
                        (
                            run_pba,
                            run_len[:applied],
                            np.full(applied, _KIND_WRITE, np.int8),
                        )
                    )
                if exhausted is not None:
                    break
                continue

            # -------------------------------- read run (plain-LS logic)
            run_lba = lba[run_start:run_stop]
            run_len = length[run_start:run_stop]
            if batch_map and run_ops >= _MIN_BATCH_READ_RUN:
                piece_pba, piece_len, _hole, offsets = amap.lookup_pieces_batch(
                    run_lba, run_len
                )
                counts = np.diff(offsets)
                reads += run_ops
                sectors_read += int(run_len.sum())
                read_fragments += int(offsets[-1])
                fragmented_reads += int(np.count_nonzero(counts > 1))
                if track_fragments:
                    values, repeats = np.unique(counts, return_counts=True)
                    for value, repeat in zip(values.tolist(), repeats.tolist()):
                        fragment_hist[value] = fragment_hist.get(value, 0) + repeat
                drain_scalar()
                chunks.append(
                    (piece_pba, piece_len, np.full(len(piece_pba), _KIND_READ, np.int8))
                )
                continue
            for req_lba, req_length in zip(run_lba.tolist(), run_len.tolist()):
                pieces = lookup_pieces(req_lba, req_length)
                fragments = len(pieces)
                reads += 1
                sectors_read += req_length
                read_fragments += fragments
                if fragments > 1:
                    fragmented_reads += 1
                if track_fragments:
                    fragment_hist[fragments] = fragment_hist.get(fragments, 0) + 1
                for pba, piece_length, _h in pieces:
                    append_pba(pba)
                    append_len(piece_length)
                    append_kind(_KIND_READ)

        if exhausted is not None or bad_read is not None:
            # Match the per-op error contract: the prefix is applied on
            # the translator (for exhaustion, including the violating
            # op's classification and per-frontier counter but not its
            # advance), nothing is folded or classified — the engine must
            # be discarded (restore from a snapshot).
            translator._frontiers = frontiers
            translator._frontier_writes = frontier_writes
            translator.frontier_switches = switches
            translator._last_frontier = last_idx
            if exhausted is not None:
                raise ValueError(
                    f"{_frontier_label(exhausted)} log region exhausted; "
                    "enlarge region_sectors"
                )
            raise ValueError(
                f"read end {bad_read[0] + bad_read[1]} crosses the log base "
                f"{frontier_base}"
            )

        self._fold_scalars(
            reads, writes, sectors_read, sectors_written, read_fragments,
            fragmented_reads, 0, 0, 0, 0,
        )
        self.ops_applied += n
        drain_scalar()
        self._head_position = self._classify_access_stream(chunks, head_position)
        translator._frontiers = frontiers
        translator._frontier_writes = frontier_writes
        translator.frontier_switches = switches
        translator._last_frontier = last_idx
        translator.head.restore_position(self._head_position)

    def _feed_cleaning_arrays(
        self, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        """The zoned-cleaning kernel: batched I/O between exact episodes.

        Between cleaning episodes everything batches: read runs resolve in
        one :meth:`~ArrayExtentMap.lookup_pieces_batch` call, writes keep
        the zone frontier and the per-zone live counts
        (:class:`~repro.extentmap.live_counts.ZoneLiveCounts`) in locals,
        and the clean trigger is two integer compares per write against
        running ``writable``/``free`` tallies.  When the trigger fires the
        chunk *splits at the episode boundary*: the buffered access stream
        is seek-classified, the head position is synced onto the
        translator, and the episode runs through the translator's own
        ``_ensure_room`` — victim selection, relocation and cleaning-seek
        accounting are the reference code itself, so episodes are exact by
        construction — after which the tallies resync and batching resumes
        from the post-episode head position.  Episode relocations never
        enter the engine's access stream (the reference produces no
        ``IOOutcome`` for them either; they count only in
        ``cleaning_stats``).
        """
        n = len(lba)
        if n == 0:
            return
        translator = self._zc
        amap = translator.address_map()
        batch_map = isinstance(amap, ArrayExtentMap)
        lookup_pieces = amap.lookup_pieces
        map_range = amap.map_range
        map_range_batch = amap.map_range_batch if batch_map else None
        extent_arrays = amap.extent_arrays if batch_map else None
        track_fragments = self._track_fragments
        fragment_hist = self.fragment_hist

        base = translator._base
        reserve = translator._reserve
        half_capacity = translator._zones.capacity_sectors // 2
        zone_sectors = translator._zones.zone_sectors
        zones_list = translator._zones.zones
        open_order = translator._open_order
        live = translator._live
        entries = translator._entries
        zone_write_seq = translator._zone_write_seq
        cleaning_stats = translator.cleaning_stats
        write_seq = translator._write_seq
        writable = translator._writable_sectors()
        free = translator.free_zones()
        head_position = self._head_position

        # Stop before the first op (read OR write) crossing into the log
        # region — submit() range-checks every request first.
        violation = lba + length > base
        stop = n
        bad_op = None
        if violation.any():
            stop = int(violation.argmax())
            bad_op = (int(lba[stop]), int(length[stop]))

        chunks: List[tuple] = []
        pba_buf: List[int] = []
        len_buf: List[int] = []
        kind_buf: List[int] = []
        append_pba = pba_buf.append
        append_len = len_buf.append
        append_kind = kind_buf.append

        def drain_scalar() -> None:
            if pba_buf:
                chunks.append(
                    (
                        np.asarray(pba_buf, dtype=np.int64),
                        np.asarray(len_buf, dtype=np.int64),
                        np.asarray(kind_buf, dtype=np.int8),
                    )
                )
                del pba_buf[:]
                del len_buf[:]
                del kind_buf[:]

        reads = writes = 0
        sectors_read = sectors_written = 0
        read_fragments = fragmented_reads = 0
        host_written = 0
        too_large: Optional[int] = None

        if stop:
            flags = is_read[:stop]
            edges = np.flatnonzero(np.diff(flags.view(np.int8))) + 1
            bounds = [0, *edges.tolist(), stop]
        else:
            bounds = [0]
        for run_start, run_stop in zip(bounds[:-1], bounds[1:]):
            run_ops = run_stop - run_start
            run_lba = lba[run_start:run_stop]
            run_len = length[run_start:run_stop]
            if not flags[run_start]:
                # ---------------------------- write run
                run_lba_list = run_lba.tolist()
                run_len_list = run_len.tolist()
                i = 0
                while i < run_ops:
                    if batch_map and run_ops - i >= _MIN_BATCH_WRITE_RUN:
                        # ---- batched prefix: every op strictly before the
                        # first that is oversized, outruns the writable
                        # tally, or trips the clean trigger.  That op (if
                        # any) falls through to the scalar body, which runs
                        # the episode exactly; batching resumes after it.
                        seg_len = run_len[i:]
                        cum = np.cumsum(seg_len)
                        before = cum - seg_len
                        j = translator._open_idx
                        while (
                            j < len(open_order)
                            and zones_list[open_order[j]].is_full
                        ):
                            j += 1
                        m = 0
                        if j < len(open_order):
                            # Zones turning non-empty strictly before each
                            # op: the frontier's remaining r0, then whole
                            # (empty, by queue construction) zones.
                            frontier = zones_list[open_order[j]]
                            r0 = frontier.end - frontier.write_pointer
                            opened = (before - r0 + zone_sectors - 1) // zone_sectors
                            np.maximum(opened, 0, out=opened)
                            if frontier.write_pointer == frontier.start:
                                opened += before > 0
                            bad = (
                                (seg_len > half_capacity)
                                | (writable - before < seg_len)
                                | (free - opened < reserve)
                            )
                            m = int(bad.argmax()) if bad.any() else run_ops - i
                        if m:
                            # Lay the prefix out over the zone queue.
                            total = int(cum[m - 1])
                            zone_caps: List[int] = []
                            zone_phys: List[int] = []
                            zone_pos: List[int] = []
                            covered = 0
                            jj = j
                            while covered < total:
                                zone = zones_list[open_order[jj]]
                                if jj > j and zone.write_pointer != zone.start:
                                    m = 0  # queue invariant broken: go scalar
                                    break
                                zone_caps.append(zone.end - zone.write_pointer)
                                zone_phys.append(zone.write_pointer)
                                zone_pos.append(jj)
                                covered += zone_caps[-1]
                                jj += 1
                        if m:
                            # Split ops at zone boundaries (virtual offsets
                            # 0..total over the laid-out capacity).
                            lens = seg_len[:m]
                            op_start = before[:m]
                            op_end = cum[:m]
                            caps = np.asarray(zone_caps, dtype=np.int64)
                            bounds = np.cumsum(caps)
                            starts_v = bounds - caps
                            first_region = np.searchsorted(
                                bounds, op_start, side="right"
                            )
                            last_region = np.searchsorted(
                                bounds, op_end - 1, side="right"
                            )
                            reps = last_region - first_region + 1
                            n_pieces = int(reps.sum())
                            if n_pieces == m:
                                piece_region = first_region
                                piece_v = op_start
                                piece_len = lens
                                piece_lba = run_lba[i : i + m]
                            else:
                                offs = np.zeros(m, dtype=np.int64)
                                np.cumsum(reps[:-1], out=offs[1:])
                                intra = (
                                    np.arange(n_pieces, dtype=np.int64)
                                    - offs.repeat(reps)
                                )
                                piece_region = first_region.repeat(reps) + intra
                                op_start_rep = op_start.repeat(reps)
                                piece_v = np.maximum(
                                    op_start_rep, starts_v[piece_region]
                                )
                                piece_len = (
                                    np.minimum(
                                        op_end.repeat(reps), bounds[piece_region]
                                    )
                                    - piece_v
                                )
                                piece_lba = run_lba[i : i + m].repeat(reps) + (
                                    piece_v - op_start_rep
                                )
                            phys = np.asarray(zone_phys, dtype=np.int64)
                            piece_pba = base + phys[piece_region] + (
                                piece_v - starts_v[piece_region]
                            )
                            # Map and access stream, in op order (the map
                            # applies rows in order, so intra-prefix
                            # overwrites land exactly as scalar would).
                            map_range_batch(piece_lba, piece_pba, piece_len)
                            drain_scalar()
                            chunks.append(
                                (
                                    piece_pba,
                                    piece_len,
                                    np.full(n_pieces, _KIND_WRITE, np.int8),
                                )
                            )
                            # Ledger, write stamps, zone pointers per zone.
                            region_counts = np.bincount(
                                piece_region, minlength=len(caps)
                            ).tolist()
                            pba_list = piece_pba.tolist()
                            lba_list = piece_lba.tolist()
                            len_list = piece_len.tolist()
                            pos = 0
                            for region, count in enumerate(region_counts):
                                if not count:
                                    continue
                                zone = zones_list[open_order[zone_pos[region]]]
                                if zone.write_pointer == zone.start:
                                    free -= 1
                                zone_id = zone.zone_id
                                entries[zone_id].extend(
                                    zip(
                                        pba_list[pos : pos + count],
                                        lba_list[pos : pos + count],
                                        len_list[pos : pos + count],
                                    )
                                )
                                zone_write_seq[zone_id] = write_seq + pos + count - 1
                                zone.write_pointer += (
                                    min(total, int(bounds[region]))
                                    - int(starts_v[region])
                                )
                                pos += count
                            write_seq += n_pieces
                            writable -= total
                            translator._open_idx = zone_pos[int(piece_region[-1])]
                            host_written += total
                            writes += m
                            sectors_written += total
                            # Live counts: superseding and crediting net out
                            # to the mapped-live invariant, so rebuild the
                            # counts wholesale from the post-prefix map
                            # instead of invalidating per op.
                            _, map_pba_arr, map_len_arr = extent_arrays()
                            in_log = map_pba_arr >= base
                            live.recompute_from_extents(
                                map_pba_arr[in_log] - base, map_len_arr[in_log]
                            )
                            i += m
                            continue
                    op_lba = run_lba_list[i]
                    op_length = run_len_list[i]
                    i += 1
                    host_written += op_length
                    if op_length > half_capacity:
                        too_large = op_length
                        break
                    if writable < op_length or free < reserve:
                        # Episode boundary: close the buffered stream,
                        # sync the head, run the episode via the
                        # translator's own cleaning code, resync.
                        drain_scalar()
                        head_position = self._classify_access_stream(
                            chunks, head_position
                        )
                        del chunks[:]
                        translator._head.restore_position(head_position)
                        translator._write_seq = write_seq
                        cleaning_stats.host_written_sectors += host_written
                        host_written = 0
                        translator._ensure_room(op_length)
                        write_seq = translator._write_seq
                        head_position = translator._head.position
                        writable = translator._writable_sectors()
                        free = translator.free_zones()
                    # Invalidate what this write supersedes (against the
                    # pre-write map, as _invalidate does).
                    pieces = lookup_pieces(op_lba, op_length)
                    if len(pieces) == 1:
                        s_pba, s_len, s_hole = pieces[0]
                        if not s_hole and s_pba >= base:
                            live.decrement_range(s_pba - base, s_len)
                    else:
                        dec_pba = [
                            p - base for p, _l, h in pieces if not h and p >= base
                        ]
                        if dec_pba:
                            dec_len = [
                                piece_len
                                for p, piece_len, h in pieces
                                if not h and p >= base
                            ]
                            live.decrement_ranges(
                                np.asarray(dec_pba, dtype=np.int64),
                                np.asarray(dec_len, dtype=np.int64),
                            )
                    # Append at the zone frontier, splitting per zone
                    # (inline ZonedAddressSpace.write — its validations
                    # hold by construction here).
                    writes += 1
                    sectors_written += op_length
                    remaining = op_length
                    cursor = op_lba
                    while remaining:
                        zone = translator._current_zone()
                        zone_remaining = zone.end - zone.write_pointer
                        take = (
                            remaining
                            if remaining < zone_remaining
                            else zone_remaining
                        )
                        pba = zone.write_pointer
                        zone.write_pointer = pba + take
                        if pba == zone.start:
                            free -= 1
                        append_pba(base + pba)
                        append_len(take)
                        append_kind(_KIND_WRITE)
                        map_range(cursor, base + pba, take)
                        zone_id = zone.zone_id
                        live.add(zone_id, take)
                        entries[zone_id].append((base + pba, cursor, take))
                        zone_write_seq[zone_id] = write_seq
                        write_seq += 1
                        writable -= take
                        cursor += take
                        remaining -= take
                if too_large is not None:
                    break
                continue

            # -------------------------------- read run (plain-LS logic)
            if batch_map and run_ops >= _MIN_BATCH_READ_RUN:
                piece_pba, piece_len, _hole, offsets = amap.lookup_pieces_batch(
                    run_lba, run_len
                )
                counts = np.diff(offsets)
                reads += run_ops
                sectors_read += int(run_len.sum())
                read_fragments += int(offsets[-1])
                fragmented_reads += int(np.count_nonzero(counts > 1))
                if track_fragments:
                    values, repeats = np.unique(counts, return_counts=True)
                    for value, repeat in zip(values.tolist(), repeats.tolist()):
                        fragment_hist[value] = fragment_hist.get(value, 0) + repeat
                drain_scalar()
                chunks.append(
                    (piece_pba, piece_len, np.full(len(piece_pba), _KIND_READ, np.int8))
                )
                continue
            for req_lba, req_length in zip(run_lba.tolist(), run_len.tolist()):
                pieces = lookup_pieces(req_lba, req_length)
                fragments = len(pieces)
                reads += 1
                sectors_read += req_length
                read_fragments += fragments
                if fragments > 1:
                    fragmented_reads += 1
                if track_fragments:
                    fragment_hist[fragments] = fragment_hist.get(fragments, 0) + 1
                for pba, piece_length, _h in pieces:
                    append_pba(pba)
                    append_len(piece_length)
                    append_kind(_KIND_READ)

        if too_large is not None or bad_op is not None:
            # Error contract as elsewhere: the prefix (and, for the
            # too-large case, the violating op's host-written accounting)
            # is applied on the translator; engine counters stay unfolded
            # and the engine must be discarded.
            translator._write_seq = write_seq
            cleaning_stats.host_written_sectors += host_written
            if too_large is not None:
                raise ValueError(
                    f"write of {too_large} sectors too large for the "
                    "configured log"
                )
            raise ValueError(
                f"request end {bad_op[0] + bad_op[1]} crosses the "
                f"identity/log boundary {base}"
            )

        self._fold_scalars(
            reads, writes, sectors_read, sectors_written, read_fragments,
            fragmented_reads, 0, 0, 0, 0,
        )
        self.ops_applied += n
        drain_scalar()
        self._head_position = self._classify_access_stream(chunks, head_position)
        translator._write_seq = write_seq
        cleaning_stats.host_written_sectors += host_written
        translator._head.restore_position(self._head_position)

    def _fold_scalars(
        self, reads, writes, sectors_read, sectors_written, read_fragments,
        fragmented_reads, cache_hits, buffer_hits, defrag_rewrites,
        defrag_sectors,
    ) -> None:
        self._reads += reads
        self._writes += writes
        self._sectors_read += sectors_read
        self._sectors_written += sectors_written
        self._read_fragments += read_fragments
        self._fragmented_reads += fragmented_reads
        self._cache_hits += cache_hits
        self._buffer_hits += buffer_hits
        self._defrag_rewrites += defrag_rewrites
        self._defrag_sectors += defrag_sectors

    # ----------------------------------------------------------------- #
    # Results
    # ----------------------------------------------------------------- #

    def stats(self) -> SimStats:
        """Cumulative counters over everything fed so far."""
        stats = SimStats()
        stats.reads = self._reads
        stats.writes = self._writes
        stats.sectors_read = self._sectors_read
        stats.sectors_written = self._sectors_written
        stats.read_fragments = self._read_fragments
        stats.fragmented_reads = self._fragmented_reads
        stats.cache_fragment_hits = self._cache_hits
        stats.buffer_fragment_hits = self._buffer_hits
        stats.defrag_rewrites = self._defrag_rewrites
        stats.defrag_rewritten_sectors = self._defrag_sectors
        stats.read_seeks = self._read_seeks
        stats.write_seeks = self._write_seeks
        stats.defrag_write_seeks = self._defrag_write_seeks
        return stats

    def drain_distances(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return and clear the seek distances logged since the last drain.

        Returns ``(distances, distance_is_read)`` in access order.  The
        streaming service drains after every batch and folds the arrays
        into bounded incremental summaries
        (:class:`~repro.analysis.incremental.IncrementalDistances`), so a
        long-lived session never accumulates an unbounded distance log.
        Counters are unaffected; a later :meth:`result` only carries
        distances logged after the drain.
        """
        distances, dist_is_read = _concat_distance_chunks(
            self._distance_chunks, self._read_flag_chunks
        )
        self._distance_chunks = []
        self._read_flag_chunks = []
        return distances, dist_is_read

    def result(self, trace_name: Optional[str] = None) -> BatchRunResult:
        """Package the cumulative state as a :class:`BatchRunResult`.

        Equals the one-shot :func:`batch_replay` result for the
        concatenation of every batch fed (provided :meth:`drain_distances`
        was never called — draining moves distances out of the engine).
        """
        distances, dist_is_read = _concat_distance_chunks(
            self._distance_chunks, self._read_flag_chunks
        )
        return BatchRunResult(
            run_result=RunResult(
                trace_name=trace_name or self.trace_name,
                translator=self._translator.description,
                stats=self.stats(),
            ),
            distances=distances,
            distance_is_read=dist_is_read,
            translator=self._translator,
        )

    # ----------------------------------------------------------------- #
    # Serializable kernel state
    # ----------------------------------------------------------------- #

    def state_dict(self) -> dict:
        """The complete kernel state at the current batch boundary.

        Scalars are plain Python values; the translator's extent map and
        the undrained distance log are int64/bool numpy arrays — exactly
        the split :mod:`repro.util.npystore` persists.  Restoring the
        snapshot with :meth:`from_state` resumes the replay bit-identically.
        """
        distances, dist_is_read = _concat_distance_chunks(
            self._distance_chunks, self._read_flag_chunks
        )
        # Concatenating is also a normalization — keep the merged arrays
        # so repeated snapshots don't re-concatenate ever-growing lists.
        if distances.size:
            self._distance_chunks = [distances]
            self._read_flag_chunks = [dist_is_read]
        return {
            "trace_name": self.trace_name,
            "ops_applied": self.ops_applied,
            "track_fragments": self._track_fragments,
            "fragment_hist": sorted(self.fragment_hist.items()),
            "head_position": self._head_position,
            "counters": {
                "reads": self._reads,
                "writes": self._writes,
                "sectors_read": self._sectors_read,
                "sectors_written": self._sectors_written,
                "read_fragments": self._read_fragments,
                "fragmented_reads": self._fragmented_reads,
                "cache_hits": self._cache_hits,
                "buffer_hits": self._buffer_hits,
                "defrag_rewrites": self._defrag_rewrites,
                "defrag_sectors": self._defrag_sectors,
                "read_seeks": self._read_seeks,
                "write_seeks": self._write_seeks,
                "defrag_write_seeks": self._defrag_write_seeks,
            },
            "translator": self._translator.state_dict(),
            "distances": distances,
            "distance_is_read": dist_is_read,
        }

    @classmethod
    def from_state(cls, translator: Translator, state: dict) -> "IncrementalBatchReplay":
        """Rebuild an engine from :meth:`state_dict` output.

        ``translator`` must be freshly built from the same configuration
        as the snapshotted one (e.g. via
        :func:`~repro.core.config.build_translator_for_base`); its state
        is overwritten from the snapshot.
        """
        engine = cls(
            translator,
            trace_name=state["trace_name"],
            track_fragments=bool(state["track_fragments"]),
        )
        translator.load_state(state["translator"])
        engine._head_position = translator.head.position
        engine.ops_applied = int(state["ops_applied"])
        engine.fragment_hist = {
            int(k): int(v) for k, v in state["fragment_hist"]
        }
        counters = state["counters"]
        engine._reads = int(counters["reads"])
        engine._writes = int(counters["writes"])
        engine._sectors_read = int(counters["sectors_read"])
        engine._sectors_written = int(counters["sectors_written"])
        engine._read_fragments = int(counters["read_fragments"])
        engine._fragmented_reads = int(counters["fragmented_reads"])
        engine._cache_hits = int(counters["cache_hits"])
        engine._buffer_hits = int(counters["buffer_hits"])
        engine._defrag_rewrites = int(counters["defrag_rewrites"])
        engine._defrag_sectors = int(counters["defrag_sectors"])
        engine._read_seeks = int(counters["read_seeks"])
        engine._write_seeks = int(counters["write_seeks"])
        engine._defrag_write_seeks = int(counters["defrag_write_seeks"])
        distances = np.asarray(state["distances"], dtype=np.int64)
        dist_is_read = np.asarray(state["distance_is_read"], dtype=bool)
        if distances.size:
            engine._distance_chunks = [distances]
            engine._read_flag_chunks = [dist_is_read]
        return engine


def _concat_distance_chunks(
    distance_chunks: List[np.ndarray],
    read_flag_chunks: List[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    distances = (
        np.concatenate(distance_chunks)
        if distance_chunks
        else np.empty(0, dtype=np.int64)
    )
    dist_is_read = (
        np.concatenate(read_flag_chunks)
        if read_flag_chunks
        else np.empty(0, dtype=bool)
    )
    return distances, dist_is_read
