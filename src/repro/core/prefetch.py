"""Translation-aware look-ahead-behind prefetching (paper §IV-B, Algorithm 2).

Mis-ordered writes — writes whose LBAs sequentially follow a write issued
shortly *after* them — land physically close together but in the wrong
order in the log.  Reading them back in LBA order then costs missed
rotations (physical N after N+1).  Because the drive is already positioned
on the right track, reading a window *behind* and *ahead* of each requested
fragment is nearly free and captures the out-of-order neighbours.

Per Algorithm 2, prefetching activates only on fragmented reads (the
``FragmentedRead`` guard): unfragmented reads are served plainly, like a
conventional drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.prefetch_buffer import PrefetchBuffer
from repro.util.units import kib_to_sectors


@dataclass(frozen=True)
class PrefetchConfig:
    """Window sizes for look-ahead-behind prefetching.

    Attributes:
        behind_kib: Look-behind window (read before the fragment; paper's
            PreFetch step).  Defaults to the 256 KiB the paper uses as its
            mis-ordered-write horizon.
        ahead_kib: Look-ahead window (read after the fragment; paper's
            PostFetch step).
        buffer_mib: Drive buffer capacity holding recent windows (shipped
            drives carry 128–256 MB of DRAM, most of it media cache; a few
            MiB of it buffers prefetch windows).
    """

    behind_kib: float = 256.0
    ahead_kib: float = 256.0
    buffer_mib: float = 4.0

    def __post_init__(self) -> None:
        if self.behind_kib < 0 or self.ahead_kib < 0:
            raise ValueError("prefetch windows must be >= 0")
        if self.behind_kib == 0 and self.ahead_kib == 0:
            raise ValueError("at least one of behind_kib/ahead_kib must be > 0")
        if self.buffer_mib <= 0:
            raise ValueError(f"buffer_mib must be > 0, got {self.buffer_mib}")


class LookAheadBehindPrefetcher:
    """Prefetch-window bookkeeping for Algorithm 2.

    The translator asks :meth:`covers` before each fragment access (a hit
    is served from the buffer without moving the head) and calls
    :meth:`note_fragment_read` after each actual disk access so the
    surrounding window becomes available to later fragments.
    """

    def __init__(self, config: Optional[PrefetchConfig] = None) -> None:
        # A `config=PrefetchConfig()` default would be evaluated once at
        # def time and shared by every instance; build one per instance.
        config = PrefetchConfig() if config is None else config
        self._config = config
        self._behind = kib_to_sectors(config.behind_kib)
        self._ahead = kib_to_sectors(config.ahead_kib)
        self._buffer = PrefetchBuffer(
            capacity_sectors=kib_to_sectors(config.buffer_mib * 1024)
        )
        self.window_reads = 0

    @property
    def config(self) -> PrefetchConfig:
        return self._config

    @property
    def behind_sectors(self) -> int:
        return self._behind

    @property
    def ahead_sectors(self) -> int:
        return self._ahead

    def covers(self, pba: int, length: int) -> bool:
        """True if ``[pba, pba+length)`` sits inside a buffered window."""
        return self._buffer.covers(pba, length)

    def note_fragment_read(self, pba: int, length: int) -> None:
        """Record that the drive read a fragment at ``pba`` from the media.

        Buffers the look-behind + fragment + look-ahead window around it
        (PreFetch(fetchRegion); DoRead(pba); PostFetch(fetchRegion)).
        """
        self._buffer.add_window(pba - self._behind, pba + length + self._ahead)
        self.window_reads += 1

    def clear(self) -> None:
        """Drop all buffered windows (e.g. between replays)."""
        self._buffer.clear()

    def state_dict(self) -> dict:
        """JSON-serializable mutable state (checkpoint snapshot).

        Configuration is *not* included — restore builds a prefetcher from
        the same :class:`PrefetchConfig` and loads this state into it.
        """
        return {
            "windows": [list(w) for w in self._buffer.windows()],
            "window_reads": self.window_reads,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (replaces current state)."""
        self._buffer.restore_windows(state["windows"])
        self.window_reads = int(state["window_reads"])
