"""Hot/cold-separated log-structured translation (WOLF-style, paper §VI).

Wang & Hu's WOLF [12] — discussed in the paper's related work — separates
hot and cold data into distinct write regions to cut cleaning cost, while
going "to great lengths" to avoid the seek overhead of switching between
write frontiers.  This module implements the *naive* two-frontier layout
so that overhead is measurable: each switch between the hot and cold
frontiers is a write seek a single-frontier log would not pay, but hot
data clusters physically, which reduces the fragmentation that scans of
cold ranges see.

Classification is recency-based: an LBA block overwritten while still in
the recent-writes window is hot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.outcomes import AccessSource, IOOutcome, SegmentAccess
from repro.core.translators import Translator
from repro.extentmap.base import AddressMap
from repro.extentmap.extent_map import ExtentMap
from repro.trace.record import IORequest


class RecencyClassifier:
    """Flags writes whose first block was written within the last
    ``window`` distinct recent blocks (4 KiB granularity)."""

    def __init__(self, window: int = 4096, block_sectors: int = 8) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if block_sectors < 1:
            raise ValueError(f"block_sectors must be >= 1, got {block_sectors}")
        self._window = window
        self._block = block_sectors
        self._recent: "OrderedDict[int, None]" = OrderedDict()

    def classify_and_note(self, lba: int, length: int) -> bool:
        """Return True (hot) if the write re-touches recently written
        blocks, then record its blocks as recent."""
        first_block = lba // self._block
        last_block = (lba + length - 1) // self._block
        hot = any(
            block in self._recent for block in range(first_block, last_block + 1)
        )
        for block in range(first_block, last_block + 1):
            if block in self._recent:
                self._recent.move_to_end(block)
            else:
                self._recent[block] = None
        while len(self._recent) > self._window:
            self._recent.popitem(last=False)
        return hot


class MultiFrontierTranslator(Translator):
    """Log-structured translation with separate hot and cold frontiers.

    Args:
        frontier_base: Start of the cold log region (above the identity
            region, as in :class:`LogStructuredTranslator`).
        region_sectors: Size of each log region; the hot region starts at
            ``frontier_base + region_sectors``.
        classifier: Hot/cold write classifier (default recency-based).
    """

    def __init__(
        self,
        frontier_base: int,
        region_sectors: int,
        classifier: Optional[RecencyClassifier] = None,
        address_map: Optional[AddressMap] = None,
    ) -> None:
        super().__init__()
        if frontier_base < 0:
            raise ValueError(f"frontier_base must be >= 0, got {frontier_base}")
        if region_sectors <= 0:
            raise ValueError(f"region_sectors must be > 0, got {region_sectors}")
        self._map = address_map if address_map is not None else ExtentMap()
        self._region_sectors = region_sectors
        self._cold_base = frontier_base
        self._hot_base = frontier_base + region_sectors
        self._cold_frontier = self._cold_base
        self._hot_frontier = self._hot_base
        self._classifier = classifier or RecencyClassifier()
        self._last_frontier_was_hot: Optional[bool] = None
        self.frontier_switches = 0
        self.hot_writes = 0
        self.cold_writes = 0

    @property
    def description(self) -> str:
        return "LS+multifrontier"

    @property
    def cold_frontier(self) -> int:
        return self._cold_frontier

    @property
    def hot_frontier(self) -> int:
        return self._hot_frontier

    def submit(self, request: IORequest) -> IOOutcome:
        if request.is_write:
            return self._do_write(request)
        return self._do_read(request)

    def _do_write(self, request: IORequest) -> IOOutcome:
        hot = self._classifier.classify_and_note(request.lba, request.length)
        if hot:
            self.hot_writes += 1
            frontier = self._hot_frontier
            if self._hot_frontier + request.length > self._hot_base + self._region_sectors:
                raise ValueError("hot log region exhausted; enlarge region_sectors")
            self._hot_frontier += request.length
        else:
            self.cold_writes += 1
            frontier = self._cold_frontier
            if self._cold_frontier + request.length > self._cold_base + self._region_sectors:
                raise ValueError("cold log region exhausted; enlarge region_sectors")
            self._cold_frontier += request.length
        if self._last_frontier_was_hot is not None and self._last_frontier_was_hot != hot:
            self.frontier_switches += 1
        self._last_frontier_was_hot = hot

        event = self._head.access(frontier, request.length)
        self._map.map_range(request.lba, frontier, request.length)
        access = SegmentAccess(
            pba=frontier,
            length=request.length,
            source=AccessSource.DISK,
            seek=event.seek,
            distance=event.distance,
        )
        return IOOutcome(
            request=request,
            accesses=(access,),
            fragments=1,
            read_seeks=0,
            write_seeks=1 if event.seek else 0,
        )

    def _do_read(self, request: IORequest) -> IOOutcome:
        if request.end > self._cold_base:
            raise ValueError(
                f"read end {request.end} crosses the log base {self._cold_base}"
            )
        accesses = []
        read_seeks = 0
        segments = self._map.lookup(request.lba, request.length)
        for segment in segments:
            pba = segment.lba if segment.is_hole else segment.pba
            event = self._head.access(pba, segment.length)
            if event.seek:
                read_seeks += 1
            accesses.append(
                SegmentAccess(
                    pba=pba,
                    length=segment.length,
                    source=AccessSource.DISK,
                    seek=event.seek,
                    distance=event.distance,
                    hole=segment.is_hole,
                )
            )
        return IOOutcome(
            request=request,
            accesses=tuple(accesses),
            fragments=len(segments),
            read_seeks=read_seeks,
            write_seeks=0,
        )
