"""Hot/cold-separated log-structured translation (WOLF-style, paper §VI).

Wang & Hu's WOLF [12] — discussed in the paper's related work — separates
hot and cold data into distinct write regions to cut cleaning cost, while
going "to great lengths" to avoid the seek overhead of switching between
write frontiers.  This module implements the *naive* multi-frontier layout
so that overhead is measurable: each switch between frontiers is a write
seek a single-frontier log would not pay, but hot data clusters
physically, which reduces the fragmentation that scans of cold ranges see.

The translator is generalized to ``n_frontiers`` regions so that a
BIT-style classifier (segregating writes into K frontiers by predicted
invalidation time — PAPERS.md) slots in without touching the translator:
any classifier whose ``classify_and_note`` returns an index below
``n_frontiers`` works (``bool`` is an index for the stock two-frontier
hot/cold layout, where frontier 0 is cold and frontier 1 is hot).

Classification is recency-based by default: an LBA block overwritten
while still in the recent-writes window is hot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.core.outcomes import AccessSource, IOOutcome, SegmentAccess
from repro.core.translators import Translator
from repro.extentmap.base import AddressMap
from repro.extentmap.extent_map import ExtentMap
from repro.trace.record import IORequest

#: Frontier labels used in exhaustion errors; higher indices fall back to
#: a numeric label.  Index 0 is the cold region, index 1 the hot region.
_FRONTIER_NAMES = {0: "cold", 1: "hot"}


def _frontier_label(index: int) -> str:
    return _FRONTIER_NAMES.get(index, f"frontier-{index}")


class RecencyClassifier:
    """Flags writes whose first block was written within the last
    ``window`` distinct recent blocks (4 KiB granularity)."""

    def __init__(self, window: int = 4096, block_sectors: int = 8) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if block_sectors < 1:
            raise ValueError(f"block_sectors must be >= 1, got {block_sectors}")
        self._window = window
        self._block = block_sectors
        self._recent: "OrderedDict[int, None]" = OrderedDict()

    @property
    def window(self) -> int:
        return self._window

    @property
    def block_sectors(self) -> int:
        return self._block

    def classify_and_note(self, lba: int, length: int) -> bool:
        """Return True (hot) if the write re-touches recently written
        blocks, then record its blocks as recent."""
        first_block = lba // self._block
        last_block = (lba + length - 1) // self._block
        hot = any(
            block in self._recent for block in range(first_block, last_block + 1)
        )
        for block in range(first_block, last_block + 1):
            if block in self._recent:
                self._recent.move_to_end(block)
            else:
                self._recent[block] = None
        while len(self._recent) > self._window:
            self._recent.popitem(last=False)
        return hot

    def state_dict(self) -> dict:
        """Complete mutable state: the recent-block set, oldest first."""
        return {
            "window": self._window,
            "block_sectors": self._block,
            "recent": list(self._recent),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this classifier."""
        if int(state["window"]) != self._window or int(
            state["block_sectors"]
        ) != self._block:
            raise ValueError(
                "classifier mismatch restoring state: snapshot is "
                f"(window={state['window']}, block_sectors="
                f"{state['block_sectors']}), classifier is "
                f"(window={self._window}, block_sectors={self._block})"
            )
        self._recent = OrderedDict((int(block), None) for block in state["recent"])


class MultiFrontierTranslator(Translator):
    """Log-structured translation with separate per-class write frontiers.

    Args:
        frontier_base: Start of the log (above the identity region, as in
            :class:`LogStructuredTranslator`).  Frontier ``i`` owns
            ``[frontier_base + i*region_sectors,
            frontier_base + (i+1)*region_sectors)``.
        region_sectors: Size of each log region.
        classifier: Write classifier (default recency-based hot/cold);
            ``classify_and_note(lba, length)`` must return the target
            frontier index (a bool works for two frontiers).
        n_frontiers: Number of write frontiers (default 2: cold then hot).
    """

    def __init__(
        self,
        frontier_base: int,
        region_sectors: int,
        classifier: Optional[RecencyClassifier] = None,
        address_map: Optional[AddressMap] = None,
        n_frontiers: int = 2,
    ) -> None:
        super().__init__()
        if frontier_base < 0:
            raise ValueError(f"frontier_base must be >= 0, got {frontier_base}")
        if region_sectors <= 0:
            raise ValueError(f"region_sectors must be > 0, got {region_sectors}")
        if n_frontiers < 2:
            raise ValueError(f"n_frontiers must be >= 2, got {n_frontiers}")
        self._map = address_map if address_map is not None else ExtentMap()
        self._region_sectors = region_sectors
        self._frontier_base = frontier_base
        self._n_frontiers = n_frontiers
        self._frontiers: List[int] = [
            frontier_base + i * region_sectors for i in range(n_frontiers)
        ]
        self._classifier = classifier or RecencyClassifier()
        self._last_frontier: Optional[int] = None
        self.frontier_switches = 0
        self._frontier_writes: List[int] = [0] * n_frontiers

    @property
    def description(self) -> str:
        return "LS+multifrontier"

    @property
    def frontier_base(self) -> int:
        return self._frontier_base

    @property
    def region_sectors(self) -> int:
        return self._region_sectors

    @property
    def n_frontiers(self) -> int:
        return self._n_frontiers

    @property
    def address_map(self) -> AddressMap:
        return self._map

    @property
    def classifier(self) -> RecencyClassifier:
        return self._classifier

    @property
    def frontiers(self) -> Tuple[int, ...]:
        """Current write position of every frontier, index order."""
        return tuple(self._frontiers)

    @property
    def frontier_writes(self) -> Tuple[int, ...]:
        """Host writes routed to each frontier, index order."""
        return tuple(self._frontier_writes)

    @property
    def cold_frontier(self) -> int:
        return self._frontiers[0]

    @property
    def hot_frontier(self) -> int:
        return self._frontiers[1]

    @property
    def cold_writes(self) -> int:
        return self._frontier_writes[0]

    @property
    def hot_writes(self) -> int:
        return self._frontier_writes[1]

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Complete mutable state of the translator, serializable.

        Follows the :class:`LogStructuredTranslator` template: the extent
        map exports as three parallel int64 arrays, the classifier's
        recent-block set serializes oldest-first, everything else is plain
        scalars/lists.
        """
        if not hasattr(self._map, "extent_arrays"):
            raise TypeError(
                f"state_dict needs an address map with extent_arrays, "
                f"got {type(self._map).__name__}"
            )
        map_lba, map_pba, map_length = self._map.extent_arrays()
        return {
            "kind": "multi-frontier",
            "frontier_base": self._frontier_base,
            "region_sectors": self._region_sectors,
            "n_frontiers": self._n_frontiers,
            "frontiers": list(self._frontiers),
            "frontier_writes": list(self._frontier_writes),
            "frontier_switches": self.frontier_switches,
            "last_frontier": self._last_frontier,
            "head_position": self._head.position,
            "classifier": self._classifier.state_dict(),
            "map_lba": map_lba,
            "map_pba": map_pba,
            "map_length": map_length,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this translator.

        The translator must have been built with the same layout
        (``frontier_base``, ``region_sectors``, ``n_frontiers``) as the
        snapshotted one; a mismatch raises rather than corrupting the log.
        """
        if state.get("kind") != "multi-frontier":
            raise ValueError(
                f"not a multi-frontier translator state: {state.get('kind')!r}"
            )
        for name, ours in (
            ("frontier_base", self._frontier_base),
            ("region_sectors", self._region_sectors),
            ("n_frontiers", self._n_frontiers),
        ):
            if int(state[name]) != ours:
                raise ValueError(
                    f"layout mismatch restoring state: {name} is {ours} on "
                    f"the translator but {state[name]} in the snapshot"
                )
        self._map = type(self._map).from_extent_arrays(
            state["map_lba"], state["map_pba"], state["map_length"]
        )
        self._frontiers = [int(f) for f in state["frontiers"]]
        self._frontier_writes = [int(w) for w in state["frontier_writes"]]
        self.frontier_switches = int(state["frontier_switches"])
        last = state["last_frontier"]
        self._last_frontier = None if last is None else int(last)
        head = state["head_position"]
        self._head.restore_position(None if head is None else int(head))
        self._classifier.load_state(state["classifier"])

    # ------------------------------------------------------------------ #
    # Request service
    # ------------------------------------------------------------------ #

    def submit(self, request: IORequest) -> IOOutcome:
        if request.is_write:
            return self._do_write(request)
        return self._do_read(request)

    def _do_write(self, request: IORequest) -> IOOutcome:
        index = int(self._classifier.classify_and_note(request.lba, request.length))
        self._frontier_writes[index] += 1
        frontier = self._frontiers[index]
        region_end = self._frontier_base + (index + 1) * self._region_sectors
        if frontier + request.length > region_end:
            raise ValueError(
                f"{_frontier_label(index)} log region exhausted; "
                "enlarge region_sectors"
            )
        self._frontiers[index] += request.length
        if self._last_frontier is not None and self._last_frontier != index:
            self.frontier_switches += 1
        self._last_frontier = index

        event = self._head.access(frontier, request.length)
        self._map.map_range(request.lba, frontier, request.length)
        access = SegmentAccess(
            pba=frontier,
            length=request.length,
            source=AccessSource.DISK,
            seek=event.seek,
            distance=event.distance,
        )
        return IOOutcome(
            request=request,
            accesses=(access,),
            fragments=1,
            read_seeks=0,
            write_seeks=1 if event.seek else 0,
        )

    def _do_read(self, request: IORequest) -> IOOutcome:
        if request.end > self._frontier_base:
            raise ValueError(
                f"read end {request.end} crosses the log base {self._frontier_base}"
            )
        accesses = []
        read_seeks = 0
        segments = self._map.lookup(request.lba, request.length)
        for segment in segments:
            pba = segment.lba if segment.is_hole else segment.pba
            event = self._head.access(pba, segment.length)
            if event.seek:
                read_seeks += 1
            accesses.append(
                SegmentAccess(
                    pba=pba,
                    length=segment.length,
                    source=AccessSource.DISK,
                    seek=event.seek,
                    distance=event.distance,
                    hole=segment.is_hole,
                )
            )
        return IOOutcome(
            request=request,
            accesses=tuple(accesses),
            fragments=len(segments),
            read_seeks=read_seeks,
            write_seeks=0,
        )
