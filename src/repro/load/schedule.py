"""Arrival schedules: when each batch of a load run should be sent.

A schedule is just an array of send-time *offsets* (seconds from run
start, one per batch, non-decreasing).  The driver sleeps until each
offset before dispatching its batch; an all-zeros schedule means "as
fast as the daemon will take it", which is what throughput benchmarks
want, while paced schedules exercise the coalescer's deadline budget
and the queue-depth shedding path the way production traffic would:

* ``steady``  — constant rate.
* ``diurnal`` — sinusoidal rate modulation around the target (a day/night
  cycle compressed into ``period_s``); the offsets are the integral of
  the instantaneous rate, computed iteratively.
* ``burst``   — on/off square wave: bursts at ``amplitude``× the target
  rate separated by idle gaps, mean rate preserved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

KINDS = ("steady", "diurnal", "burst")


def arrival_offsets(
    n_batches: int,
    batch_ops: int,
    target_ops_per_s: Optional[float] = None,
    kind: str = "steady",
    period_s: float = 10.0,
    amplitude: float = 0.8,
    duty: float = 0.25,
) -> np.ndarray:
    """Send-time offsets (seconds, float64) for ``n_batches`` batches.

    ``target_ops_per_s=None`` (or <=0) returns zeros — unthrottled.
    ``amplitude`` is the modulation depth for ``diurnal`` (0..1, peak rate
    is ``(1+amplitude)×`` target) and the burst multiplier ceiling for
    ``burst``; ``duty`` is the burst on-fraction of each period.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown schedule kind {kind!r}; valid: {KINDS}")
    if n_batches <= 0:
        return np.zeros(0, dtype=np.float64)
    if target_ops_per_s is None or target_ops_per_s <= 0:
        return np.zeros(n_batches, dtype=np.float64)

    base_gap = batch_ops / float(target_ops_per_s)
    if kind == "steady":
        return np.arange(n_batches, dtype=np.float64) * base_gap

    offsets = np.empty(n_batches, dtype=np.float64)
    t = 0.0
    if kind == "diurnal":
        amplitude = min(max(float(amplitude), 0.0), 0.95)
        for i in range(n_batches):
            offsets[i] = t
            # Instantaneous rate modulated by where *this* send falls in
            # the period; integrating step-by-step keeps gaps positive.
            phase = 2.0 * np.pi * (t / period_s)
            rate = target_ops_per_s * (1.0 + amplitude * np.sin(phase))
            t += batch_ops / rate
        return offsets

    # burst: within each period, the first `duty` fraction fires at the
    # burst rate; the rest of the period is silent.  Mean rate over a
    # full period equals the target.
    duty = min(max(float(duty), 0.05), 1.0)
    burst_rate = target_ops_per_s / duty
    burst_gap = batch_ops / burst_rate
    for i in range(n_batches):
        offsets[i] = t
        t += burst_gap
        phase = (t % period_s) / period_s
        if phase >= duty:  # burst window exhausted: jump to next period
            t = (np.floor(t / period_s) + 1.0) * period_s
    return offsets
