"""Heavy-traffic load harness for the streaming replay service.

The ROADMAP's north star is a service that "serves heavy traffic from
millions of users … as fast as the hardware allows"; this package is the
instrument that proves (or falsifies) the claim with numbers:

* :mod:`repro.load.mixture` — synthesizes multi-tenant op streams as
  weighted mixtures of the Table-I workload archetypes, riffled so hot
  overwrites, scans, and replays interleave the way mixed traffic does.
* :mod:`repro.load.schedule` — arrival schedules (steady, diurnal
  sinusoid, on/off bursts) that pace batches at a target ops/s.
* :mod:`repro.load.driver` — drives a live daemon with concurrent
  per-tenant apply streams plus live queries, and reports sustained
  throughput, p50/p99 apply and query latency, and peak RSS.

Entry point: ``repro load`` (see :mod:`repro.__main__`), or
:func:`repro.load.driver.run_load` in-process.
"""

from repro.load.driver import LoadReport, TenantLoad, run_load
from repro.load.mixture import build_mixture
from repro.load.schedule import arrival_offsets

__all__ = [
    "LoadReport",
    "TenantLoad",
    "arrival_offsets",
    "build_mixture",
    "run_load",
]
