"""Multi-tenant load driver: sustained throughput and tail latency.

Given a running daemon (see :class:`repro.service.harness.DaemonThread`
or ``repro serve``), :func:`run_load` streams one pipelined connection
per tenant — each a deterministic Table-I mixture, paced by an arrival
schedule — while a sidecar thread issues live ``stats`` queries against
the same sessions.  It measures what a serving benchmark actually needs:

* **Sustained apply throughput** (acknowledged ops / wall seconds, all
  tenants combined).
* **Apply latency** per batch, send→ack, including coalesced group acks
  (p50/p99).  Group commits ack several batches with one worker round
  trip; the deque-matching below credits every batch in the group.
* **Live query latency** p50/p99 — queries share the worker with apply
  traffic, so this captures head-of-line blocking from big groups.
* **Peak RSS** of the harness plus reaped workers
  (:func:`repro.util.rss.peak_rss_mib`).

Runs of 10–100M ops stay cheap because each tenant's op columns are
built once at a capped size and *cycled*: batch ``i`` reads a wrapped
window into the base arrays, so memory is O(base) while the daemon sees
the full op count.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import LS, TechniqueConfig
from repro.load.mixture import PRESET_MIXTURES, build_mixture
from repro.load.schedule import arrival_offsets
from repro.service.client import ReplayClient
from repro.util.rss import peak_rss_mib

#: Base-column cap: mixtures are built at most this long and cycled.
BASE_OPS_CAP = 2_000_000


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's share of a load run."""

    name: str
    components: Sequence[Tuple[str, float]] = PRESET_MIXTURES["user_heavy"]
    config: TechniqueConfig = LS
    total_ops: int = 1_000_000
    batch_ops: int = 2_000
    wire: str = "bin"  # "bin" (pipelined, coalesced) or "json" (sequential)
    window: int = 32
    seed: int = 0


@dataclass
class LoadReport:
    """What a load run measured; ``to_dict`` feeds JSON reports."""

    ops: int = 0
    seconds: float = 0.0
    ops_per_s: float = 0.0
    apply_p50_ms: float = 0.0
    apply_p99_ms: float = 0.0
    query_p50_ms: float = 0.0
    query_p99_ms: float = 0.0
    queries: int = 0
    resyncs: int = 0
    duplicate_acks: int = 0
    peak_rss_mib: float = 0.0
    per_tenant: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "ops": self.ops,
            "seconds": round(self.seconds, 4),
            "ops_per_s": round(self.ops_per_s, 1),
            "apply_p50_ms": round(self.apply_p50_ms, 4),
            "apply_p99_ms": round(self.apply_p99_ms, 4),
            "query_p50_ms": round(self.query_p50_ms, 4),
            "query_p99_ms": round(self.query_p99_ms, 4),
            "queries": self.queries,
            "resyncs": self.resyncs,
            "duplicate_acks": self.duplicate_acks,
            "peak_rss_mib": round(self.peak_rss_mib, 1),
            "per_tenant": self.per_tenant,
        }


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def _batch_slice(
    columns: Tuple[np.ndarray, np.ndarray, np.ndarray], start: int, take: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``take`` ops beginning at ``start mod len`` — wraps around the base."""
    is_read, lba, length = columns
    n = len(lba)
    start %= n
    if start + take <= n:
        return is_read[start : start + take], lba[start : start + take], length[
            start : start + take
        ]
    head = n - start
    return (
        np.concatenate([is_read[start:], is_read[: take - head]]),
        np.concatenate([lba[start:], lba[: take - head]]),
        np.concatenate([length[start:], length[: take - head]]),
    )


class _TenantRun:
    """State one tenant thread accumulates during a run."""

    def __init__(self, spec: TenantLoad) -> None:
        self.spec = spec
        self.latencies_ms: List[float] = []
        self.resyncs = 0
        self.duplicate_acks = 0
        self.ops_applied = 0
        self.prepared = threading.Event()
        self.opened = threading.Event()
        self.error: Optional[BaseException] = None


def _run_tenant(
    run: _TenantRun,
    host: str,
    port: int,
    offsets: np.ndarray,
    base_ops_cap: int,
    go: threading.Event,
) -> None:
    spec = run.spec
    # Everything that is harness/startup cost — synthesizing the op
    # columns, connecting, opening the session (which spawns the worker)
    # — happens *before* the measured window opens: "sustained
    # throughput" means steady state, not generator and fork overhead.
    columns_and_cap = build_mixture(
        spec.components, min(spec.total_ops, base_ops_cap), seed=spec.seed
    )
    columns, capacity = columns_and_cap[:3], columns_and_cap[3]
    run.prepared.set()
    n_batches = len(offsets)
    with ReplayClient(host, port, spec.name, wire=spec.wire) as client:
        client.open(spec.config, capacity)
        run.opened.set()
        go.wait()
        base_seq = client.next_seq
        t0 = time.perf_counter()
        if spec.wire == "bin":
            pending: deque = deque()  # (idx, send_time), idx ascending

            def batches():
                for i in range(n_batches):
                    wait = t0 + offsets[i] - time.perf_counter()
                    if wait > 0:
                        time.sleep(wait)
                    take = min(spec.batch_ops, spec.total_ops - i * spec.batch_ops)
                    batch = _batch_slice(columns, i * spec.batch_ops, take)
                    pending.append((i, time.perf_counter()))
                    yield batch

            def on_ack(response: dict) -> None:
                # One group-commit ack advances applied_seq over every
                # batch in the group; credit each with the same ack time.
                now = time.perf_counter()
                applied_idx = int(
                    response.get("applied_seq", response["seq"])
                ) - base_seq
                while pending and pending[0][0] <= applied_idx:
                    _, sent = pending.popleft()
                    run.latencies_ms.append((now - sent) * 1e3)

            result = client.apply_stream(
                batches(), window=spec.window, on_ack=on_ack
            )
            run.resyncs = int(result["resyncs"])
            run.duplicate_acks = int(result["duplicate_acks"])
        else:
            for i in range(n_batches):
                wait = t0 + offsets[i] - time.perf_counter()
                if wait > 0:
                    time.sleep(wait)
                take = min(spec.batch_ops, spec.total_ops - i * spec.batch_ops)
                batch = _batch_slice(columns, i * spec.batch_ops, take)
                sent = time.perf_counter()
                response = client.apply_with_retry(*batch)
                run.latencies_ms.append((time.perf_counter() - sent) * 1e3)
                if response.get("duplicate"):
                    run.duplicate_acks += 1
        run.ops_applied = spec.total_ops


def _run_queries(
    runs: List[_TenantRun],
    host: str,
    port: int,
    interval_s: float,
    stop: threading.Event,
    latencies_ms: List[float],
    errors: List[BaseException],
) -> None:
    clients: Dict[str, ReplayClient] = {}
    try:
        turn = 0
        while not stop.wait(interval_s):
            run = runs[turn % len(runs)]
            turn += 1
            if not run.opened.is_set():
                continue
            name = run.spec.name
            if name not in clients:
                clients[name] = ReplayClient(host, port, name).connect()
            sent = time.perf_counter()
            clients[name].query("stats")
            latencies_ms.append((time.perf_counter() - sent) * 1e3)
    except (ConnectionError, OSError):
        pass  # daemon went away under us at shutdown — apply side decides
    except BaseException as exc:  # pragma: no cover - surfaced by caller
        errors.append(exc)
    finally:
        for client in clients.values():
            client.close_socket()


def run_load(
    host: str,
    port: int,
    tenants: Sequence[TenantLoad],
    target_ops_per_s: Optional[float] = None,
    schedule: str = "steady",
    period_s: float = 10.0,
    amplitude: float = 0.8,
    duty: float = 0.25,
    query_interval_s: float = 0.05,
    live_queries: bool = True,
    base_ops_cap: int = BASE_OPS_CAP,
) -> LoadReport:
    """Drive a running daemon with ``tenants``; see the module docs.

    ``target_ops_per_s`` is the *combined* rate, split evenly across
    tenants; ``None`` means unthrottled (throughput-benchmark mode).
    Raises the first tenant-thread exception, if any.
    """
    if not tenants:
        raise ValueError("need at least one TenantLoad")
    runs = [_TenantRun(spec) for spec in tenants]
    per_tenant_rate = (
        target_ops_per_s / len(tenants) if target_ops_per_s else None
    )
    go = threading.Event()
    threads = []
    for run in runs:
        n_batches = math.ceil(run.spec.total_ops / run.spec.batch_ops)
        offsets = arrival_offsets(
            n_batches,
            run.spec.batch_ops,
            per_tenant_rate,
            kind=schedule,
            period_s=period_s,
            amplitude=amplitude,
            duty=duty,
        )

        def target(run=run, offsets=offsets):
            try:
                _run_tenant(run, host, port, offsets, base_ops_cap, go)
            except BaseException as exc:
                run.error = exc
                run.prepared.set()
                run.opened.set()

        threads.append(threading.Thread(target=target, daemon=True))

    query_latencies: List[float] = []
    query_errors: List[BaseException] = []
    stop_queries = threading.Event()
    query_thread = None
    if live_queries:
        query_thread = threading.Thread(
            target=_run_queries,
            args=(runs, host, port, query_interval_s, stop_queries,
                  query_latencies, query_errors),
            daemon=True,
        )

    for thread in threads:
        thread.start()
    for run in runs:
        run.opened.wait()
    t_start = time.perf_counter()
    go.set()
    if query_thread is not None:
        query_thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - t_start
    stop_queries.set()
    if query_thread is not None:
        query_thread.join(timeout=30)

    for run in runs:
        if run.error is not None:
            raise run.error
    if query_errors:
        raise query_errors[0]

    apply_latencies = [ms for run in runs for ms in run.latencies_ms]
    report = LoadReport(
        ops=sum(run.ops_applied for run in runs),
        seconds=seconds,
        apply_p50_ms=_percentile(apply_latencies, 50),
        apply_p99_ms=_percentile(apply_latencies, 99),
        query_p50_ms=_percentile(query_latencies, 50),
        query_p99_ms=_percentile(query_latencies, 99),
        queries=len(query_latencies),
        resyncs=sum(run.resyncs for run in runs),
        duplicate_acks=sum(run.duplicate_acks for run in runs),
        peak_rss_mib=peak_rss_mib(),
    )
    report.ops_per_s = report.ops / seconds if seconds > 0 else 0.0
    for run in runs:
        report.per_tenant[run.spec.name] = {
            "ops": run.ops_applied,
            "wire": run.spec.wire,
            "batches": len(run.latencies_ms),
            "apply_p50_ms": round(_percentile(run.latencies_ms, 50), 4),
            "apply_p99_ms": round(_percentile(run.latencies_ms, 99), 4),
            "resyncs": run.resyncs,
            "duplicate_acks": run.duplicate_acks,
        }
    return report
