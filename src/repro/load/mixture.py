"""Weighted Table-I workload mixtures for the load harness.

A serving tenant is rarely one archetype: a home directory's rename storm
rides on top of a source tree's compile reads and a media volume's long
sequential scans.  :func:`build_mixture` composes such a stream from the
repo's deterministic Table-I generators — each component is generated at
the scale its weight demands, chopped into small runs, and the runs are
riffle-interleaved by position (the same idiom
``repro.workloads.generator`` uses for phase schedules), so the mixture
alternates between archetypes at a granularity the daemon's coalescer
and the translator's cleaning policy both actually feel.

Everything is derived from ``(components, seed, total_ops)`` — two calls
with the same arguments produce identical columns, which is what lets
the differential tests replay a load run offline.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.workloads.generator import generate_workload
from repro.workloads.table1 import get_spec

#: Interleave granularity: ops per run when riffling components together.
RUN_OPS = 2048


def _component_columns(
    name: str, ops: int, seed: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Columns for one archetype sized to ~`ops` operations."""
    spec = get_spec(name)
    scale = max(ops / max(1, spec.total_ops), 0.001)
    trace = generate_workload(spec, seed=seed, scale=scale)
    is_read, lba, length = trace.as_arrays()
    return is_read[:ops], lba[:ops], length[:ops], int(trace.max_end)


def build_mixture(
    components: Sequence[Tuple[str, float]],
    total_ops: int,
    seed: int = 0,
    run_ops: int = RUN_OPS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Compose a deterministic mixture stream from Table-I archetypes.

    ``components`` is a sequence of ``(workload_name, weight)``; weights
    are normalized, each component contributes ``weight * total_ops``
    operations, and the streams are riffled together in ``run_ops``-sized
    runs.  Returns ``(is_read, lba, length, capacity)``.

    Each component occupies its **own region** of the tenant's LBA space
    (offsets stacked back to back, capacity = the sum) — the way a real
    volume hosts several working sets side by side.  Overlaying unrelated
    workloads onto the *same* sectors would shred every component's
    locality and benchmark extent-map pathology instead of the traffic
    mix.
    """
    if not components:
        raise ValueError("mixture needs at least one component")
    if total_ops <= 0:
        raise ValueError(f"total_ops must be positive, got {total_ops}")
    weights = np.asarray([w for _, w in components], dtype=np.float64)
    if (weights <= 0).any():
        raise ValueError("component weights must be positive")
    weights = weights / weights.sum()

    columns: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    capacity = 0
    for (name, _), fraction in zip(components, weights):
        ops = max(int(round(fraction * total_ops)), 1)
        is_read, lba, length, max_end = _component_columns(name, ops, seed)
        columns.append((is_read, lba + capacity, length))
        capacity += max_end

    if len(columns) == 1:
        is_read, lba, length = columns[0]
        return is_read, lba, length, capacity

    # Riffle by run position: split each component into run_ops-sized
    # runs, then emit run 0 of every component, run 1 of every component,
    # and so on — components that run out simply drop out of later rounds.
    run_ops = max(1, int(run_ops))
    rounds = max(int(np.ceil(len(c[1]) / run_ops)) for c in columns)
    pieces: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for round_idx in range(rounds):
        start = round_idx * run_ops
        for is_read, lba, length in columns:
            if start < len(lba):
                stop = min(start + run_ops, len(lba))
                pieces.append((is_read[start:stop], lba[start:stop], length[start:stop]))
    is_read = np.concatenate([p[0] for p in pieces])
    lba = np.concatenate([p[1] for p in pieces])
    length = np.concatenate([p[2] for p in pieces])
    return is_read, lba, length, capacity


#: Named mixtures used by ``repro load`` and the serving benchmark.
#: Weights echo Table I's population: user/home churn dominates, with
#: compile-read and media-scan traffic in supporting roles.
PRESET_MIXTURES = {
    "user_heavy": (("usr_0", 0.6), ("src2_2", 0.25), ("hm_1", 0.15)),
    "media_scan": (("mds_0", 0.5), ("web_0", 0.3), ("usr_0", 0.2)),
    "compile": (("src2_2", 0.55), ("hm_1", 0.3), ("wdev_0", 0.15)),
    # Zipf-hot read service (the paper's Fig. 7 subject plus usr_1's
    # read-dominant churn): the replay engine is fastest here, which
    # makes this the mixture that exposes the *data plane* — wire
    # format, fsync discipline, protocol overhead — rather than
    # translator work.  bench_serving.py uses it for exactly that
    # reason.
    "read_hot": (("hm_1", 0.8), ("usr_1", 0.2)),
}


def preset(name: str) -> Sequence[Tuple[str, float]]:
    """Look up a named mixture; raises KeyError with the valid names."""
    try:
        return PRESET_MIXTURES[name]
    except KeyError:
        raise KeyError(
            f"unknown mixture {name!r}; valid: {sorted(PRESET_MIXTURES)}"
        ) from None
