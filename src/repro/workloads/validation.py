"""Validate that a workload archetype reproduces its paper behaviour.

The Table-I registry records the paper's qualitative expectations per
workload (:class:`~repro.workloads.table1.Expectations`); this module
replays an archetype under the Fig. 11 configurations and checks each
expectation, returning structured results.  It backs the integration test
suite and gives anyone tuning a spec (or re-calibrating after generator
changes) a one-call report::

    from repro.workloads.validation import validate_archetype
    for check in validate_archetype("w91").checks:
        print(check.name, check.passed, check.detail)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import NOLS, PAPER_CONFIGS, build_translator
from repro.core.metrics import seek_amplification
from repro.core.simulator import replay
from repro.trace.trace import Trace
from repro.workloads.generator import generate_workload
from repro.workloads.table1 import TABLE1, Expectations

# Calibrated thresholds shared with tests/integration/test_paper_shapes.py.
# The marginal bound is the synthetic substitution's structural floor, not
# the paper's "<1 %": look-ahead always removes the seek back from a log
# fragment into the following identity-region hole, so every archetype
# gains 10-45 % from prefetching (EXPERIMENTS.md, deviations #4).  The
# bands still separate the paper's groups at their extremes.
PREFETCH_LARGE_MIN_GAIN = 1.30
PREFETCH_MARGINAL_MAX_GAIN = 1.50
DEFRAG_HURT_MIN_RATIO = 1.02
CACHE_NEAR_BEST_SLACK = 1.25
CACHE_NEAR_BEST_ABS = 0.02
NEVER_HURTS_TOLERANCE = 1.02


@dataclass(frozen=True)
class Check:
    """One expectation verdict."""

    name: str
    passed: bool
    detail: str


@dataclass
class ValidationReport:
    """All verdicts for one archetype, plus the measured SAFs."""

    workload: str
    saf: Dict[str, float]
    checks: List[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]


def measure_saf(trace: Trace) -> Dict[str, float]:
    """Total SAF under each Fig. 11 configuration for ``trace``."""
    baseline = replay(trace, build_translator(trace, NOLS)).stats
    return {
        config.name: seek_amplification(
            replay(trace, build_translator(trace, config)).stats, baseline
        ).total
        for config in PAPER_CONFIGS
    }


def check_expectations(
    workload: str, saf: Dict[str, float], expect: Expectations
) -> ValidationReport:
    """Evaluate the paper's expectations against measured SAFs."""
    report = ValidationReport(workload=workload, saf=dict(saf))
    ls = saf["LS"]

    amplifies = ls > 1.0
    report.checks.append(
        Check(
            "ls_amplifies",
            amplifies == expect.ls_amplifies,
            f"LS SAF {ls:.2f}; paper expects SAF {'>' if expect.ls_amplifies else '<='} 1",
        )
    )

    for technique in ("LS+prefetch", "LS+cache"):
        report.checks.append(
            Check(
                f"{technique}_never_hurts",
                saf[technique] <= ls * NEVER_HURTS_TOLERANCE,
                f"{technique} {saf[technique]:.2f} vs LS {ls:.2f}",
            )
        )

    best = min(saf.values())
    cache_near_best = saf["LS+cache"] <= best * CACHE_NEAR_BEST_SLACK + CACHE_NEAR_BEST_ABS
    if expect.cache_is_best:
        report.checks.append(
            Check(
                "cache_is_best",
                cache_near_best,
                f"cache {saf['LS+cache']:.2f} vs best {best:.2f}",
            )
        )
    else:
        others_best = min(v for k, v in saf.items() if k != "LS+cache")
        report.checks.append(
            Check(
                "cache_not_best",
                saf["LS+cache"] > others_best,
                f"cache {saf['LS+cache']:.2f} vs best-other {others_best:.2f}",
            )
        )

    if expect.defrag_hurts:
        report.checks.append(
            Check(
                "defrag_hurts",
                saf["LS+defrag"] > ls * DEFRAG_HURT_MIN_RATIO,
                f"defrag {saf['LS+defrag']:.2f} vs LS {ls:.2f}",
            )
        )

    if expect.prefetch_gain_large is not None:
        gain = ls / saf["LS+prefetch"] if saf["LS+prefetch"] else float("inf")
        if expect.prefetch_gain_large:
            passed = gain >= PREFETCH_LARGE_MIN_GAIN
            bound = f">= {PREFETCH_LARGE_MIN_GAIN}"
        else:
            passed = gain <= PREFETCH_MARGINAL_MAX_GAIN
            bound = f"<= {PREFETCH_MARGINAL_MAX_GAIN}"
        report.checks.append(
            Check("prefetch_gain", passed, f"gain {gain:.2f} (expected {bound})")
        )

    return report


def validate_archetype(
    name: str,
    seed: int = 42,
    scale: float = 1.0,
    trace: Optional[Trace] = None,
) -> ValidationReport:
    """Replay one Table-I archetype and check its paper expectations.

    Args:
        name: Table-I workload name.
        seed, scale: Generation parameters (defaults match the calibrated
            registry and test suite).
        trace: Replay this trace instead of generating one (used when the
            caller already has it, e.g. the integration tests).
    """
    entry = TABLE1[name]
    if trace is None:
        trace = generate_workload(entry.spec, seed=seed, scale=scale)
    return check_expectations(name, measure_saf(trace), entry.expect)
