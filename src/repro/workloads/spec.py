"""Workload specification: the knobs that determine seek behaviour.

DESIGN.md §2 argues that every result in the paper is a function of a small
set of trace properties; :class:`WorkloadSpec` makes each an explicit
parameter:

* **write intensity** (op counts + ``read_fraction``) — drives how much
  log-structuring saves on write seeks (§V's explanation of MSR SAF < 1);
* **write structure** (:class:`WriteMix`) — random overwrites create
  fragmentation; mis-ordered runs create the missed-rotation pattern
  prefetching targets (Fig. 7/8);
* **read structure** (:class:`ReadMix`) — sequential scans over fragmented
  data create read-seek amplification (§III's thought experiment);
  temporal-replay reads make a workload log-*friendly*;
* **re-access behaviour** (``scan`` volume vs. hot-region size, Zipf
  skew) — decides whether defragmentation pays off and whether a 64 MB
  selective cache captures the popular fragments (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


def _check_weights(name: str, weights: Tuple[float, ...]) -> None:
    if any(w < 0 for w in weights):
        raise ValueError(f"{name} weights must be >= 0, got {weights}")
    if sum(weights) <= 0:
        raise ValueError(f"{name} weights must not all be zero")


@dataclass(frozen=True)
class WriteMix:
    """How write operations are structured.

    Attributes:
        random: Uniform random writes across the whole working set
            (seek-heavy on a conventional drive → log-friendly).
        hot_overwrite: Small random overwrites inside the hot region,
            issued in spatial clusters (the fragmentation generator).
        sequential: Ascending sequential append streams.
        misordered: Sequential runs emitted in locally reversed chunks —
            the Fig. 7 pattern that produces mis-ordered writes.
    """

    random: float = 1.0
    hot_overwrite: float = 0.0
    sequential: float = 0.0
    misordered: float = 0.0

    def __post_init__(self) -> None:
        _check_weights("WriteMix", self.as_tuple())

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.random, self.hot_overwrite, self.sequential, self.misordered)


@dataclass(frozen=True)
class ReadMix:
    """How read operations are structured.

    Attributes:
        scan: Sequential passes over the hot region (the log-sensitive
            pattern: ordered reads of temporally scattered data).
        random: Uniform random reads across the working set.
        hot: Zipf-skewed re-reads of previously overwritten extents
            (the fragment-popularity pattern selective caching exploits).
        replay: Read-back of recently written data in write order
            (the log-friendly pattern: temporal read order mimics writes).
    """

    scan: float = 0.0
    random: float = 1.0
    hot: float = 0.0
    replay: float = 0.0

    def __post_init__(self) -> None:
        _check_weights("ReadMix", self.as_tuple())

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.scan, self.random, self.hot, self.replay)


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete recipe for one synthetic workload archetype.

    Attributes:
        name: Workload id (matches the paper's Table I row).
        family: ``"msr"`` or ``"cloudphysics"``.
        total_ops: Operations to generate at scale 1.0.
        read_fraction: Fraction of operations that are reads.
        mean_read_kib / mean_write_kib: Mean request sizes.
        working_set_mib: Addressable span of the workload.
        hot_mib: Size of the hot (database/file) region inside it.
        write_mix / read_mix: Operation structure weights.
        zipf_alpha: Skew of hot re-reads (higher = more cacheable).
        hot_targets_max: Population of distinct hot extents eligible for
            re-reads; with low ``zipf_alpha`` and a large population the
            re-read working set exceeds a small cache (usr_1 / src2_2).
        overwrite_cluster: Hot overwrites per spatial cluster (>= 2 makes
            a scan's fragments physically adjacent in the log, which
            look-ahead-behind prefetching exploits; 1 scatters them).
        cluster_span_kib: LBA span of one overwrite cluster.
        misorder_group: Writes per reversed chunk in mis-ordered runs.
        interleave_writes: If True, the patterns of a write burst are
            interleaved evenly rather than emitted as contiguous
            sub-bursts.  Interleaving spaces hot-region overwrites apart in
            the log (other patterns' writes land between them), so a later
            scan's fragments are physically distant and look-ahead-behind
            prefetching gains little — the usr_1 / hm_1 / w55 / w33 shape.
        misorder_in_hot: Whether mis-ordered runs sweep the hot region
            (True: later scans read them back, so prefetching pays — the
            w84/w95/w91 shape) or a cold region (False: the Fig. 7 hm_1
            pattern exists in the write stream but reads rarely touch it,
            so prefetching gains little).
        phases: Write-burst/read-burst cycles (the Fig. 3 temporal beat).
        write_phase_decay: Geometric decay of per-phase write volume
            (1.0 = even; 0.3 = most writes land in the first phases, the
            archival accumulate-then-read shape).  Front-loading keeps the
            fragment population stable across later read phases, which is
            what lets a small selective cache reach very high hit rates
            (the w91 shape).
        replay_window: How many recent writes a replay read covers.
    """

    name: str
    family: str
    total_ops: int
    read_fraction: float
    mean_read_kib: float
    mean_write_kib: float
    working_set_mib: int
    hot_mib: int
    write_mix: WriteMix = field(default_factory=WriteMix)
    read_mix: ReadMix = field(default_factory=ReadMix)
    zipf_alpha: float = 1.1
    hot_targets_max: int = 2048
    overwrite_cluster: int = 1
    cluster_span_kib: float = 512.0
    misorder_group: int = 4
    interleave_writes: bool = False
    misorder_in_hot: bool = True
    phases: int = 8
    write_phase_decay: float = 1.0
    replay_window: int = 32

    def __post_init__(self) -> None:
        if self.family not in ("msr", "cloudphysics"):
            raise ValueError(f"family must be msr|cloudphysics, got {self.family!r}")
        if self.total_ops <= 0:
            raise ValueError(f"total_ops must be > 0, got {self.total_ops}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0,1], got {self.read_fraction}")
        if self.mean_read_kib <= 0 or self.mean_write_kib <= 0:
            raise ValueError("mean request sizes must be > 0")
        if self.hot_mib <= 0 or self.working_set_mib <= 0:
            raise ValueError("region sizes must be > 0")
        if self.hot_mib > self.working_set_mib:
            raise ValueError(
                f"hot_mib {self.hot_mib} exceeds working_set_mib {self.working_set_mib}"
            )
        if self.zipf_alpha < 0:
            raise ValueError(f"zipf_alpha must be >= 0, got {self.zipf_alpha}")
        if self.hot_targets_max <= 0:
            raise ValueError(f"hot_targets_max must be > 0, got {self.hot_targets_max}")
        if self.overwrite_cluster < 1:
            raise ValueError(f"overwrite_cluster must be >= 1, got {self.overwrite_cluster}")
        if self.cluster_span_kib <= 0:
            raise ValueError(f"cluster_span_kib must be > 0, got {self.cluster_span_kib}")
        if self.misorder_group < 2:
            raise ValueError(f"misorder_group must be >= 2, got {self.misorder_group}")
        if self.phases < 1:
            raise ValueError(f"phases must be >= 1, got {self.phases}")
        if not 0.0 < self.write_phase_decay <= 1.0:
            raise ValueError(
                f"write_phase_decay must be in (0, 1], got {self.write_phase_decay}"
            )
        if self.replay_window < 1:
            raise ValueError(f"replay_window must be >= 1, got {self.replay_window}")

    @property
    def n_reads(self) -> int:
        return round(self.total_ops * self.read_fraction)

    @property
    def n_writes(self) -> int:
        return self.total_ops - self.n_reads
