"""The paper's Table I: workload characteristics and calibrated archetypes.

Each entry couples the row the paper reports (op counts, volumes, mean
write size, guest OS) with:

* a :class:`~repro.workloads.spec.WorkloadSpec` whose synthetic archetype
  reproduces the workload's qualitative seek behaviour at a tractable
  scale (DESIGN.md §2 documents the substitution), and
* the paper's qualitative observations about the workload
  (:class:`Expectations`), which the shape tests assert against.

Scale note: op counts are scaled down ~100–1000× from the paper's traces
(whose replays took the authors hours); ``synthesize_workload(..., scale=)``
scales them back up when more fidelity is wanted.

Table I erratum: the paper's read-volume column repeats 399.6 / 115.7 /
2353 GB across the w64/w36, w93/w89 and w20/w106 pairs — an evident copy
artifact.  ``PaperRow`` keeps the printed values verbatim; the specs use
self-consistent mean read sizes instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.workloads.spec import ReadMix, WorkloadSpec, WriteMix


@dataclass(frozen=True)
class PaperRow:
    """One row of Table I, exactly as printed."""

    read_count: int
    write_count: int
    read_gb: float
    written_gb: float
    mean_write_kb: float
    guest_os: str

    @property
    def read_fraction(self) -> float:
        return self.read_count / (self.read_count + self.write_count)


@dataclass(frozen=True)
class Expectations:
    """Qualitative behaviour the paper reports for this workload.

    Attributes:
        ls_amplifies: True if Fig. 11 shows SAF > 1 under plain LS.
        cache_is_best: True if selective caching gives the lowest SAF
            (the paper: all workloads except usr_1 and src2_2).
        defrag_hurts: True if opportunistic defrag worsens SAF
            (src2_2, w93, w20).
        prefetch_gain_large: True if prefetching helps substantially
            (w84, w95, w91); False = marginal (usr_1, hm_1, w55, w33).
        high_misorder: True if Fig. 8 shows a high mis-ordered write rate
            (src2_2 ~1/20, w106 ~1/25).
    """

    ls_amplifies: bool
    cache_is_best: bool = True
    defrag_hurts: bool = False
    prefetch_gain_large: Optional[bool] = None
    high_misorder: bool = False


@dataclass(frozen=True)
class Table1Entry:
    """Registry record: paper row + synthetic spec + expectations."""

    paper: PaperRow
    spec: WorkloadSpec
    expect: Expectations


def _entry(
    name: str,
    family: str,
    paper: PaperRow,
    expect: Expectations,
    total_ops: int,
    mean_read_kib: float,
    working_set_mib: int,
    hot_mib: int,
    write_mix: WriteMix,
    read_mix: ReadMix,
    zipf_alpha: float = 1.2,
    hot_targets_max: int = 2048,
    overwrite_cluster: int = 2,
    cluster_span_kib: float = 512.0,
    interleave_writes: bool = False,
    misorder_in_hot: bool = True,
    phases: int = 8,
    write_phase_decay: float = 1.0,
) -> Table1Entry:
    spec = WorkloadSpec(
        name=name,
        family=family,
        total_ops=total_ops,
        read_fraction=round(paper.read_fraction, 3),
        mean_read_kib=mean_read_kib,
        mean_write_kib=paper.mean_write_kb,
        working_set_mib=working_set_mib,
        hot_mib=hot_mib,
        write_mix=write_mix,
        read_mix=read_mix,
        zipf_alpha=zipf_alpha,
        hot_targets_max=hot_targets_max,
        overwrite_cluster=overwrite_cluster,
        cluster_span_kib=cluster_span_kib,
        interleave_writes=interleave_writes,
        misorder_in_hot=misorder_in_hot,
        phases=phases,
        write_phase_decay=write_phase_decay,
    )
    return Table1Entry(paper=paper, spec=spec, expect=expect)


TABLE1: Dict[str, Table1Entry] = {
    # ------------------------- CloudPhysics ------------------------- #
    "w84": _entry(
        "w84", "cloudphysics",
        PaperRow(655397, 4158838, 13.7, 124.1, 31.2, "Red Hat Enterprise Linux 5"),
        Expectations(ls_amplifies=False, prefetch_gain_large=True),
        total_ops=30000, mean_read_kib=21.9, working_set_mib=1024, hot_mib=8,
        write_mix=WriteMix(random=0.55, hot_overwrite=0.25, sequential=0.0, misordered=0.20),
        read_mix=ReadMix(scan=0.70, random=0.30, hot=0.0, replay=0.0),
        overwrite_cluster=12, cluster_span_kib=128.0, phases=4,
        write_phase_decay=0.3,
    ),
    "w95": _entry(
        "w95", "cloudphysics",
        PaperRow(1264721, 2672520, 30.3, 27.7, 10.8, "Microsoft Windows Server 2008"),
        Expectations(ls_amplifies=True, prefetch_gain_large=True),
        total_ops=30000, mean_read_kib=25.1, working_set_mib=512, hot_mib=16,
        write_mix=WriteMix(random=0.40, hot_overwrite=0.40, sequential=0.0, misordered=0.20),
        read_mix=ReadMix(scan=0.55, random=0.15, hot=0.30, replay=0.0),
        zipf_alpha=1.5, overwrite_cluster=4, phases=4, write_phase_decay=0.35,
    ),
    "w64": _entry(
        "w64", "cloudphysics",
        PaperRow(6434453, 1023814, 399.6, 36.9, 37.8, "Microsoft Windows Server 2008 R2"),
        Expectations(ls_amplifies=True),
        total_ops=35000, mean_read_kib=65.0, working_set_mib=512, hot_mib=48,
        write_mix=WriteMix(random=0.72, hot_overwrite=0.18, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.30, random=0.35, hot=0.35, replay=0.0),
        zipf_alpha=1.3, write_phase_decay=0.6,
    ),
    "w93": _entry(
        "w93", "cloudphysics",
        PaperRow(2928984, 422470, 115.7, 11.4, 28.3, "Microsoft Windows Server 2003"),
        Expectations(ls_amplifies=True, defrag_hurts=True),
        total_ops=30000, mean_read_kib=41.4, working_set_mib=1024, hot_mib=512,
        write_mix=WriteMix(random=0.30, hot_overwrite=0.60, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.45, random=0.45, hot=0.10, replay=0.0),
        zipf_alpha=1.4, hot_targets_max=1024, overwrite_cluster=1,
        interleave_writes=True,
    ),
    "w20": _entry(
        "w20", "cloudphysics",
        PaperRow(19652684, 10189634, 2353.0, 332.8, 34.25, "Microsoft Windows Server 2003"),
        Expectations(ls_amplifies=True, defrag_hurts=True),
        total_ops=40000, mean_read_kib=60.0, working_set_mib=1536, hot_mib=768,
        write_mix=WriteMix(random=0.30, hot_overwrite=0.65, sequential=0.05, misordered=0.0),
        read_mix=ReadMix(scan=0.55, random=0.30, hot=0.15, replay=0.0),
        zipf_alpha=1.5, hot_targets_max=512, overwrite_cluster=1,
        interleave_writes=True,
    ),
    "w91": _entry(
        "w91", "cloudphysics",
        PaperRow(3147384, 1169222, 52.9, 15.3, 17.1, "Microsoft Windows Server 2003"),
        Expectations(ls_amplifies=True, prefetch_gain_large=True),
        total_ops=35000, mean_read_kib=17.6, working_set_mib=256, hot_mib=16,
        write_mix=WriteMix(random=0.72, hot_overwrite=0.28, sequential=0.0, misordered=0.0),
        read_mix=ReadMix(scan=0.85, random=0.05, hot=0.10, replay=0.0),
        zipf_alpha=1.3, overwrite_cluster=24, cluster_span_kib=128.0,
        phases=4, write_phase_decay=0.2,
    ),
    "w76": _entry(
        "w76", "cloudphysics",
        PaperRow(258852, 5817421, 30.3, 5.15, 35.7, "Microsoft Windows Server 2008 R2"),
        Expectations(ls_amplifies=False),
        total_ops=30000, mean_read_kib=40.0, working_set_mib=512, hot_mib=32,
        write_mix=WriteMix(random=0.70, hot_overwrite=0.0, sequential=0.30, misordered=0.0),
        read_mix=ReadMix(scan=0.0, random=0.60, hot=0.0, replay=0.40),
    ),
    "w36": _entry(
        "w36", "cloudphysics",
        PaperRow(113090, 18802536, 399.6, 4.02, 141.8, "Red Hat Enterprise Linux 5"),
        Expectations(ls_amplifies=False),
        total_ops=30000, mean_read_kib=40.0, working_set_mib=512, hot_mib=32,
        write_mix=WriteMix(random=0.50, hot_overwrite=0.30, sequential=0.20, misordered=0.0),
        read_mix=ReadMix(scan=0.20, random=0.20, hot=0.60, replay=0.0),
        zipf_alpha=1.6, overwrite_cluster=8,
    ),
    "w89": _entry(
        "w89", "cloudphysics",
        PaperRow(1536898, 2089042, 115.7, 20.5, 31.7, "Microsoft Windows Server 2008 R2"),
        Expectations(ls_amplifies=True),
        total_ops=30000, mean_read_kib=30.0, working_set_mib=512, hot_mib=40,
        write_mix=WriteMix(random=0.45, hot_overwrite=0.45, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.50, random=0.15, hot=0.30, replay=0.05),
    ),
    "w106": _entry(
        "w106", "cloudphysics",
        PaperRow(576666, 2699254, 2353.0, 8.4, 21.2, "Microsoft Windows Server 2003 Standard"),
        Expectations(ls_amplifies=False, high_misorder=True),
        total_ops=30000, mean_read_kib=20.0, working_set_mib=512, hot_mib=32,
        write_mix=WriteMix(random=0.49, hot_overwrite=0.35, sequential=0.10, misordered=0.06),
        read_mix=ReadMix(scan=0.50, random=0.20, hot=0.30, replay=0.0),
        misorder_in_hot=False,
    ),
    "w55": _entry(
        "w55", "cloudphysics",
        PaperRow(7797622, 1057909, 35.8, 18.4, 18.2, "Microsoft Windows Server 2008 R2"),
        Expectations(ls_amplifies=True, prefetch_gain_large=False),
        total_ops=35000, mean_read_kib=4.8, working_set_mib=512, hot_mib=32,
        write_mix=WriteMix(random=0.30, hot_overwrite=0.60, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.50, random=0.20, hot=0.30, replay=0.0),
        overwrite_cluster=1, interleave_writes=True, write_phase_decay=0.6,
    ),
    "w33": _entry(
        "w33", "cloudphysics",
        PaperRow(7603814, 8013607, 238.0, 241.0, 31.6, "Red Hat Enterprise Linux 5"),
        Expectations(ls_amplifies=True, prefetch_gain_large=False),
        total_ops=40000, mean_read_kib=32.8, working_set_mib=1024, hot_mib=48,
        write_mix=WriteMix(random=0.40, hot_overwrite=0.55, sequential=0.05, misordered=0.0),
        read_mix=ReadMix(scan=0.55, random=0.25, hot=0.20, replay=0.0),
        overwrite_cluster=1, interleave_writes=True, write_phase_decay=0.6,
    ),
    # ----------------------------- MSR ------------------------------ #
    "usr_0": _entry(
        "usr_0", "msr",
        PaperRow(904483, 1333406, 35.3, 13.0, 10.2, "Microsoft Windows"),
        Expectations(ls_amplifies=False),
        total_ops=30000, mean_read_kib=40.9, working_set_mib=512, hot_mib=32,
        write_mix=WriteMix(random=0.70, hot_overwrite=0.15, sequential=0.15, misordered=0.0),
        read_mix=ReadMix(scan=0.05, random=0.40, hot=0.15, replay=0.40),
        zipf_alpha=1.4,
    ),
    "src2_2": _entry(
        "src2_2", "msr",
        PaperRow(350930, 805955, 22.7, 39.2, 51.1, "Microsoft Windows"),
        Expectations(
            ls_amplifies=False, cache_is_best=False, defrag_hurts=True,
            high_misorder=True,
        ),
        total_ops=30000, mean_read_kib=67.8, working_set_mib=1024, hot_mib=512,
        write_mix=WriteMix(random=0.63, hot_overwrite=0.20, sequential=0.10, misordered=0.07),
        read_mix=ReadMix(scan=0.35, random=0.45, hot=0.20, replay=0.0),
        zipf_alpha=0.4, hot_targets_max=8192, overwrite_cluster=1,
    ),
    "hm_1": _entry(
        "hm_1", "msr",
        PaperRow(580896, 28415, 8.2, 0.5, 19.9, "Microsoft Windows"),
        Expectations(ls_amplifies=True, prefetch_gain_large=False),
        total_ops=24000, mean_read_kib=14.8, working_set_mib=256, hot_mib=8,
        write_mix=WriteMix(random=0.0, hot_overwrite=0.55, sequential=0.15, misordered=0.30),
        read_mix=ReadMix(scan=0.70, random=0.15, hot=0.15, replay=0.0),
        zipf_alpha=0.9, hot_targets_max=4096, overwrite_cluster=1,
        interleave_writes=True, misorder_in_hot=False, phases=40,
    ),
    "web_0": _entry(
        "web_0", "msr",
        PaperRow(606487, 1423458, 17.3, 11.6, 8.5, "Microsoft Windows"),
        Expectations(ls_amplifies=False),
        total_ops=30000, mean_read_kib=29.9, working_set_mib=512, hot_mib=32,
        write_mix=WriteMix(random=0.55, hot_overwrite=0.35, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.10, random=0.30, hot=0.30, replay=0.30),
        zipf_alpha=1.3,
    ),
    "usr_1": _entry(
        "usr_1", "msr",
        PaperRow(41426266, 3857714, 2079.2, 56.1, 15.2, "Microsoft Windows"),
        Expectations(
            ls_amplifies=True, cache_is_best=False, prefetch_gain_large=False,
        ),
        total_ops=40000, mean_read_kib=52.6, working_set_mib=1024, hot_mib=384,
        write_mix=WriteMix(random=0.45, hot_overwrite=0.45, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.65, random=0.35, hot=0.0, replay=0.0),
        zipf_alpha=0.4, hot_targets_max=8192, overwrite_cluster=1,
        interleave_writes=True, phases=8,
    ),
    "wdev_0": _entry(
        "wdev_0", "msr",
        PaperRow(229529, 913732, 2.7, 7.1, 8.2, "Microsoft Windows"),
        Expectations(ls_amplifies=False),
        total_ops=28000, mean_read_kib=12.3, working_set_mib=256, hot_mib=16,
        write_mix=WriteMix(random=0.70, hot_overwrite=0.20, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.10, random=0.30, hot=0.30, replay=0.30),
        zipf_alpha=1.3,
    ),
    "mds_0": _entry(
        "mds_0", "msr",
        PaperRow(143973, 1067061, 3.2, 7.3, 7.2, "Microsoft Windows"),
        Expectations(ls_amplifies=False),
        total_ops=28000, mean_read_kib=23.3, working_set_mib=256, hot_mib=16,
        write_mix=WriteMix(random=0.70, hot_overwrite=0.20, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.10, random=0.30, hot=0.30, replay=0.30),
        zipf_alpha=1.3,
    ),
    "rsrch_0": _entry(
        "rsrch_0", "msr",
        PaperRow(133625, 1300030, 1.3, 10.8, 8.7, "Microsoft Windows"),
        Expectations(ls_amplifies=False),
        total_ops=28000, mean_read_kib=10.2, working_set_mib=256, hot_mib=16,
        write_mix=WriteMix(random=0.70, hot_overwrite=0.20, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.10, random=0.30, hot=0.30, replay=0.30),
        zipf_alpha=1.3,
    ),
    "ts_0": _entry(
        "ts_0", "msr",
        PaperRow(316692, 1485042, 4.1, 4.1, 8.0, "Microsoft Windows"),
        Expectations(ls_amplifies=False),
        total_ops=28000, mean_read_kib=13.6, working_set_mib=256, hot_mib=16,
        write_mix=WriteMix(random=0.70, hot_overwrite=0.20, sequential=0.10, misordered=0.0),
        read_mix=ReadMix(scan=0.10, random=0.30, hot=0.30, replay=0.30),
        zipf_alpha=1.3,
    ),
}
"""All 21 Table I workloads, keyed by name, CloudPhysics first (paper order)."""


MSR_WORKLOADS: Tuple[str, ...] = tuple(
    name for name, e in TABLE1.items() if e.spec.family == "msr"
)
CLOUDPHYSICS_WORKLOADS: Tuple[str, ...] = tuple(
    name for name, e in TABLE1.items() if e.spec.family == "cloudphysics"
)

FIG2_MSR = ("usr_0", "src2_2", "hm_1", "web_0", "usr_1", "wdev_0", "mds_0", "rsrch_0", "ts_0")
FIG2_CLOUDPHYSICS = CLOUDPHYSICS_WORKLOADS
FIG3_WORKLOADS = ("usr_1", "web_0", "w91", "w55")
FIG4_WORKLOADS = ("src2_2", "usr_0", "w84", "w64")
FIG5_WORKLOADS = ("usr_0", "hm_1", "w20", "w36")
FIG7_WORKLOADS = ("hm_1", "w106")
FIG10_WORKLOADS = ("usr_1", "hm_1", "web_0", "src2_2", "w20", "w33", "w55", "w106")


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by Table I name (KeyError lists options)."""
    try:
        return TABLE1[name].spec
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(TABLE1)}"
        ) from None
