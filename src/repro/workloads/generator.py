"""Synthetic trace generation from a :class:`WorkloadSpec`.

The generator is a phase machine: each of ``spec.phases`` cycles emits a
write burst followed by a read burst, with per-pattern sub-bursts sized by
the spec's mix weights.  This produces the structures the paper measures:

* bursts of clustered hot-region overwrites fragment the logical space;
* sequential scans then traverse that fragmented space in LBA order
  (the §III "sequential read after random write" amplification case);
* mis-ordered runs write ascending data in locally reversed chunks
  (Fig. 7), creating the missed-rotation hazard;
* replay reads consume recent writes in write order (the log-friendly
  §III case);
* the phase beat yields the temporal burstiness of Fig. 3.

Traces are pure functions of ``(spec, seed, scale)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.util.rngtools import SeedSequenceFactory
from repro.util.units import kib_to_sectors, mib_to_sectors
from repro.workloads.patterns import (
    BLOCK_SECTORS,
    ClusteredOverwritePattern,
    MisorderedPattern,
    RandomAccessPattern,
    ReplayReadPattern,
    SequentialPattern,
    WrittenExtentLog,
    ZipfRereadPattern,
    sample_size,
)
from repro.workloads.spec import WorkloadSpec

_OP_INTERVAL_S = 0.001       # virtual inter-arrival time
_PHASE_GAP_S = 60.0          # idle gap between phases (the diurnal beat)


def _split_counts(total: int, weights: Tuple[float, ...]) -> List[int]:
    """Apportion ``total`` into integer counts proportional to ``weights``."""
    weight_sum = sum(weights)
    counts = [int(total * w / weight_sum) for w in weights]
    counts[0] += total - sum(counts)  # remainder to the first bucket
    return counts


def _interleave_schedule(groups: List[Tuple[str, int]]) -> List[str]:
    """Merge ``(tag, count)`` groups into one evenly interleaved schedule.

    Each group's occurrences are spread uniformly over [0, 1) and merged by
    position (a deterministic riffle), so e.g. 300 hot overwrites and 100
    sequential writes come out hot, hot, hot, seq, hot, hot, hot, seq, …
    """
    positioned: List[Tuple[float, int, str]] = []
    for order, (tag, count) in enumerate(groups):
        for i in range(count):
            positioned.append(((i + 0.5) / count, order, tag))
    positioned.sort()
    return [tag for _, _, tag in positioned]


class WorkloadGenerator:
    """Builds traces for one spec; reusable across scales and seeds."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> WorkloadSpec:
        return self._spec

    def generate(self, seed: int = 42, scale: float = 1.0) -> Trace:
        """Generate the archetype trace.

        Args:
            seed: Root seed; every derived random stream is a pure function
                of it.
            scale: Multiplier on operation count (structure is preserved:
                the same phases, proportionally smaller bursts).
        """
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        spec = self._spec
        seeds = SeedSequenceFactory(seed)

        ws = mib_to_sectors(spec.working_set_mib)
        hot_len = mib_to_sectors(spec.hot_mib)
        hot_start = ((ws - hot_len) // 2 // BLOCK_SECTORS) * BLOCK_SECTORS

        log = WrittenExtentLog(hot_targets_max=spec.hot_targets_max)
        write_random = RandomAccessPattern(
            seeds.rng_for("write.random"), 0, ws, spec.mean_write_kib
        )
        write_hot = ClusteredOverwritePattern(
            seeds.rng_for("write.hot"),
            hot_start,
            hot_len,
            spec.mean_write_kib,
            cluster=spec.overwrite_cluster,
            span_sectors=kib_to_sectors(spec.cluster_span_kib),
        )
        write_seq = SequentialPattern(
            seeds.rng_for("write.seq"), 0, ws, spec.mean_write_kib
        )
        if spec.misorder_in_hot:
            misorder_start, misorder_len = hot_start, hot_len
        else:
            # Cold region below the hot region: the descending-run pattern
            # exists in the write stream (Fig. 7) but reads rarely visit it.
            misorder_len = max(BLOCK_SECTORS, hot_start // 2 // BLOCK_SECTORS * BLOCK_SECTORS)
            misorder_start = 0
        write_misordered = MisorderedPattern(
            seeds.rng_for("write.misordered"),
            misorder_start,
            misorder_len,
            spec.mean_write_kib,
            group=spec.misorder_group,
        )
        read_scan = SequentialPattern(
            seeds.rng_for("read.scan"), hot_start, hot_len, spec.mean_read_kib
        )
        read_random = RandomAccessPattern(
            seeds.rng_for("read.random"), 0, ws, spec.mean_read_kib,
            cap_kib=4096.0, bulk_p=0.01,
        )
        read_hot = ZipfRereadPattern(seeds.rng_for("read.hot"), log, spec.zipf_alpha)
        read_replay = ReplayReadPattern(log, window=spec.replay_window)
        hot_rng = seeds.rng_for("read.hot.span")

        n_reads = max(0, round(spec.n_reads * scale))
        n_writes = max(1, round(spec.n_writes * scale))
        write_phase_weights = tuple(
            spec.write_phase_decay ** i for i in range(spec.phases)
        )
        writes_per_phase = _split_counts(n_writes, write_phase_weights)
        reads_per_phase = _split_counts(n_reads, tuple([1.0] * spec.phases))

        requests: List[IORequest] = []
        clock = 0.0

        def emit(op: OpType, lba: int, length: int) -> None:
            nonlocal clock
            requests.append(IORequest(clock, op, lba, length))
            clock += _OP_INTERVAL_S

        def emit_write(tag: str) -> None:
            if tag == "hot":
                lba, length = write_hot.emit()
                in_hot = True
            elif tag == "misordered":
                lba, length = write_misordered.emit()
                in_hot = spec.misorder_in_hot
            elif tag == "sequential":
                lba, length = write_seq.emit()
                in_hot = False
            else:  # random
                lba, length = write_random.emit()
                in_hot = hot_start <= lba < hot_start + hot_len
            emit(OpType.WRITE, lba, length)
            log.note_write(lba, length, in_hot=in_hot)

        for phase in range(spec.phases):
            wr_counts = _split_counts(writes_per_phase[phase], spec.write_mix.as_tuple())
            # Hot overwrites first (they fragment), then mis-ordered runs,
            # sequential streams and random writes — unless the spec asks
            # for interleaving, which spaces hot fragments apart in the log.
            groups = [
                ("hot", wr_counts[1]),
                ("misordered", wr_counts[3]),
                ("sequential", wr_counts[2]),
                ("random", wr_counts[0]),
            ]
            if spec.interleave_writes:
                for tag in _interleave_schedule([g for g in groups if g[1] > 0]):
                    emit_write(tag)
            else:
                for tag, count in groups:
                    for _ in range(count):
                        emit_write(tag)

            rd_counts = _split_counts(reads_per_phase[phase], spec.read_mix.as_tuple())
            for _ in range(rd_counts[3]):  # replay reads (log-friendly)
                span = read_replay.emit()
                if span is None:
                    span = read_random.emit()
                emit(OpType.READ, span[0], span[1])
            for _ in range(rd_counts[0]):  # sequential scans of the hot region
                lba, length = read_scan.emit()
                emit(OpType.READ, lba, length)
            for _ in range(rd_counts[2]):  # Zipf re-reads around hot extents
                span = self._hot_read_span(read_hot, hot_rng, hot_start, hot_len)
                if span is None:
                    span = read_random.emit()
                emit(OpType.READ, span[0], span[1])
            for _ in range(rd_counts[1]):  # random reads
                lba, length = read_random.emit()
                emit(OpType.READ, lba, length)

            clock += _PHASE_GAP_S

        return Trace(requests, name=spec.name)

    def _hot_read_span(
        self,
        read_hot: ZipfRereadPattern,
        rng,
        hot_start: int,
        hot_len: int,
    ) -> Optional[Tuple[int, int]]:
        """Build a read covering a popular hot extent plus its neighbourhood.

        Reading a window around the target (rather than the exact extent)
        makes the read span multiple physical pieces — the fragmented-read
        population that selective caching and defragmentation act on.  The
        window's placement over the target jitters between reads, the way
        application reads of a record drag in varying slack around it; the
        jitter is what makes opportunistic defrag's relocation hurt
        re-reads of *overlapping-but-unequal* ranges (the Fig. 6 t_F
        effect): no rewrite ever covers the next window exactly.
        """
        target = read_hot.emit()
        if target is None:
            return None
        t_lba, t_len = target
        size = max(
            sample_size(rng, self._spec.mean_read_kib),
            t_len + 2 * BLOCK_SECTORS,
        )
        slack = size - t_len
        pad = (rng.randrange(0, slack + 1) // BLOCK_SECTORS) * BLOCK_SECTORS
        lba = max(hot_start, t_lba - pad)
        end = min(hot_start + hot_len, lba + size)
        return lba, max(BLOCK_SECTORS, end - lba)


def generate_workload(spec: WorkloadSpec, seed: int = 42, scale: float = 1.0) -> Trace:
    """Module-level convenience: ``WorkloadGenerator(spec).generate(...)``."""
    return WorkloadGenerator(spec).generate(seed=seed, scale=scale)
