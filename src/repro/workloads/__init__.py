"""Synthetic workload engine: archetypes for the paper's 21 Table-I traces.

The MSR and CloudPhysics traces the paper replays are not redistributable;
this package substitutes calibrated synthetic archetypes whose structural
parameters (write intensity, scan behaviour, mis-ordered writes, fragment
popularity skew, hot-region size) reproduce each workload's qualitative
seek behaviour.  See DESIGN.md §2 for the substitution argument.

Primary entry point::

    trace = synthesize_workload("w91", seed=7)          # paper archetype
    trace = generate_workload(my_spec, seed=7)          # custom spec
"""

from repro.trace.trace import Trace
from repro.workloads.spec import ReadMix, WorkloadSpec, WriteMix
from repro.workloads.patterns import BLOCK_SECTORS, WrittenExtentLog
from repro.workloads.generator import WorkloadGenerator, generate_workload
from repro.workloads.validation import (
    Check,
    ValidationReport,
    check_expectations,
    measure_saf,
    validate_archetype,
)
from repro.workloads.table1 import (
    TABLE1,
    Table1Entry,
    PaperRow,
    Expectations,
    MSR_WORKLOADS,
    CLOUDPHYSICS_WORKLOADS,
    FIG2_MSR,
    FIG2_CLOUDPHYSICS,
    FIG3_WORKLOADS,
    FIG4_WORKLOADS,
    FIG5_WORKLOADS,
    FIG7_WORKLOADS,
    FIG10_WORKLOADS,
    get_spec,
)


def synthesize_workload(name: str, seed: int = 42, scale: float = 1.0) -> Trace:
    """Generate the synthetic archetype for a Table I workload.

    Args:
        name: Table I workload name (e.g. ``"w91"``, ``"usr_0"``).
        seed: Root RNG seed; the trace is a pure function of (name, seed,
            scale).
        scale: Operation-count multiplier (1.0 = the registry's default
            scaled-down size; raise it for higher-fidelity replays).
    """
    return generate_workload(get_spec(name), seed=seed, scale=scale)


__all__ = [
    "ReadMix",
    "WorkloadSpec",
    "WriteMix",
    "BLOCK_SECTORS",
    "WrittenExtentLog",
    "WorkloadGenerator",
    "generate_workload",
    "synthesize_workload",
    "Trace",
    "TABLE1",
    "Table1Entry",
    "PaperRow",
    "Expectations",
    "MSR_WORKLOADS",
    "CLOUDPHYSICS_WORKLOADS",
    "FIG2_MSR",
    "FIG2_CLOUDPHYSICS",
    "FIG3_WORKLOADS",
    "FIG4_WORKLOADS",
    "FIG5_WORKLOADS",
    "FIG7_WORKLOADS",
    "FIG10_WORKLOADS",
    "get_spec",
    "Check",
    "ValidationReport",
    "check_expectations",
    "measure_saf",
    "validate_archetype",
]
