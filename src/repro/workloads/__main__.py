"""Command-line workload synthesis.

Generate a Table-I archetype trace and write it as native CSV (replayable
by :mod:`repro.trace.csvio` or any external tool), or list the registry::

    python -m repro.workloads list
    python -m repro.workloads w91 --seed 7 --scale 2.0 --out w91.csv
    python -m repro.workloads hm_1 --stats
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.classify import characterize
from repro.trace.csvio import write_csv_trace
from repro.trace.stats import compute_stats
from repro.workloads import TABLE1, synthesize_workload


def _list_registry() -> None:
    print(f"{'name':8} {'family':12} {'ops':>7} {'rd frac':>8} {'hot MiB':>8}  paper notes")
    for name, entry in TABLE1.items():
        spec = entry.spec
        expect = entry.expect
        notes = []
        if expect.ls_amplifies:
            notes.append("SAF>1")
        if not expect.cache_is_best:
            notes.append("cache-not-best")
        if expect.defrag_hurts:
            notes.append("defrag-hurts")
        if expect.prefetch_gain_large:
            notes.append("prefetch-large")
        if expect.high_misorder:
            notes.append("high-misorder")
        print(
            f"{name:8} {spec.family:12} {spec.total_ops:>7} "
            f"{spec.read_fraction:>8.3f} {spec.hot_mib:>8}  {', '.join(notes)}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Synthesize Table-I workload archetype traces.",
    )
    parser.add_argument("workload", help="Table-I workload name, or 'list'")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--out", metavar="CSV", help="write the trace here")
    parser.add_argument(
        "--stats", action="store_true", help="print Table-I-style statistics"
    )
    args = parser.parse_args(argv)

    if args.workload == "list":
        _list_registry()
        return 0

    try:
        trace = synthesize_workload(args.workload, seed=args.seed, scale=args.scale)
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    stats = compute_stats(trace)
    print(
        f"{trace.name}: {stats.op_count} ops, {stats.read_count} reads / "
        f"{stats.write_count} writes, mean write "
        f"{stats.mean_write_size_kib:.1f} KiB, "
        f"{stats.read_volume_gib:.2f} GiB read / "
        f"{stats.written_volume_gib:.2f} GiB written"
    )
    if args.stats:
        character = characterize(trace)
        print(
            f"write intensity {character.write_intensity:.2f}, "
            f"sequential-read share {character.sequential_read_share:.2f}, "
            f"overwrite ratio {character.overwrite_ratio:.2f}, "
            f"mixed-read share {character.mixed_read_share:.2f} "
            f"-> predicted {character.predicted_sensitivity().value}"
        )
    if args.out:
        write_csv_trace(trace, args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
