"""Stateful access-pattern primitives used by the workload generator.

Each emitter produces ``(lba, length)`` pairs in sectors.  Emitters are
deliberately tiny state machines so a workload's behaviour can be read off
its spec: the generator composes them according to the
:class:`~repro.workloads.spec.WriteMix` / :class:`ReadMix` weights.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.util.rngtools import zipf_weights
from repro.util.units import kib_to_sectors

BLOCK_SECTORS = 8  # 4 KiB alignment for all synthetic requests
Span = Tuple[int, int]  # (lba, length)


def sample_size(
    rng: random.Random,
    mean_kib: float,
    cap_kib: float = 1024.0,
    bulk_p: float = 0.0,
) -> int:
    """Sample a request size: exponential around the mean, 4 KiB-aligned,
    clamped to [4 KiB, cap_kib] like typical block-layer request caps.

    With probability ``bulk_p`` the request is instead a *bulk* transfer
    uniform in [8x mean, cap_kib].  Reads use a small ``bulk_p`` (see the
    generator): occasional large reads produce the heavy per-read fragment
    tail of Fig. 5, where ~20 % of the fragmented reads hold over half of
    all fragments.
    """
    if bulk_p and rng.random() < bulk_p:
        kib = rng.uniform(min(8.0 * mean_kib, cap_kib), cap_kib)
    else:
        kib = rng.expovariate(1.0 / mean_kib)
    kib = min(max(kib, 4.0), cap_kib)
    sectors = kib_to_sectors(kib)
    return max(BLOCK_SECTORS, (sectors // BLOCK_SECTORS) * BLOCK_SECTORS)


def _align(lba: int) -> int:
    return (lba // BLOCK_SECTORS) * BLOCK_SECTORS


class RandomAccessPattern:
    """Uniform random accesses over a region."""

    def __init__(
        self,
        rng: random.Random,
        start: int,
        length: int,
        mean_kib: float,
        cap_kib: float = 1024.0,
        bulk_p: float = 0.0,
    ) -> None:
        if length <= 0:
            raise ValueError(f"region length must be > 0, got {length}")
        self._rng = rng
        self._start = start
        self._length = length
        self._mean_kib = mean_kib
        self._cap_kib = cap_kib
        self._bulk_p = bulk_p

    def emit(self) -> Span:
        size = sample_size(self._rng, self._mean_kib, self._cap_kib, self._bulk_p)
        size = min(size, self._length)
        lba = self._start + _align(self._rng.randrange(0, max(1, self._length - size)))
        return lba, size


class SequentialPattern:
    """Ascending sequential accesses sweeping a region, wrapping at the end."""

    def __init__(
        self,
        rng: random.Random,
        start: int,
        length: int,
        mean_kib: float,
        fixed_size: bool = True,
    ) -> None:
        if length <= 0:
            raise ValueError(f"region length must be > 0, got {length}")
        self._rng = rng
        self._start = start
        self._length = length
        self._mean_kib = mean_kib
        self._fixed = fixed_size
        self._cursor = start
        self.wraps = 0

    @property
    def cursor(self) -> int:
        return self._cursor

    def emit(self) -> Span:
        if self._fixed:
            size = max(
                BLOCK_SECTORS,
                (kib_to_sectors(self._mean_kib) // BLOCK_SECTORS) * BLOCK_SECTORS,
            )
        else:
            size = sample_size(self._rng, self._mean_kib)
        end = self._start + self._length
        if self._cursor + size > end:
            self._cursor = self._start
            self.wraps += 1
        span = (self._cursor, size)
        self._cursor += size
        return span


class MisorderedPattern:
    """Sequential runs emitted in locally reversed chunks (Fig. 7 pattern).

    An underlying ascending sweep is buffered ``group`` requests at a time
    and released in reverse, so each chunk's writes are mis-ordered: every
    write but the chunk's last sequentially follows a write issued just
    after it.
    """

    def __init__(
        self,
        rng: random.Random,
        start: int,
        length: int,
        mean_kib: float,
        group: int = 4,
    ) -> None:
        if group < 2:
            raise ValueError(f"group must be >= 2, got {group}")
        self._sweep = SequentialPattern(rng, start, length, mean_kib, fixed_size=True)
        self._group = group
        self._pending: List[Span] = []

    def emit(self) -> Span:
        if not self._pending:
            chunk = [self._sweep.emit() for _ in range(self._group)]
            chunk.reverse()
            self._pending = chunk
        return self._pending.pop(0)


class ClusteredOverwritePattern:
    """Small overwrites inside the hot region, issued in spatial clusters.

    Each cluster picks a random anchor in the hot region and issues
    ``cluster`` overwrites at random 4 KiB-aligned offsets within
    ``span_sectors`` of it.  With ``cluster >= 2`` the overwrites of one
    cluster land adjacently in the log, so a later scan's fragments sit
    within a prefetch window of each other; with ``cluster == 1`` every
    overwrite is spatially independent and prefetching gains little.
    """

    def __init__(
        self,
        rng: random.Random,
        start: int,
        length: int,
        mean_kib: float,
        cluster: int = 1,
        span_sectors: int = 1024,
    ) -> None:
        if cluster < 1:
            raise ValueError(f"cluster must be >= 1, got {cluster}")
        if span_sectors <= 0:
            raise ValueError(f"span_sectors must be > 0, got {span_sectors}")
        self._rng = rng
        self._start = start
        self._length = length
        self._mean_kib = mean_kib
        self._cluster = cluster
        self._span = span_sectors
        self._remaining_in_cluster = 0
        self._anchor = start

    def emit(self) -> Span:
        if self._remaining_in_cluster == 0:
            self._remaining_in_cluster = self._cluster
            self._anchor = self._start + _align(
                self._rng.randrange(0, max(1, self._length - self._span))
            )
        self._remaining_in_cluster -= 1
        size = sample_size(self._rng, self._mean_kib)
        size = min(size, self._span)
        offset = _align(self._rng.randrange(0, max(1, self._span - size)))
        return self._anchor + offset, size


class WrittenExtentLog:
    """Shared record of what has been written, feeding re-read patterns.

    Keeps a bounded FIFO of recent writes (for replay reads) and a bounded
    stable population of hot-region extents (for Zipf re-reads — stable so
    fragment popularity ranks stay fixed across the run, as in Fig. 10).
    """

    def __init__(self, recent_max: int = 4096, hot_targets_max: int = 2048) -> None:
        if recent_max < 1 or hot_targets_max < 1:
            raise ValueError("log bounds must be >= 1")
        self.recent: Deque[Span] = deque(maxlen=recent_max)
        self.hot_targets: List[Span] = []
        self._hot_targets_max = hot_targets_max

    def note_write(self, lba: int, length: int, in_hot: bool) -> None:
        self.recent.append((lba, length))
        if in_hot and len(self.hot_targets) < self._hot_targets_max:
            self.hot_targets.append((lba, length))


class ZipfRereadPattern:
    """Zipf-skewed re-reads of previously overwritten hot extents."""

    def __init__(self, rng: random.Random, log: WrittenExtentLog, alpha: float) -> None:
        self._rng = rng
        self._log = log
        self._alpha = alpha
        self._weights: List[float] = []

    def emit(self) -> Optional[Span]:
        """Return a re-read target, or None if nothing hot exists yet."""
        targets = self._log.hot_targets
        if not targets:
            return None
        if len(self._weights) != len(targets):
            self._weights = zipf_weights(len(targets), self._alpha)
        return self._rng.choices(targets, weights=self._weights, k=1)[0]


class ReplayReadPattern:
    """Read back the last ``window`` writes in the order they were written.

    This is the paper's log-*friendly* case (§III's "small file creation
    and access"): read order mimics temporal write order, so the log serves
    the whole burst with a single seek.
    """

    def __init__(self, log: WrittenExtentLog, window: int = 32) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._log = log
        self._window = window
        self._pending: List[Span] = []

    def emit(self) -> Optional[Span]:
        if not self._pending:
            recent = list(self._log.recent)[-self._window:]
            if not recent:
                return None
            self._pending = recent
        return self._pending.pop(0)
