"""Generic CSV trace reader/writer.

The native on-disk format of this library is a minimal four-column CSV::

    timestamp,op,lba,length

with timestamps in seconds and addresses in sectors.  Synthetic traces are
persisted in this format so experiments can be re-run without regenerating
workloads.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace

_HEADER = ["timestamp", "op", "lba", "length"]


def write_csv_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the native CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for request in trace:
            writer.writerow(
                [f"{request.timestamp:.6f}", request.op.value, request.lba, request.length]
            )


def read_csv_trace(path: Union[str, Path], name: str = "") -> Trace:
    """Read a native-format CSV trace from ``path``.

    The header row is optional; rows that fail to parse raise
    :class:`ValueError` with the offending line number.
    """
    path = Path(path)
    requests = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for line_no, row in enumerate(reader, start=1):
            if not row or row[0].startswith("#"):
                continue
            if line_no == 1 and row[0].strip().lower() == "timestamp":
                continue
            try:
                requests.append(_parse_row(row))
            except (ValueError, IndexError) as exc:
                raise ValueError(f"{path}:{line_no}: bad trace row {row!r}: {exc}") from exc
    return Trace(requests, name=name or path.stem)


def _parse_row(row: Iterable[str]) -> IORequest:
    timestamp_s, op_s, lba_s, length_s = list(row)[:4]
    return IORequest(
        timestamp=float(timestamp_s),
        op=OpType.parse(op_s),
        lba=int(lba_s),
        length=int(length_s),
    )
