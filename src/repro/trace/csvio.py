"""Generic CSV trace reader/writer.

The native on-disk format of this library is a minimal four-column CSV::

    timestamp,op,lba,length

with timestamps in seconds and addresses in sectors.  Synthetic traces are
persisted in this format so experiments can be re-run without regenerating
workloads.  Reading follows the shared ``strict`` | ``lenient`` |
``quarantine`` error policy of :mod:`repro.trace.errors`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.trace.errors import PARSE_ENGINES, ParseReport, check_geometry, make_report
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.util.validation import check_choice

_HEADER = ["timestamp", "op", "lba", "length"]


def write_csv_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the native CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for request in trace:
            writer.writerow(
                [f"{request.timestamp:.6f}", request.op.value, request.lba, request.length]
            )


def read_csv_rows(
    reader: Iterable[List[str]],
    trace_name: str,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
) -> Trace:
    """Parse native-format CSV rows (as yielded by :func:`csv.reader`).

    This is the per-row reference core of :func:`read_csv_trace`, split out
    so the columnar bulk parser (:mod:`repro.trace.columnar`) can fall back
    to it over an in-memory ``csv.reader`` with identical semantics.
    """
    report = make_report(report, trace_name, policy)
    requests: List[IORequest] = []
    for line_no, row in enumerate(reader, start=1):
        if not row or row[0].startswith("#"):
            continue
        if line_no == 1 and row[0].strip().lower() == "timestamp":
            continue
        report.note_record()
        raw = ",".join(row)
        if len(row) < 4:
            report.note_error(
                line_no, raw, f"expected >=4 trace columns, got {len(row)}"
            )
            continue
        try:
            timestamp = float(row[0])
            op = OpType.parse(row[1])
            lba = int(row[2])
            length = int(row[3])
        except ValueError as exc:
            report.note_error(line_no, raw, f"bad trace row: {exc}")
            continue
        if length <= 0:
            report.note_error(
                line_no, raw, f"length must be > 0 sectors, got {length}"
            )
            continue
        geometry_error = check_geometry(lba, length, capacity_sectors)
        if geometry_error is not None:
            report.note_error(line_no, raw, geometry_error)
            continue
        report.note_accepted()
        requests.append(
            IORequest(timestamp=timestamp, op=op, lba=lba, length=length)
        )
    trace = Trace(requests, name=trace_name)
    trace.parse_report = report
    return trace


def read_csv_trace(
    path: Union[str, Path],
    name: str = "",
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
    engine: str = "columnar",
) -> Trace:
    """Read a native-format CSV trace from ``path``.

    The header row is optional.  Under the default ``strict`` policy a bad
    row raises :class:`~repro.trace.errors.TraceParseError` with the
    offending line number; ``lenient``/``quarantine`` skip bad rows and
    account for them in the :class:`ParseReport` attached to the returned
    trace as ``trace.parse_report``.

    ``engine`` selects the implementation: ``"columnar"`` (default) bulk
    parses via :mod:`repro.trace.columnar` — exactly equivalent, falling
    back to the per-row reference parser on any input it cannot reproduce
    bit-for-bit — while ``"reference"`` forces the per-row parser.
    """
    check_choice("engine", engine, PARSE_ENGINES)
    path = Path(path)
    trace_name = name or path.stem
    if engine == "columnar":
        from repro.trace.columnar import parse_csv_text

        # newline="" matches the reference csv.reader handle: no newline
        # translation, so fallback parses the identical character stream.
        with path.open(newline="") as handle:
            text = handle.read()
        return parse_csv_text(
            text,
            name=trace_name,
            # Error messages cite the full path (more useful than the stem).
            report_name=name or str(path),
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )
    report = make_report(report, name or str(path), policy)
    with path.open(newline="") as handle:
        return read_csv_rows(
            csv.reader(handle),
            trace_name=trace_name,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )


def _parse_row(row: Iterable[str]) -> IORequest:
    """Parse one native-format CSV row (kept for backwards compatibility)."""
    timestamp_s, op_s, lba_s, length_s = list(row)[:4]
    return IORequest(
        timestamp=float(timestamp_s),
        op=OpType.parse(op_s),
        lba=int(lba_s),
        length=int(length_s),
    )
