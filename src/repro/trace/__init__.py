"""Block I/O trace infrastructure.

Provides the :class:`~repro.trace.record.IORequest` record type shared by the
whole simulator, an in-memory :class:`~repro.trace.trace.Trace` container,
parsers for the MSR Cambridge and CloudPhysics-style CSV formats the paper
uses, a generic CSV reader/writer, trace statistics (the Table I columns),
and sampling/windowing utilities.
"""

from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.trace.errors import (
    PARSE_ENGINES,
    PARSE_POLICIES,
    ParseIssue,
    ParseReport,
    TraceParseError,
)
from repro.trace.columnar import (
    COLUMNAR_PARSER_VERSION,
    ColumnarTrace,
    TraceColumns,
    parse_cloudphysics_text,
    parse_csv_text,
    parse_msr_text,
)
from repro.trace.store import TraceStore, file_meta, load_trace, synthetic_meta
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.csvio import read_csv_trace, write_csv_trace
from repro.trace.msr import parse_msr_file, parse_msr_lines
from repro.trace.cloudphysics import parse_cloudphysics_file, parse_cloudphysics_lines
from repro.trace.writers import write_msr_trace, write_cloudphysics_trace
from repro.trace.sampling import (
    head_sample,
    stride_sample,
    time_window,
    op_window,
    split_by_op,
    op_index_buckets,
)

__all__ = [
    "IORequest",
    "OpType",
    "Trace",
    "COLUMNAR_PARSER_VERSION",
    "ColumnarTrace",
    "TraceColumns",
    "TraceStore",
    "parse_msr_text",
    "parse_cloudphysics_text",
    "parse_csv_text",
    "file_meta",
    "synthetic_meta",
    "load_trace",
    "PARSE_ENGINES",
    "PARSE_POLICIES",
    "ParseIssue",
    "ParseReport",
    "TraceParseError",
    "TraceStats",
    "compute_stats",
    "read_csv_trace",
    "write_csv_trace",
    "parse_msr_file",
    "parse_msr_lines",
    "parse_cloudphysics_file",
    "parse_cloudphysics_lines",
    "write_msr_trace",
    "write_cloudphysics_trace",
    "head_sample",
    "stride_sample",
    "time_window",
    "op_window",
    "split_by_op",
    "op_index_buckets",
]
