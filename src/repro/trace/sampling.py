"""Trace sampling and windowing utilities.

The paper samples its trace collections ("We sample the traces and select
some that represent different I/O behavior", §III) and plots several figures
over operation-index windows (Fig. 3).  These helpers implement the common
slicing operations.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.trace.record import OpType
from repro.trace.trace import Trace


def head_sample(trace: Trace, n_ops: int) -> Trace:
    """Return the first ``n_ops`` operations of ``trace``."""
    if n_ops < 0:
        raise ValueError(f"n_ops must be >= 0, got {n_ops}")
    return Trace(trace.requests[:n_ops], name=f"{trace.name}.head{n_ops}")


def stride_sample(trace: Trace, stride: int) -> Trace:
    """Keep every ``stride``-th operation (stride 1 = identity).

    Note that stride sampling distorts seek behaviour (it removes the
    requests between the kept ones); it is intended for coarse workload
    characterization, not seek replay.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    return Trace(trace.requests[::stride], name=f"{trace.name}.stride{stride}")


def op_window(trace: Trace, start: int, end: int) -> Trace:
    """Return operations with index in ``[start, end)``."""
    if start < 0 or end < start:
        raise ValueError(f"invalid window [{start}, {end})")
    return Trace(trace.requests[start:end], name=f"{trace.name}.ops{start}-{end}")


def time_window(trace: Trace, start_s: float, end_s: float) -> Trace:
    """Return operations with ``start_s <= timestamp < end_s``."""
    if end_s < start_s:
        raise ValueError(f"invalid time window [{start_s}, {end_s})")
    return Trace(
        (r for r in trace if start_s <= r.timestamp < end_s),
        name=f"{trace.name}.t{start_s:g}-{end_s:g}",
    )


def split_by_op(trace: Trace) -> Tuple[Trace, Trace]:
    """Split into (reads, writes) sub-traces, preserving relative order."""
    return trace.filter(OpType.READ), trace.filter(OpType.WRITE)


def op_index_buckets(trace: Trace, bucket_ops: int) -> List[Trace]:
    """Chop the trace into consecutive buckets of ``bucket_ops`` operations.

    Used by the Fig. 3 temporal analysis: per-bucket seek counts are
    differenced between translations.
    """
    if bucket_ops < 1:
        raise ValueError(f"bucket_ops must be >= 1, got {bucket_ops}")
    requests = trace.requests
    return [
        Trace(requests[i : i + bucket_ops], name=f"{trace.name}.bucket{i // bucket_ops}")
        for i in range(0, len(requests), bucket_ops)
    ]
