"""Columnar bulk trace parsers and the lazily-materialized trace they feed.

The per-line parsers in :mod:`repro.trace.msr`, :mod:`repro.trace.cloudphysics`
and :mod:`repro.trace.csvio` are easy to audit but slow on real dumps: every
record costs a ``str.split``, five scalar conversions, a handful of
:class:`~repro.trace.errors.ParseReport` method calls and an
:class:`~repro.trace.record.IORequest` construction (with its
``__post_init__`` validation).  On the paper's multi-million-op MSR /
CloudPhysics traces that per-record Python work dominates the whole
pipeline now that replay itself is vectorized (:mod:`repro.core.batch`).

This module parses **whole files at once** into numpy column arrays:

1. split the text into candidate lines (blank/comment/header lines removed),
2. hand the candidate list to numpy's compiled CSV engine
   (``np.loadtxt``), which tokenizes and converts the needed columns in C
   with Python-identical ``int``/``float`` semantics (divergences — digit
   separators, non-ASCII digits, out-of-``int64``-range values — all raise
   and trigger the fallback; float conversion is correctly rounded in both),
3. fold the op-token column to booleans with one deduplicated
   token-set membership test instead of n scalar comparisons.

The result feeds a :class:`ColumnarTrace` — a :class:`~repro.trace.trace.Trace`
whose request list is **lazy**: vectorized consumers (``as_arrays()``, the
batch NoLS kernel, every :mod:`repro.analysis.fast` kernel) read the columns
directly and never pay for per-record objects; reference-path consumers
(the per-request simulator, ``trace.requests``) trigger materialization
transparently.

**Exactness contract.**  The bulk parsers are *exactly* equivalent to the
per-line reference parsers, enforced by ``tests/differential/``.  They keep
that promise the same way :mod:`repro.core.batch` does — by refusing the
cases they cannot reproduce bit-for-bit: any malformed record, ragged field
counts, unknown op tokens, quoting, out-of-range addresses, anything a
conversion rejects, raises the internal :class:`_Fallback` and the whole
parse is redone by the reference per-line parser (identical errors, line
numbers and :class:`ParseReport` accounting).  Clean files — the common
case by far — never touch the fallback.

``COLUMNAR_PARSER_VERSION`` identifies the parse semantics for the
compiled-trace store (:mod:`repro.trace.store`); bump it whenever a bulk
parser's observable output could change.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.trace.errors import ParseReport, make_report
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.util.units import SECTOR_BYTES

#: Identity of the bulk-parse semantics, recorded in compiled-trace store
#: headers so a parser change invalidates previously compiled traces.
COLUMNAR_PARSER_VERSION = 1

_TICKS_PER_SECOND = 10_000_000  # Windows FILETIME resolution: 100 ns

_READ_TOKENS = np.array(["r", "read", "rd", "0"])
_WRITE_TOKENS = np.array(["w", "write", "wr", "1"])
_CP_HEADER_TOKENS = ("timestamp_us", "timestamp", "ts")


class _Fallback(Exception):
    """Internal: the input needs the per-line reference parser."""


class TraceColumns:
    """The four parallel column arrays describing a trace.

    All arrays are made read-only on construction and share one length:
    ``timestamp`` (float64 seconds), ``is_read`` (bool), ``lba`` and
    ``length`` (int64 sectors).  This is the unit of exchange between the
    bulk parsers, :class:`ColumnarTrace` and the compiled-trace store.
    """

    __slots__ = ("timestamp", "is_read", "lba", "length")

    def __init__(self, timestamp, is_read, lba, length) -> None:
        timestamp = np.ascontiguousarray(timestamp, dtype=np.float64)
        is_read = np.ascontiguousarray(is_read, dtype=bool)
        lba = np.ascontiguousarray(lba, dtype=np.int64)
        length = np.ascontiguousarray(length, dtype=np.int64)
        n = len(timestamp)
        if not (len(is_read) == len(lba) == len(length) == n):
            raise ValueError(
                "column lengths differ: "
                f"{n}/{len(is_read)}/{len(lba)}/{len(length)}"
            )
        for column in (timestamp, is_read, lba, length):
            column.setflags(write=False)
        self.timestamp = timestamp
        self.is_read = is_read
        self.lba = lba
        self.length = length

    def __len__(self) -> int:
        return len(self.timestamp)

    @classmethod
    def empty(cls) -> "TraceColumns":
        return cls(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=bool),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceColumns":
        """Extract columns from any trace (free for a :class:`ColumnarTrace`)."""
        if isinstance(trace, ColumnarTrace):
            return trace.columns
        is_read, lba, length = trace.as_arrays()
        return cls(trace.timestamps(), is_read, lba, length)

    def select(self, index) -> "TraceColumns":
        """Columns for ``trace[index]``-style slicing or boolean masking."""
        return TraceColumns(
            self.timestamp[index],
            self.is_read[index],
            self.lba[index],
            self.length[index],
        )


class ColumnarTrace(Trace):
    """A trace backed by :class:`TraceColumns`, materialized lazily.

    Everything the vectorized paths need — ``len``, ``as_arrays()``,
    ``timestamps()``, ``max_end``, ``read_count``/``write_count``, slicing,
    ``filter`` — is served straight from the columns.  The
    :class:`IORequest` list exists only once a reference-path consumer
    touches ``requests`` / iteration / scalar indexing, and is cached.
    """

    def __init__(self, columns: TraceColumns, name: str = "trace") -> None:
        self._columns = columns
        self._name = name
        self._max_end = None
        self._arrays = (columns.is_read, columns.lba, columns.length)
        self._timestamps = columns.timestamp
        self._read_count = None
        self._materialized: Optional[List[IORequest]] = None
        self.parse_report = None

    @property
    def columns(self) -> TraceColumns:
        return self._columns

    @property
    def _requests(self) -> List[IORequest]:
        # Base-class methods (concat, requests, …) read self._requests;
        # serving it as a property keeps them working unmodified while
        # deferring materialization until one of them actually runs.
        if self._materialized is None:
            cols = self._columns
            read, write = OpType.READ, OpType.WRITE
            # .tolist() converts to Python scalars in C; the comprehension
            # is the one unavoidable per-record pass.
            self._materialized = [
                IORequest(t, read if r else write, a, l)
                for t, r, a, l in zip(
                    cols.timestamp.tolist(),
                    cols.is_read.tolist(),
                    cols.lba.tolist(),
                    cols.length.tolist(),
                )
            ]
        return self._materialized

    @property
    def materialized(self) -> bool:
        """True once the per-record ``IORequest`` list has been built."""
        return self._materialized is not None

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self._requests)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sliced = ColumnarTrace(self._columns.select(index), name=self._name)
            return sliced
        cols = self._columns
        i = int(index)
        return IORequest(
            timestamp=float(cols.timestamp[i]),
            op=OpType.READ if cols.is_read[i] else OpType.WRITE,
            lba=int(cols.lba[i]),
            length=int(cols.length[i]),
        )

    def __repr__(self) -> str:
        return f"ColumnarTrace(name={self._name!r}, n_ops={len(self._columns)})"

    def filter(self, op: OpType) -> "ColumnarTrace":
        mask = (
            self._columns.is_read
            if op is OpType.READ
            else ~self._columns.is_read
        )
        return ColumnarTrace(
            self._columns.select(mask), name=f"{self._name}.{op.value}"
        )

    def renamed(self, name: str) -> "ColumnarTrace":
        renamed = ColumnarTrace(self._columns, name=name)
        renamed._materialized = self._materialized
        return renamed


# --------------------------------------------------------------------- #
# Shared conversion helpers
# --------------------------------------------------------------------- #


#: Width of op-token string fields handed to ``np.loadtxt``.  Longer
#: fields are silently truncated by numpy, which could turn an invalid
#: token into a valid one — ``_parse_ops`` falls back on any full-width
#: token so truncation can never change the outcome.
_OP_WIDTH = 16

# CloudPhysics and the native CSV format share a leading
# timestamp,op,lba,length column layout (usecols needs index 3, so a line
# with fewer than the reference's four fields raises -> fallback).
_TS_OP_LBA_LEN = [
    ("ts", np.float64),
    ("op", f"U{_OP_WIDTH}"),
    ("lba", np.int64),
    ("length", np.int64),
]


def _load_table(candidates: Sequence[str], dtype, usecols) -> np.ndarray:
    """Parse candidate lines with numpy's compiled CSV engine.

    Anything the engine rejects — ragged field counts, malformed numbers,
    int64 overflow, quoting — raises :class:`_Fallback`.  A row-count
    mismatch (the engine silently skips lines it considers empty) falls
    back too, since it would break per-line record accounting.
    """
    try:
        table = np.loadtxt(
            candidates,
            delimiter=",",
            dtype=dtype,
            usecols=usecols,
            comments=None,
            ndmin=1,
        )
    except ValueError:
        raise _Fallback from None
    if len(table) != len(candidates):
        raise _Fallback
    return table


def _parse_ops(column: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`OpType.parse`: bool is_read column or fallback.

    Clean traces carry a handful of distinct op spellings, so the strip /
    lower / membership work runs on the deduplicated token set only.
    """
    unique, inverse = np.unique(column, return_inverse=True)
    if int(np.char.str_len(unique).max()) >= _OP_WIDTH:
        raise _Fallback  # field may have been truncated to the dtype width
    tokens = np.char.lower(np.char.strip(unique))
    is_read = np.isin(tokens, _READ_TOKENS)
    if not np.all(is_read | np.isin(tokens, _WRITE_TOKENS)):
        raise _Fallback
    return is_read[inverse]


def _check_geometry_bulk(
    lba: np.ndarray, length: np.ndarray, capacity_sectors: Optional[int]
) -> None:
    """Vectorized :func:`repro.trace.errors.check_geometry`; any violation
    needs per-line error accounting, so it falls back wholesale."""
    if len(lba) and int(lba.min()) < 0:
        raise _Fallback
    if capacity_sectors is not None and len(lba):
        if int((lba + length).max()) > capacity_sectors:
            raise _Fallback


def _truncate_at_max_ops(
    accepted: np.ndarray, max_ops: Optional[int]
) -> Optional[int]:
    """Candidate-line count the reference parser consumes under ``max_ops``.

    The reference breaks out of its loop immediately after appending the
    ``max_ops``-th request, so later lines are never counted as records.
    Returns the number of candidate lines consumed, or None for "all".
    (``max_ops <= 0`` behaves like 1: the reference checks the bound only
    *after* an append.)
    """
    if max_ops is None:
        return None
    effective = max(max_ops, 1)
    cumulative = np.cumsum(accepted)
    if not len(cumulative) or int(cumulative[-1]) < effective:
        return None
    return int(np.searchsorted(cumulative, effective, side="left")) + 1


def _finish_report(
    report: ParseReport, records: int, accepted: int, filtered: int = 0
) -> ParseReport:
    """Fold a clean bulk parse into the (possibly pre-made) report."""
    report.records += records
    report.accepted += accepted
    report.filtered += filtered
    return report


# --------------------------------------------------------------------- #
# MSR Cambridge
# --------------------------------------------------------------------- #


def parse_msr_text(
    text: str,
    name: str = "msr",
    disk_number: Optional[int] = None,
    max_ops: Optional[int] = None,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
) -> Trace:
    """Bulk-parse MSR-format CSV text (see :func:`repro.trace.msr.parse_msr_lines`).

    Clean input returns a lazy :class:`ColumnarTrace`; anything the bulk
    path cannot reproduce exactly is re-parsed by the per-line reference
    parser (identical results, reports and errors either way).
    """
    report = make_report(report, name, policy)
    try:
        return _parse_msr_fast(
            text, name, disk_number, max_ops, capacity_sectors, report
        )
    except _Fallback:
        from repro.trace.msr import parse_msr_lines

        return parse_msr_lines(
            text.split("\n"),
            name=name,
            disk_number=disk_number,
            max_ops=max_ops,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )


def _parse_msr_fast(
    text: str,
    name: str,
    disk_number: Optional[int],
    max_ops: Optional[int],
    capacity_sectors: Optional[int],
    report: ParseReport,
) -> Trace:
    candidates = [
        stripped
        for stripped in (line.strip() for line in text.split("\n"))
        if stripped and not stripped.startswith("#")
    ]
    if not candidates:
        trace = ColumnarTrace(TraceColumns.empty(), name=name)
        trace.parse_report = report
        return trace
    # Columns: ticks, hostname (unused), disk, op, offset_bytes, size_bytes.
    # usecols needs index 5, so any line with fewer than the reference's
    # six fields makes the engine raise -> fallback.
    table = _load_table(
        candidates,
        dtype=[
            ("ticks", np.int64),
            ("disk", np.int64),
            ("op", f"U{_OP_WIDTH}"),
            ("offset", np.int64),
            ("size", np.int64),
        ],
        usecols=(0, 2, 3, 4, 5),
    )
    ticks = table["ticks"]
    disk = table["disk"]
    is_read = _parse_ops(table["op"])
    offset_bytes = table["offset"]
    size_bytes = table["size"]
    if len(size_bytes) and int(size_bytes.min()) <= 0:
        raise _Fallback  # zero/negative sizes need per-line error accounting
    lba = offset_bytes // SECTOR_BYTES
    length = -(-size_bytes // SECTOR_BYTES)  # bytes_to_sectors, vectorized
    _check_geometry_bulk(lba, length, capacity_sectors)

    accepted_mask = (
        disk == disk_number if disk_number is not None else np.ones(len(ticks), bool)
    )
    stop = _truncate_at_max_ops(accepted_mask, max_ops)
    if stop is not None:
        accepted_mask = accepted_mask[:stop]
        ticks, is_read = ticks[:stop], is_read[:stop]
        lba, length = lba[:stop], length[:stop]
    records = len(accepted_mask)
    accepted = int(np.count_nonzero(accepted_mask))

    if accepted:
        first_ticks = int(ticks[accepted_mask.argmax()])
        timestamp = (ticks[accepted_mask] - first_ticks) / _TICKS_PER_SECOND
        columns = TraceColumns(
            timestamp,
            is_read[accepted_mask],
            lba[accepted_mask],
            length[accepted_mask],
        )
    else:
        columns = TraceColumns.empty()
    trace = ColumnarTrace(columns, name=name)
    trace.parse_report = _finish_report(
        report, records, accepted, filtered=records - accepted
    )
    return trace


# --------------------------------------------------------------------- #
# CloudPhysics
# --------------------------------------------------------------------- #


def parse_cloudphysics_text(
    text: str,
    name: str = "cloudphysics",
    max_ops: Optional[int] = None,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
) -> Trace:
    """Bulk-parse CloudPhysics-style CSV text (see
    :func:`repro.trace.cloudphysics.parse_cloudphysics_lines`)."""
    report = make_report(report, name, policy)
    try:
        return _parse_cloudphysics_fast(
            text, name, max_ops, capacity_sectors, report
        )
    except _Fallback:
        from repro.trace.cloudphysics import parse_cloudphysics_lines

        return parse_cloudphysics_lines(
            text.split("\n"),
            name=name,
            max_ops=max_ops,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )


def _parse_cloudphysics_fast(
    text: str,
    name: str,
    max_ops: Optional[int],
    capacity_sectors: Optional[int],
    report: ParseReport,
) -> Trace:
    candidates = []
    for line in text.split("\n"):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        # The reference skips any line whose first field is a header token.
        if stripped.split(",", 1)[0].strip().lower() in _CP_HEADER_TOKENS:
            continue
        candidates.append(stripped)
    if not candidates:
        trace = ColumnarTrace(TraceColumns.empty(), name=name)
        trace.parse_report = report
        return trace
    table = _load_table(candidates, dtype=_TS_OP_LBA_LEN, usecols=(0, 1, 2, 3))
    ts_us = table["ts"]
    is_read = _parse_ops(table["op"])
    lba = table["lba"]
    length = table["length"]
    if len(length) and int(length.min()) <= 0:
        raise _Fallback
    _check_geometry_bulk(lba, length, capacity_sectors)

    stop = _truncate_at_max_ops(np.ones(len(ts_us), bool), max_ops)
    if stop is not None:
        ts_us, is_read = ts_us[:stop], is_read[:stop]
        lba, length = lba[:stop], length[:stop]
    records = len(ts_us)

    timestamp = (ts_us - ts_us[0]) / 1e6
    trace = ColumnarTrace(
        TraceColumns(timestamp, is_read, lba, length), name=name
    )
    trace.parse_report = _finish_report(report, records, records)
    return trace


# --------------------------------------------------------------------- #
# Native CSV
# --------------------------------------------------------------------- #


def parse_csv_text(
    text: str,
    name: str = "trace",
    report_name: Optional[str] = None,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
) -> Trace:
    """Bulk-parse native-format CSV text (see
    :func:`repro.trace.csvio.read_csv_trace`).

    ``report_name`` overrides the name used in the parse report / error
    messages (the file reader passes the full path there, per the
    reference behaviour).
    """
    report = make_report(report, report_name or name, policy)
    try:
        return _parse_csv_fast(text, name, capacity_sectors, report)
    except _Fallback:
        import csv
        import io

        from repro.trace.csvio import read_csv_rows

        trace = read_csv_rows(
            csv.reader(io.StringIO(text)),
            trace_name=name,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )
        return trace


def _parse_csv_fast(
    text: str,
    name: str,
    capacity_sectors: Optional[int],
    report: ParseReport,
) -> Trace:
    if '"' in text or "\r" in text:
        raise _Fallback  # quoting / exotic newlines: csv.reader territory
    lines = text.split("\n")
    candidates = []
    for line_no, line in enumerate(lines, start=1):
        if not line or line.split(",", 1)[0].startswith("#"):
            continue
        if line_no == 1 and line.split(",", 1)[0].strip().lower() == "timestamp":
            continue
        candidates.append(line)
    if not candidates:
        trace = ColumnarTrace(TraceColumns.empty(), name=name)
        trace.parse_report = report
        return trace
    table = _load_table(candidates, dtype=_TS_OP_LBA_LEN, usecols=(0, 1, 2, 3))
    timestamp = table["ts"]
    is_read = _parse_ops(table["op"])
    lba = table["lba"]
    length = table["length"]
    if len(length) and int(length.min()) <= 0:
        raise _Fallback
    _check_geometry_bulk(lba, length, capacity_sectors)

    trace = ColumnarTrace(
        TraceColumns(timestamp, is_read, lba, length), name=name
    )
    trace.parse_report = _finish_report(report, len(candidates), len(candidates))
    return trace
