"""Parser for CloudPhysics-style block trace dumps.

The CloudPhysics traces (paper citation [21], SHARDS, FAST'15) were never
publicly released; dumps circulated in research collaborations are CSV with
the columns::

    timestamp_us,op,lba,length_sectors

(timestamps in microseconds, addresses already in sectors).  This parser
accepts that shape, tolerating an optional header row and an optional extra
latency column.  As with the MSR parser, the experiment harness substitutes
synthetic archetypes when no file is available.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace


def parse_cloudphysics_lines(
    lines: Iterable[str],
    name: str = "cloudphysics",
    max_ops: Optional[int] = None,
) -> Trace:
    """Parse CloudPhysics-style CSV lines into a :class:`Trace`.

    Timestamps are rebased so the first record is at t = 0.
    """
    requests = []
    first_us: Optional[float] = None
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = [f.strip() for f in line.split(",")]
        if fields[0].lower() in ("timestamp_us", "timestamp", "ts"):
            continue
        if len(fields) < 4:
            raise ValueError(
                f"{name}:{line_no}: expected >=4 CloudPhysics fields, got {len(fields)}"
            )
        try:
            ts_us = float(fields[0])
            op = OpType.parse(fields[1])
            lba = int(fields[2])
            length = int(fields[3])
        except ValueError as exc:
            raise ValueError(f"{name}:{line_no}: bad CloudPhysics record: {exc}") from exc
        if length <= 0:
            continue
        if first_us is None:
            first_us = ts_us
        requests.append(
            IORequest(
                timestamp=(ts_us - first_us) / 1e6,
                op=op,
                lba=lba,
                length=length,
            )
        )
        if max_ops is not None and len(requests) >= max_ops:
            break
    return Trace(requests, name=name)


def parse_cloudphysics_file(
    path: Union[str, Path],
    max_ops: Optional[int] = None,
) -> Trace:
    """Parse a CloudPhysics-style trace file."""
    path = Path(path)
    with path.open() as handle:
        return parse_cloudphysics_lines(handle, name=path.stem, max_ops=max_ops)
