"""Parser for CloudPhysics-style block trace dumps.

The CloudPhysics traces (paper citation [21], SHARDS, FAST'15) were never
publicly released; dumps circulated in research collaborations are CSV with
the columns::

    timestamp_us,op,lba,length_sectors

(timestamps in microseconds, addresses already in sectors).  This parser
accepts that shape, tolerating an optional header row and an optional extra
latency column.  As with the MSR parser, malformed records follow the
shared ``strict`` | ``lenient`` | ``quarantine`` policy of
:mod:`repro.trace.errors`, and the :class:`ParseReport` is attached to the
returned trace as ``trace.parse_report``.  The experiment harness
substitutes synthetic archetypes when no file is available.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.trace.errors import PARSE_ENGINES, ParseReport, check_geometry, make_report
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.util.validation import check_choice


def parse_cloudphysics_lines(
    lines: Iterable[str],
    name: str = "cloudphysics",
    max_ops: Optional[int] = None,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
) -> Trace:
    """Parse CloudPhysics-style CSV lines into a :class:`Trace`.

    Timestamps are rebased so the first record is at t = 0.  Zero- and
    negative-length records, out-of-range addresses (when
    ``capacity_sectors`` is given) and otherwise unparseable lines follow
    ``policy``.
    """
    report = make_report(report, name, policy)
    requests = []
    first_us: Optional[float] = None
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = [f.strip() for f in line.split(",")]
        if fields[0].lower() in ("timestamp_us", "timestamp", "ts"):
            continue
        report.note_record()
        if len(fields) < 4:
            report.note_error(
                line_no, line, f"expected >=4 CloudPhysics fields, got {len(fields)}"
            )
            continue
        try:
            ts_us = float(fields[0])
            op = OpType.parse(fields[1])
            lba = int(fields[2])
            length = int(fields[3])
        except ValueError as exc:
            report.note_error(line_no, line, f"bad CloudPhysics record: {exc}")
            continue
        if length <= 0:
            report.note_error(line_no, line, f"length must be > 0 sectors, got {length}")
            continue
        geometry_error = check_geometry(lba, length, capacity_sectors)
        if geometry_error is not None:
            report.note_error(line_no, line, geometry_error)
            continue
        if first_us is None:
            first_us = ts_us
        report.note_accepted()
        requests.append(
            IORequest(
                timestamp=(ts_us - first_us) / 1e6,
                op=op,
                lba=lba,
                length=length,
            )
        )
        if max_ops is not None and len(requests) >= max_ops:
            break
    trace = Trace(requests, name=name)
    trace.parse_report = report
    return trace


def parse_cloudphysics_file(
    path: Union[str, Path],
    max_ops: Optional[int] = None,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
    engine: str = "columnar",
) -> Trace:
    """Parse a CloudPhysics-style trace file.

    ``engine="columnar"`` (default) bulk parses via
    :mod:`repro.trace.columnar` — exactly equivalent to the per-line
    parser, to which it falls back on any input it cannot reproduce
    bit-for-bit; ``engine="reference"`` forces the per-line parser.
    """
    check_choice("engine", engine, PARSE_ENGINES)
    path = Path(path)
    if engine == "columnar":
        from repro.trace.columnar import parse_cloudphysics_text

        return parse_cloudphysics_text(
            path.read_text(),
            name=path.stem,
            max_ops=max_ops,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )
    with path.open() as handle:
        return parse_cloudphysics_lines(
            handle,
            name=path.stem,
            max_ops=max_ops,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )
