"""In-memory trace container.

A :class:`Trace` is a named, ordered sequence of
:class:`~repro.trace.record.IORequest` plus the derived quantities the
simulator needs up front (maximum LBA, so the log-structured write frontier
can start above it, per the paper's "unwritten data sits at its LBA" rule).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.trace.record import IORequest, OpType


class Trace:
    """An ordered block I/O trace.

    Args:
        requests: Requests in replay order.  Timestamps are expected to be
            non-decreasing but this is not enforced (some real traces carry
            completion-time jitter).
        name: Workload identifier used in reports (e.g. ``"w91"``).
    """

    def __init__(self, requests: Iterable[IORequest], name: str = "trace") -> None:
        self._requests: List[IORequest] = list(requests)
        self._name = name
        self._max_end: Optional[int] = None
        self._arrays = None
        self._timestamps = None
        self._read_count: Optional[int] = None
        #: Filled by the parsers in :mod:`repro.trace` with the
        #: :class:`~repro.trace.errors.ParseReport` of the parse that built
        #: this trace; None for synthetic or derived traces.
        self.parse_report = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def requests(self) -> Sequence[IORequest]:
        """The underlying request list (treat as read-only)."""
        return self._requests

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self._requests)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._requests[index], name=self._name)
        return self._requests[index]

    def __repr__(self) -> str:
        return f"Trace(name={self._name!r}, n_ops={len(self._requests)})"

    @property
    def max_end(self) -> int:
        """One past the highest sector touched by any request (0 if empty).

        The log-structured translator places its initial write frontier here
        so pre-trace ("unwritten") data can be assumed resident at
        PBA = LBA below it.
        """
        if self._max_end is None:
            if self._arrays is not None:
                _, lba, length = self._arrays
                self._max_end = int((lba + length).max()) if len(lba) else 0
            else:
                self._max_end = max((r.end for r in self._requests), default=0)
        return self._max_end

    def as_arrays(self):
        """Decompose into ``(is_read, lba, length)`` numpy arrays, cached.

        The arrays are built once per trace and shared by every caller
        (the NoLS batch kernel, the :mod:`repro.analysis.fast` paths), so
        repeated vectorized analyses of one trace pay the Python→numpy
        conversion only once.  The returned arrays are **read-only**
        (``writeable=False``) — they are shared between callers, so a
        mutation would silently corrupt every later analysis.  Copy first
        if you need scratch space.
        """
        if self._arrays is None:
            import numpy as np

            n = len(self._requests)
            packed = np.fromiter(
                (
                    (r.op is OpType.READ, r.lba, r.length)
                    for r in self._requests
                ),
                dtype=[("is_read", "?"), ("lba", "<i8"), ("length", "<i8")],
                count=n,
            )
            columns = tuple(
                np.ascontiguousarray(packed[field])
                for field in ("is_read", "lba", "length")
            )
            for column in columns:
                column.setflags(write=False)
            self._arrays = columns
        return self._arrays

    def content_key(self) -> str:
        """SHA-256 identity of the replay-relevant content, cached.

        Hashes the name plus the ``(is_read, lba, length)`` columns —
        everything a replay or recorded fragment stream can observe.
        Timestamps are deliberately excluded (no simulator path reads
        them), so e.g. a re-parsed trace with jittered completion stamps
        still shares recorded streams.  Two traces with equal keys produce
        bit-identical replay results under every configuration; the
        persistent :class:`~repro.core.stream_store.StreamStore` and the
        :class:`~repro.experiments.sweep.SweepEngine` stream LRU key on
        this, so logically identical traces from different load paths
        (fresh synthesis, compiled-store mmap, re-parse) share one
        recording.
        """
        key = getattr(self, "_content_key", None)
        if key is None:
            import hashlib

            import numpy as np

            is_read, lba, length = self.as_arrays()
            digest = hashlib.sha256()
            digest.update(f"{self._name}\x00{len(self)}\x00".encode())
            for column in (is_read, lba, length):
                digest.update(np.ascontiguousarray(column).tobytes())
            key = digest.hexdigest()
            self._content_key = key
        return key

    def timestamps(self):
        """The per-request timestamp column as a read-only float64 array."""
        if self._timestamps is None:
            import numpy as np

            stamps = np.fromiter(
                (r.timestamp for r in self._requests),
                dtype=np.float64,
                count=len(self._requests),
            )
            stamps.setflags(write=False)
            self._timestamps = stamps
        return self._timestamps

    @property
    def read_count(self) -> int:
        if self._read_count is None:
            if self._arrays is not None:
                import numpy as np

                self._read_count = int(np.count_nonzero(self._arrays[0]))
            else:
                self._read_count = sum(1 for r in self._requests if r.is_read)
        return self._read_count

    @property
    def write_count(self) -> int:
        return len(self) - self.read_count

    def filter(self, op: OpType) -> "Trace":
        """Return a new trace containing only requests of direction ``op``."""
        return Trace(
            (r for r in self._requests if r.op is op),
            name=f"{self._name}.{op.value}",
        )

    def renamed(self, name: str) -> "Trace":
        """Return the same request sequence under a different name."""
        return Trace(self._requests, name=name)

    def concat(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Concatenate two traces, offsetting the second trace's timestamps.

        The second trace's timestamps are shifted so they start right after
        this trace's last timestamp, preserving monotonicity.
        """
        base = self._requests[-1].timestamp if self._requests else 0.0
        first_other = other._requests[0].timestamp if other._requests else 0.0
        shift = base - first_other + 1e-6 if other._requests else 0.0
        shifted = [
            IORequest(r.timestamp + shift, r.op, r.lba, r.length)
            for r in other._requests
        ]
        return Trace(self._requests + shifted, name=name or self._name)
