"""Shared error policy for the trace parsers.

Real trace dumps are dirty: truncated final lines, non-numeric fields,
zero-length I/Os, offsets past the end of the disk.  Every parser in
:mod:`repro.trace` routes malformed records through one of three policies:

* ``strict`` — raise :class:`TraceParseError` on the first bad record
  (the historical behaviour, and the default).
* ``lenient`` — skip bad records, counting them in a :class:`ParseReport`
  and keeping the first few as :class:`ParseIssue` samples.
* ``quarantine`` — like ``lenient``, but additionally capture every bad
  raw line verbatim so it can be inspected or re-parsed later.

A :class:`ParseReport` accounts for every candidate record exactly once::

    report.records == report.accepted + report.skipped
                      + report.quarantined + report.filtered

``filtered`` counts well-formed records dropped on purpose (disk-number
filter); blank lines and ``#`` comments are never counted as records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.util.validation import check_choice

PARSE_POLICIES = ("strict", "lenient", "quarantine")
"""Valid values for the parsers' ``policy`` argument."""

PARSE_ENGINES = ("columnar", "reference")
"""Valid values for the file parsers' ``engine`` argument: ``columnar``
bulk parses via :mod:`repro.trace.columnar` (exactly equivalent, with
wholesale fallback), ``reference`` forces the per-line parsers."""

_MAX_RAW_LINE = 200  # sample/quarantine storage truncates huge raw lines


class TraceParseError(ValueError):
    """A malformed trace record under the ``strict`` policy.

    Attributes:
        source: Trace name the parser was given.
        line_no: 1-based line number of the offending record.
        line: The raw line (truncated to a sane length).
        reason: Human-readable description of the defect.
    """

    def __init__(self, source: str, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"{source}:{line_no}: {reason}")
        self.source = source
        self.line_no = line_no
        self.line = line[:_MAX_RAW_LINE]
        self.reason = reason


@dataclass(frozen=True)
class ParseIssue:
    """One malformed record retained in a :class:`ParseReport`."""

    line_no: int
    reason: str
    line: str


@dataclass
class ParseReport:
    """Accounting of one parse run (see module docstring for the invariant).

    Attributes:
        name: Trace name the parser was given.
        policy: The error policy in force.
        records: Candidate records seen (blank/comment lines excluded).
        accepted: Records converted into requests.
        skipped: Malformed records dropped under ``lenient``.
        quarantined: Malformed records captured under ``quarantine``
            (count; the raw lines are in ``quarantine``).
        filtered: Well-formed records intentionally dropped (e.g. the MSR
            disk-number filter).
        errors: First ``max_error_samples`` malformed records, any policy.
        quarantine: Every malformed raw line, ``quarantine`` policy only.
    """

    name: str = "trace"
    policy: str = "strict"
    records: int = 0
    accepted: int = 0
    skipped: int = 0
    quarantined: int = 0
    filtered: int = 0
    errors: List[ParseIssue] = field(default_factory=list)
    quarantine: List[ParseIssue] = field(default_factory=list)
    max_error_samples: int = 10

    def __post_init__(self) -> None:
        check_choice("policy", self.policy, PARSE_POLICIES)

    @property
    def malformed(self) -> int:
        """Total bad records encountered (skipped + quarantined)."""
        return self.skipped + self.quarantined

    @property
    def balanced(self) -> bool:
        """True when every candidate record is accounted for exactly once."""
        return self.records == (
            self.accepted + self.skipped + self.quarantined + self.filtered
        )

    def note_record(self) -> None:
        """Count one candidate (non-blank, non-comment) input record."""
        self.records += 1

    def note_accepted(self) -> None:
        self.accepted += 1

    def note_filtered(self) -> None:
        self.filtered += 1

    def note_error(self, line_no: int, line: str, reason: str) -> None:
        """Account one malformed record per the policy.

        Raises :class:`TraceParseError` under ``strict``; otherwise counts
        the record, samples it into ``errors``, and (under ``quarantine``)
        captures the raw line.
        """
        if self.policy == "strict":
            raise TraceParseError(self.name, line_no, line, reason)
        issue = ParseIssue(line_no=line_no, reason=reason, line=line[:_MAX_RAW_LINE])
        if len(self.errors) < self.max_error_samples:
            self.errors.append(issue)
        if self.policy == "quarantine":
            self.quarantined += 1
            self.quarantine.append(issue)
        else:
            self.skipped += 1

    def summary(self) -> dict:
        """JSON-friendly digest (used by exhibit dumps and run manifests)."""
        return {
            "name": self.name,
            "policy": self.policy,
            "records": self.records,
            "accepted": self.accepted,
            "skipped": self.skipped,
            "quarantined": self.quarantined,
            "filtered": self.filtered,
            "error_samples": [
                {"line_no": i.line_no, "reason": i.reason, "line": i.line}
                for i in self.errors
            ],
        }

    def __str__(self) -> str:
        return (
            f"ParseReport({self.name}: policy={self.policy}, "
            f"records={self.records}, accepted={self.accepted}, "
            f"skipped={self.skipped}, quarantined={self.quarantined}, "
            f"filtered={self.filtered})"
        )


def make_report(
    report: Optional[ParseReport], name: str, policy: str
) -> ParseReport:
    """Return ``report`` or a fresh one; either way validate the policy.

    Parsers call this so a caller may pass a pre-made report (to aggregate
    several files into one accounting) or none at all.
    """
    check_choice("policy", policy, PARSE_POLICIES)
    if report is None:
        return ParseReport(name=name, policy=policy)
    report.policy = policy
    return report


def check_geometry(
    lba: int, length: int, capacity_sectors: Optional[int]
) -> Optional[str]:
    """Validate a record's address range against the disk geometry.

    Returns an error reason string for out-of-range records, or None when
    the record fits (or no capacity was given).  Negative LBAs are always
    out of range.
    """
    if lba < 0:
        return f"lba must be >= 0, got {lba}"
    if capacity_sectors is not None and lba + length > capacity_sectors:
        return (
            f"record [{lba}, {lba + length}) exceeds disk capacity "
            f"{capacity_sectors} sectors"
        )
    return None
