"""The single I/O record type shared across the simulator.

All addresses and lengths are in 512-byte sectors (see
:mod:`repro.util.units`); timestamps are seconds since the start of the
trace.  The record is immutable so that traces can be shared freely between
baseline and log-structured replays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpType(enum.Enum):
    """Block operation direction.

    The paper classifies a seek as a *read seek* or a *write seek* according
    to the direction of the second of the two operations involved, so the
    direction travels with every request.
    """

    READ = "R"
    WRITE = "W"

    @classmethod
    def parse(cls, token: str) -> "OpType":
        """Parse the direction tokens found in real trace files.

        Accepts the MSR ``Read``/``Write`` words, single letters, and the
        lower-case variants CloudPhysics-style dumps use.

        >>> OpType.parse("Read") is OpType.READ
        True
        >>> OpType.parse("w") is OpType.WRITE
        True
        """
        normalized = token.strip().lower()
        if normalized in ("r", "read", "rd", "0"):
            return cls.READ
        if normalized in ("w", "write", "wr", "1"):
            return cls.WRITE
        raise ValueError(f"unrecognized operation token: {token!r}")

    @property
    def is_read(self) -> bool:
        return self is OpType.READ

    @property
    def is_write(self) -> bool:
        return self is OpType.WRITE


@dataclass(frozen=True)
class IORequest:
    """One block I/O operation.

    Attributes:
        timestamp: Seconds since the start of the trace (monotone
            non-decreasing within a trace; purely informational for the seek
            model, which is ordering-based).
        op: Operation direction.
        lba: First logical sector addressed.
        length: Number of sectors addressed; must be positive.
    """

    timestamp: float
    op: OpType
    lba: int
    length: int

    def __post_init__(self) -> None:
        if isinstance(self.lba, bool) or not isinstance(self.lba, int):
            raise TypeError(f"lba must be int, got {type(self.lba).__name__}")
        if isinstance(self.length, bool) or not isinstance(self.length, int):
            raise TypeError(f"length must be int, got {type(self.length).__name__}")
        if self.lba < 0:
            raise ValueError(f"lba must be >= 0, got {self.lba}")
        if self.length <= 0:
            raise ValueError(f"length must be > 0, got {self.length}")
        if not isinstance(self.op, OpType):
            raise TypeError(f"op must be OpType, got {type(self.op).__name__}")

    @property
    def end(self) -> int:
        """One past the last sector addressed (exclusive end)."""
        return self.lba + self.length

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    def overlaps(self, other: "IORequest") -> bool:
        """True if this request shares at least one sector with ``other``."""
        return self.lba < other.end and other.lba < self.end

    @staticmethod
    def read(lba: int, length: int, timestamp: float = 0.0) -> "IORequest":
        """Shorthand constructor used heavily in tests and examples."""
        return IORequest(timestamp=timestamp, op=OpType.READ, lba=lba, length=length)

    @staticmethod
    def write(lba: int, length: int, timestamp: float = 0.0) -> "IORequest":
        """Shorthand constructor used heavily in tests and examples."""
        return IORequest(timestamp=timestamp, op=OpType.WRITE, lba=lba, length=length)
