"""Persistent compiled-trace store.

Parsing a multi-million-op trace dump — even through the columnar bulk
parsers (:mod:`repro.trace.columnar`) — still costs a full text scan per
run.  Experiments re-read the same traces constantly (every exhibit,
every seed, every ``--fast``/reference comparison), so this module caches
the *parsed columns* on disk: one ``.npz`` per (source, parse options)
combination holding the four column arrays plus a JSON header with
everything needed for correct invalidation.

Store layout (schema 2 — zero-copy)::

    <root>/<sha256-of-meta>/
        header.json     (schema, meta, name, ops, report)
        timestamp.npy   float64[n]      is_read.npy  bool[n]
        lba.npy         int64[n]        length.npy   int64[n]

Each column is a plain page-aligned ``.npy`` (data section at a 4096-byte
offset; see :mod:`repro.util.npystore`), loaded with
``np.load(mmap_mode="r")`` — a hit costs no deserialization and no heap
copy, and every process mapping the same entry shares the OS page cache.
Loaded columns are **read-only** (``writeable=False``) views; a stray
in-place mutation raises instead of silently poisoning the shared entry.
(Schema 1 packed the columns into one ``.npz``, which numpy cannot mmap;
old entries are simply never matched by the schema-2 paths and can be
removed with :meth:`TraceStore.clear`.)

The directory name is the SHA-256 of the canonical JSON of the entry's **meta**
— the complete identity of a parse: trace kind, format, parse policy and
arguments, ``COLUMNAR_PARSER_VERSION``, and (for file sources) the SHA-256
and size of the source bytes.  Any change to the source file, the parse
policy/arguments, or the parser itself therefore lands on a *different*
key, so stale entries can never be served; they simply linger until
:meth:`TraceStore.clear`.

Entries round-trip exactly: the column arrays are the parse output
verbatim, and the full :class:`~repro.trace.errors.ParseReport` (counters,
error samples, quarantine) is restored on load.  ``strict``-failing inputs
never reach the store (the parse raises first).

Writes are crash-safe (temp directory + atomic rename, the
:mod:`repro.util.npystore` pattern); a torn or corrupt entry is treated
as a miss and deleted, so the caller's re-store heals it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

import repro
from repro.trace.columnar import COLUMNAR_PARSER_VERSION, ColumnarTrace, TraceColumns
from repro.trace.errors import ParseIssue, ParseReport
from repro.trace.trace import Trace
from repro.util.npystore import commit_entry_dir, load_mmap_npy, remove_entry

STORE_SCHEMA = 2

#: Default store location (overridable per :class:`TraceStore` instance and
#: via the runner's ``--trace-store`` flag).
DEFAULT_STORE_DIR = Path(".repro-trace-store")

_COLUMN_KEYS = ("timestamp", "is_read", "lba", "length")


# --------------------------------------------------------------------- #
# Meta builders — the identity of a parse
# --------------------------------------------------------------------- #


def hash_file(path: Union[str, Path]) -> dict:
    """SHA-256 + size of a source file (the invalidation anchor)."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
            size += len(chunk)
    return {"sha256": digest.hexdigest(), "bytes": size}


def file_meta(
    path: Union[str, Path],
    fmt: str,
    policy: str = "strict",
    **parse_args,
) -> dict:
    """Meta for a parsed trace file.

    ``fmt`` is the parser family (``"msr"`` | ``"cloudphysics"`` |
    ``"csv"``); ``parse_args`` are the remaining parse options
    (``disk_number``, ``max_ops``, ``capacity_sectors``, ...).  The source
    file is hashed here, so building the meta costs one read of the file —
    still far cheaper than parsing it.
    """
    return {
        "kind": "file",
        "format": fmt,
        "policy": policy,
        "args": {k: parse_args[k] for k in sorted(parse_args)},
        "parser_version": COLUMNAR_PARSER_VERSION,
        "source": hash_file(path),
        "name": Path(path).stem,
    }


def synthetic_meta(name: str, seed: int, scale: float) -> dict:
    """Meta for a synthesized Table I workload.

    Keyed on the generator inputs plus the library version — synthesis is
    deterministic given (name, seed, scale), and a release may legitimately
    change the generator, so the version stands in for a "generator hash".
    """
    return {
        "kind": "synthetic",
        "name": name,
        "seed": seed,
        "scale": scale,
        "version": repro.__version__,
    }


def meta_key(meta: dict) -> str:
    """The store key: SHA-256 of the canonical JSON encoding of ``meta``."""
    canonical = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# --------------------------------------------------------------------- #
# ParseReport (de)serialization
# --------------------------------------------------------------------- #


def _issue_to_dict(issue: ParseIssue) -> dict:
    return {"line_no": issue.line_no, "reason": issue.reason, "line": issue.line}


def _issue_from_dict(data: dict) -> ParseIssue:
    return ParseIssue(
        line_no=data["line_no"], reason=data["reason"], line=data["line"]
    )


def report_to_dict(report: Optional[ParseReport]) -> Optional[dict]:
    """Full (lossless) encoding — unlike ``ParseReport.summary()``."""
    if report is None:
        return None
    return {
        "name": report.name,
        "policy": report.policy,
        "records": report.records,
        "accepted": report.accepted,
        "skipped": report.skipped,
        "quarantined": report.quarantined,
        "filtered": report.filtered,
        "errors": [_issue_to_dict(i) for i in report.errors],
        "quarantine": [_issue_to_dict(i) for i in report.quarantine],
        "max_error_samples": report.max_error_samples,
    }


def report_from_dict(data: Optional[dict]) -> Optional[ParseReport]:
    if data is None:
        return None
    return ParseReport(
        name=data["name"],
        policy=data["policy"],
        records=data["records"],
        accepted=data["accepted"],
        skipped=data["skipped"],
        quarantined=data["quarantined"],
        filtered=data["filtered"],
        errors=[_issue_from_dict(i) for i in data["errors"]],
        quarantine=[_issue_from_dict(i) for i in data["quarantine"]],
        max_error_samples=data["max_error_samples"],
    )


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #


class TraceStore:
    """A directory of compiled (pre-parsed) traces, keyed by parse meta.

    Thread/process-safe for concurrent readers and writers of *different*
    entries; concurrent writers of the *same* entry are benign (the first
    atomic rename wins and the entries are identical by construction).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        #: Lifetime load outcomes for this instance (a hit is a served
        #: compiled entry; a corrupt entry counts as a miss).
        self.hits = 0
        self.misses = 0

    def path_for(self, meta: dict) -> Path:
        return self.root / meta_key(meta)

    def load(self, meta: dict) -> Optional[Trace]:
        """Return the compiled trace for ``meta``, or None on a miss.

        Hits are **zero-copy**: each column is an ``np.load(mmap_mode="r")``
        view of its page-aligned ``.npy``, marked ``writeable=False`` before
        it is handed to :class:`TraceColumns` (which preserves the mmap —
        ``ascontiguousarray`` on an already-contiguous matching-dtype array
        is a no-op view).  A corrupt/torn entry (interrupted write, foreign
        files, schema drift) counts as a miss and is removed so the
        caller's re-store can heal it.
        """
        path = self.path_for(meta)
        try:
            with open(path / "header.json") as handle:
                header = json.load(handle)
            if header.get("schema") != STORE_SCHEMA or header.get("meta") != meta:
                raise ValueError("store entry header mismatch")
            raw = []
            for key in _COLUMN_KEYS:
                column = load_mmap_npy(path / f"{key}.npy")
                column.setflags(write=False)
                raw.append(column)
            if len({len(c) for c in raw}) > 1 or len(raw[0]) != header.get("ops"):
                raise ValueError("store entry column length mismatch")
            columns = TraceColumns(*raw)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            remove_entry(path)
            self.misses += 1
            return None
        self.hits += 1
        trace = ColumnarTrace(columns, name=header["name"])
        trace.parse_report = report_from_dict(header["report"])
        return trace

    def store(self, trace: Trace, meta: dict) -> Path:
        """Compile ``trace`` into the store under ``meta``; returns the path.

        Concurrent writers of the same key are benign: the loser detects
        the winner's published entry (entries are pure functions of their
        key, so the contents are identical), reuses it and counts it as a
        hit instead of a store.
        """
        columns = TraceColumns.from_trace(trace)
        header = {
            "schema": STORE_SCHEMA,
            "meta": meta,
            "name": trace.name,
            "ops": len(columns.lba),
            "report": report_to_dict(trace.parse_report),
        }
        path, won = commit_entry_dir(
            self.path_for(meta),
            {key: getattr(columns, key) for key in _COLUMN_KEYS},
            header,
        )
        if not won:
            self.hits += 1
        return path

    def entries(self):
        """The store's entry paths (empty if the directory doesn't exist).

        Includes legacy schema-1 ``.npz`` files so :meth:`clear` purges
        them too; ``load`` never matches them (entries are directories).
        """
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.iterdir()
            if not path.name.endswith(".tmp")
            and (path.is_dir() or path.suffix == ".npz")
        )

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            remove_entry(path)
            removed += 1
        return removed


# --------------------------------------------------------------------- #
# Convenience: parse-through-store
# --------------------------------------------------------------------- #

_FORMATS = ("msr", "cloudphysics", "csv")


def load_trace(
    path: Union[str, Path],
    fmt: str,
    store: Optional[TraceStore] = None,
    policy: str = "strict",
    **parse_args,
) -> Trace:
    """Parse a trace file through the compiled-trace store.

    On a store hit the source file is hashed but not parsed; on a miss it
    is parsed (columnar engine) and the result is compiled into the store
    for next time.  With ``store=None`` this is just a parse.
    """
    if fmt not in _FORMATS:
        raise ValueError(f"fmt must be one of {_FORMATS}, got {fmt!r}")
    if store is None:
        return _parse(path, fmt, policy, parse_args)
    meta = file_meta(path, fmt, policy=policy, **parse_args)
    cached = store.load(meta)
    if cached is not None:
        return cached
    trace = _parse(path, fmt, policy, parse_args)
    store.store(trace, meta)
    return trace


def _parse(path, fmt: str, policy: str, parse_args: dict) -> Trace:
    if fmt == "msr":
        from repro.trace.msr import parse_msr_file

        return parse_msr_file(path, policy=policy, **parse_args)
    if fmt == "cloudphysics":
        from repro.trace.cloudphysics import parse_cloudphysics_file

        return parse_cloudphysics_file(path, policy=policy, **parse_args)
    from repro.trace.csvio import read_csv_trace

    return read_csv_trace(path, policy=policy, **parse_args)
