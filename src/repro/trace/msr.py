"""Parser for the MSR Cambridge block traces.

The MSR traces ("Write off-loading", Narayanan et al., FAST'08 — the paper's
citation [20]) are CSV files with the columns::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where ``Timestamp`` is a Windows FILETIME (100 ns ticks since 1601-01-01),
``Offset``/``Size`` are in bytes, and ``Type`` is ``Read``/``Write``.  This
module converts them to the library's sector-addressed
:class:`~repro.trace.record.IORequest` form.

The trace files themselves are distributed by SNIA and are not bundled; the
experiment harness substitutes calibrated synthetic archetypes when no trace
file is supplied (see DESIGN.md §2).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.util.units import SECTOR_BYTES, bytes_to_sectors

_TICKS_PER_SECOND = 10_000_000  # Windows FILETIME resolution: 100 ns


def parse_msr_lines(
    lines: Iterable[str],
    name: str = "msr",
    disk_number: Optional[int] = None,
    max_ops: Optional[int] = None,
) -> Trace:
    """Parse MSR-format CSV lines into a :class:`Trace`.

    Args:
        lines: Raw text lines (header-less, as the MSR files are shipped).
        name: Name for the resulting trace.
        disk_number: If given, keep only records for this disk number
            (MSR files multiplex several volumes per host).
        max_ops: Stop after this many accepted records.

    Timestamps are rebased so the first accepted record is at t = 0.
    """
    requests = []
    first_ticks: Optional[int] = None
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 6:
            raise ValueError(f"{name}:{line_no}: expected >=6 MSR fields, got {len(fields)}")
        try:
            ticks = int(fields[0])
            disk = int(fields[2])
            op = OpType.parse(fields[3])
            offset_bytes = int(fields[4])
            size_bytes = int(fields[5])
        except ValueError as exc:
            raise ValueError(f"{name}:{line_no}: bad MSR record: {exc}") from exc
        if disk_number is not None and disk != disk_number:
            continue
        if size_bytes <= 0:
            continue
        if first_ticks is None:
            first_ticks = ticks
        requests.append(
            IORequest(
                timestamp=(ticks - first_ticks) / _TICKS_PER_SECOND,
                op=op,
                lba=offset_bytes // SECTOR_BYTES,
                length=bytes_to_sectors(size_bytes),
            )
        )
        if max_ops is not None and len(requests) >= max_ops:
            break
    return Trace(requests, name=name)


def parse_msr_file(
    path: Union[str, Path],
    disk_number: Optional[int] = None,
    max_ops: Optional[int] = None,
) -> Trace:
    """Parse an MSR trace file (e.g. ``src2_2.csv``)."""
    path = Path(path)
    with path.open() as handle:
        return parse_msr_lines(
            handle, name=path.stem, disk_number=disk_number, max_ops=max_ops
        )
