"""Parser for the MSR Cambridge block traces.

The MSR traces ("Write off-loading", Narayanan et al., FAST'08 — the paper's
citation [20]) are CSV files with the columns::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where ``Timestamp`` is a Windows FILETIME (100 ns ticks since 1601-01-01),
``Offset``/``Size`` are in bytes, and ``Type`` is ``Read``/``Write``.  This
module converts them to the library's sector-addressed
:class:`~repro.trace.record.IORequest` form.

Real dumps are dirty — truncated final lines, zero-length I/Os, garbage
fields — so parsing follows the shared error policy of
:mod:`repro.trace.errors`: ``strict`` (default) raises on the first bad
record, ``lenient`` skips bad records, ``quarantine`` skips and captures
them.  The resulting :class:`~repro.trace.errors.ParseReport` is attached
to the returned trace as ``trace.parse_report``.

The trace files themselves are distributed by SNIA and are not bundled; the
experiment harness substitutes calibrated synthetic archetypes when no trace
file is supplied (see DESIGN.md §2).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.trace.errors import PARSE_ENGINES, ParseReport, check_geometry, make_report
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.util.units import SECTOR_BYTES, bytes_to_sectors
from repro.util.validation import check_choice

_TICKS_PER_SECOND = 10_000_000  # Windows FILETIME resolution: 100 ns


def parse_msr_lines(
    lines: Iterable[str],
    name: str = "msr",
    disk_number: Optional[int] = None,
    max_ops: Optional[int] = None,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
) -> Trace:
    """Parse MSR-format CSV lines into a :class:`Trace`.

    Args:
        lines: Raw text lines (header-less, as the MSR files are shipped).
        name: Name for the resulting trace.
        disk_number: If given, keep only records for this disk number
            (MSR files multiplex several volumes per host).
        max_ops: Stop after this many accepted records.
        policy: Malformed-record handling — ``strict`` | ``lenient`` |
            ``quarantine`` (see :mod:`repro.trace.errors`).
        capacity_sectors: If given, records addressing past this capacity
            are treated as malformed (pass ``DiskGeometry.capacity_sectors``).
        report: Optional pre-made :class:`ParseReport` to aggregate into
            (e.g. across several files); a fresh one is made otherwise.

    Timestamps are rebased so the first accepted record is at t = 0.
    Zero- and negative-size records are malformed (a zero-length I/O cannot
    be replayed) and follow ``policy``.
    """
    report = make_report(report, name, policy)
    requests = []
    first_ticks: Optional[int] = None
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        report.note_record()
        fields = line.split(",")
        if len(fields) < 6:
            report.note_error(
                line_no, line, f"expected >=6 MSR fields, got {len(fields)}"
            )
            continue
        try:
            ticks = int(fields[0])
            disk = int(fields[2])
            op = OpType.parse(fields[3])
            offset_bytes = int(fields[4])
            size_bytes = int(fields[5])
        except ValueError as exc:
            report.note_error(line_no, line, f"bad MSR record: {exc}")
            continue
        if size_bytes <= 0:
            report.note_error(line_no, line, f"size must be > 0 bytes, got {size_bytes}")
            continue
        lba = offset_bytes // SECTOR_BYTES
        length = bytes_to_sectors(size_bytes)
        geometry_error = check_geometry(lba, length, capacity_sectors)
        if geometry_error is not None:
            report.note_error(line_no, line, geometry_error)
            continue
        if disk_number is not None and disk != disk_number:
            report.note_filtered()
            continue
        if first_ticks is None:
            first_ticks = ticks
        report.note_accepted()
        requests.append(
            IORequest(
                timestamp=(ticks - first_ticks) / _TICKS_PER_SECOND,
                op=op,
                lba=lba,
                length=length,
            )
        )
        if max_ops is not None and len(requests) >= max_ops:
            break
    trace = Trace(requests, name=name)
    trace.parse_report = report
    return trace


def parse_msr_file(
    path: Union[str, Path],
    disk_number: Optional[int] = None,
    max_ops: Optional[int] = None,
    policy: str = "strict",
    capacity_sectors: Optional[int] = None,
    report: Optional[ParseReport] = None,
    engine: str = "columnar",
) -> Trace:
    """Parse an MSR trace file (e.g. ``src2_2.csv``).

    ``engine="columnar"`` (default) bulk parses via
    :mod:`repro.trace.columnar` — exactly equivalent to the per-line
    parser, to which it falls back on any input it cannot reproduce
    bit-for-bit; ``engine="reference"`` forces the per-line parser.
    """
    check_choice("engine", engine, PARSE_ENGINES)
    path = Path(path)
    if engine == "columnar":
        from repro.trace.columnar import parse_msr_text

        return parse_msr_text(
            path.read_text(),
            name=path.stem,
            disk_number=disk_number,
            max_ops=max_ops,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )
    with path.open() as handle:
        return parse_msr_lines(
            handle,
            name=path.stem,
            disk_number=disk_number,
            max_ops=max_ops,
            policy=policy,
            capacity_sectors=capacity_sectors,
            report=report,
        )
