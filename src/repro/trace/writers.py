"""Writers for the external trace formats the parsers accept.

Round-trip companions to :mod:`repro.trace.msr` and
:mod:`repro.trace.cloudphysics`: export any :class:`Trace` (synthetic or
parsed) in either on-disk dialect, so archetype traces can be fed to
external tools that consume the original formats.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.trace.trace import Trace
from repro.util.units import SECTOR_BYTES

_FILETIME_EPOCH_TICKS = 128_166_372_000_000_000  # an arbitrary 2007 instant
_TICKS_PER_SECOND = 10_000_000


def write_msr_trace(
    trace: Trace,
    path: Union[str, Path],
    hostname: str = "host",
    disk_number: int = 0,
) -> None:
    """Write ``trace`` in MSR Cambridge CSV form.

    Columns: ``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime``
    with FILETIME timestamps and byte-granular offsets/sizes, header-less,
    exactly as the SNIA files ship.  Response time is emitted as 0 (the
    simulator does not model latency).
    """
    path = Path(path)
    with path.open("w") as handle:
        for request in trace:
            ticks = _FILETIME_EPOCH_TICKS + int(
                request.timestamp * _TICKS_PER_SECOND
            )
            op = "Read" if request.is_read else "Write"
            handle.write(
                f"{ticks},{hostname},{disk_number},{op},"
                f"{request.lba * SECTOR_BYTES},"
                f"{request.length * SECTOR_BYTES},0\n"
            )


def write_cloudphysics_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` in the CloudPhysics-style CSV dialect.

    Columns: ``timestamp_us,op,lba,length`` with microsecond timestamps
    and sector-granular addresses, with a header row.
    """
    path = Path(path)
    with path.open("w") as handle:
        handle.write("timestamp_us,op,lba,length\n")
        for request in trace:
            handle.write(
                f"{request.timestamp * 1e6:.0f},{request.op.value},"
                f"{request.lba},{request.length}\n"
            )
