"""Trace summary statistics — the columns of the paper's Table I.

Table I characterizes each workload by read/write operation counts, read and
written volume in GB, and mean write size in KB.  :func:`compute_stats`
derives all of these (plus a few extras used elsewhere in the analysis) in a
single pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.trace import Trace
from repro.util.units import sectors_to_gib, sectors_to_kib


@dataclass(frozen=True)
class TraceStats:
    """Single-pass summary of a trace (Table I columns and friends)."""

    name: str
    read_count: int
    write_count: int
    read_sectors: int
    written_sectors: int
    max_end: int
    duration_s: float

    @property
    def op_count(self) -> int:
        return self.read_count + self.write_count

    @property
    def read_volume_gib(self) -> float:
        """Table I "read volume (GB)" column."""
        return sectors_to_gib(self.read_sectors)

    @property
    def written_volume_gib(self) -> float:
        """Table I "written volume (GB)" column."""
        return sectors_to_gib(self.written_sectors)

    @property
    def mean_write_size_kib(self) -> float:
        """Table I "mean write size" column (KB)."""
        if self.write_count == 0:
            return 0.0
        return sectors_to_kib(self.written_sectors) / self.write_count

    @property
    def mean_read_size_kib(self) -> float:
        if self.read_count == 0:
            return 0.0
        return sectors_to_kib(self.read_sectors) / self.read_count

    @property
    def read_fraction(self) -> float:
        """Fraction of operations that are reads (0 for an empty trace)."""
        if self.op_count == 0:
            return 0.0
        return self.read_count / self.op_count

    @property
    def write_intensity(self) -> float:
        """Writes per read; ``inf`` if the trace has writes but no reads.

        The paper's §V explanation for why most MSR workloads see SAF < 1 is
        that they are write-intensive — this is that quantity.
        """
        if self.read_count == 0:
            return float("inf") if self.write_count else 0.0
        return self.write_count / self.read_count


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` in one pass."""
    read_count = 0
    write_count = 0
    read_sectors = 0
    written_sectors = 0
    first_ts = None
    last_ts = 0.0
    for request in trace:
        if first_ts is None:
            first_ts = request.timestamp
        last_ts = request.timestamp
        if request.is_read:
            read_count += 1
            read_sectors += request.length
        else:
            write_count += 1
            written_sectors += request.length
    duration = (last_ts - first_ts) if first_ts is not None else 0.0
    return TraceStats(
        name=trace.name,
        read_count=read_count,
        write_count=write_count,
        read_sectors=read_sectors,
        written_sectors=written_sectors,
        max_end=trace.max_end,
        duration_s=duration,
    )
