"""Small argument-validation helpers.

Centralising these keeps error messages consistent across the library and
keeps constructors flat (an early ``raise`` per invalid argument, then the
happy path).
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple, Type, Union


def check_non_negative(name: str, value: Union[int, float]) -> Union[int, float]:
    """Raise :class:`ValueError` unless ``value >= 0``; return it otherwise."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive(name: str, value: Union[int, float]) -> Union[int, float]:
    """Raise :class:`ValueError` unless ``value > 0``; return it otherwise."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_range(
    name: str,
    value: Union[int, float],
    lo: Union[int, float],
    hi: Union[int, float],
) -> Union[int, float]:
    """Raise :class:`ValueError` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_probability(name: str, value: Union[int, float]) -> float:
    """Raise :class:`ValueError` unless ``0 <= value <= 1``; return a float.

    Fault-injection rates and sampling fractions all funnel through here so
    a mistyped percentage (``5`` instead of ``0.05``) fails loudly.
    """
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_choice(name: str, value: Any, choices: Sequence[Any]) -> Any:
    """Raise :class:`ValueError` unless ``value`` is one of ``choices``."""
    if value not in choices:
        options = ", ".join(repr(c) for c in choices)
        raise ValueError(f"{name} must be one of {options}; got {value!r}")
    return value


def check_type(
    name: str,
    value: Any,
    expected: Union[Type, Tuple[Type, ...]],
) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``.

    ``bool`` is rejected where an integer is expected, because ``True`` and
    ``False`` silently behaving as 1/0 sector addresses is a classic source
    of simulator bugs.
    """
    if expected is int and isinstance(value, bool):
        raise TypeError(f"{name} must be int, got bool {value!r}")
    if not isinstance(value, expected):
        exp_name = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {exp_name}, got {type(value).__name__}")
    return value
