"""Small argument-validation helpers.

Centralising these keeps error messages consistent across the library and
keeps constructors flat (an early ``raise`` per invalid argument, then the
happy path).
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_non_negative(name: str, value: Union[int, float]) -> Union[int, float]:
    """Raise :class:`ValueError` unless ``value >= 0``; return it otherwise."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive(name: str, value: Union[int, float]) -> Union[int, float]:
    """Raise :class:`ValueError` unless ``value > 0``; return it otherwise."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_range(
    name: str,
    value: Union[int, float],
    lo: Union[int, float],
    hi: Union[int, float],
) -> Union[int, float]:
    """Raise :class:`ValueError` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_type(
    name: str,
    value: Any,
    expected: Union[Type, Tuple[Type, ...]],
) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``.

    ``bool`` is rejected where an integer is expected, because ``True`` and
    ``False`` silently behaving as 1/0 sector addresses is a classic source
    of simulator bugs.
    """
    if expected is int and isinstance(value, bool):
        raise TypeError(f"{name} must be int, got bool {value!r}")
    if not isinstance(value, expected):
        exp_name = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {exp_name}, got {type(value).__name__}")
    return value
