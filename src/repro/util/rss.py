"""Peak-RSS capture for benchmark and load-harness reports.

``getrusage`` high-water marks are the cheapest honest memory metric:
no sampling thread to miss the peak, no /proc scraping, and
``RUSAGE_CHILDREN`` folds in reaped worker processes — which is where a
multi-tenant serving run actually spends its memory.  The number is a
*high-water* mark for the whole process lifetime, so measure deltas by
recording it before and after if a phase-local figure is needed.
"""

from __future__ import annotations

import sys


def peak_rss_mib(include_children: bool = True) -> float:
    """Peak resident set size of this process (and reaped children), MiB.

    Returns 0.0 on platforms without :mod:`resource` (Windows) rather
    than raising — callers embed this in reports where a missing metric
    beats a crashed run.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if include_children:
        peak += resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes
        peak /= 1024.0
    return peak / 1024.0
