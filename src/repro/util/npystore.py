"""Page-aligned ``.npy`` files and atomic multi-array entry directories.

The persistent stores (:mod:`repro.trace.store`,
:mod:`repro.core.stream_store`) keep each entry as a *directory* of plain
``.npy`` files plus a ``header.json``, because ``np.load(mmap_mode="r")``
can memory-map a plain ``.npy`` but not a member of an ``.npz`` archive.
Every array file is written with its header padded so the data section
starts exactly at :data:`PAGE_ALIGN` — loads are zero-copy ``mmap`` views
whose data is page-aligned, so concurrent worker processes share the OS
page cache instead of private heap copies.

Commit discipline (same crash-safety contract as :mod:`repro.util.io`):
the entry is assembled in a ``<name>.<pid>.tmp`` sibling directory, every
file is flushed and fsynced, and the directory is renamed into place in
one atomic step.  A concurrent writer of the same entry is benign — the
first rename wins and the loser discards its temp directory (the contents
are identical by construction: entries are pure functions of their key).
A reader that finds a torn or foreign entry deletes it and reports a
miss, so the next writer heals the store.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
from pathlib import Path
from typing import Dict, NamedTuple, Union

import numpy as np

#: Offset of the data section in every aligned ``.npy`` written here.
PAGE_ALIGN = 4096

_NPY_MAGIC = b"\x93NUMPY"
_NPY_VERSION = (1, 0)


def write_aligned_npy(path: Union[str, Path], array: np.ndarray) -> Path:
    """Write ``array`` as a format-1.0 ``.npy`` with data at :data:`PAGE_ALIGN`.

    The header dict is padded with spaces (terminated by the mandated
    newline) to exactly ``PAGE_ALIGN`` bytes — a legal format-1.0 header
    (any multiple of the base alignment below 64 KiB is), so ``np.load``
    reads it back with or without ``mmap_mode``.  Only C-contiguous
    one-dimensional arrays are expected; anything else is made contiguous
    first.
    """
    array = np.ascontiguousarray(array)
    header = (
        "{'descr': %r, 'fortran_order': False, 'shape': %r, }"
        % (np.lib.format.dtype_to_descr(array.dtype), array.shape)
    )
    prefix_len = len(_NPY_MAGIC) + 2 + 2  # magic + version + uint16 length
    pad = PAGE_ALIGN - prefix_len - len(header) - 1
    if pad < 0:
        raise ValueError(
            f"npy header ({len(header)} bytes) does not fit the "
            f"{PAGE_ALIGN}-byte alignment budget"
        )
    blob = header.encode("latin1") + b" " * pad + b"\n"
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(_NPY_MAGIC)
        handle.write(bytes(_NPY_VERSION))
        handle.write(struct.pack("<H", len(blob)))
        handle.write(blob)
        handle.write(array.tobytes())
        handle.flush()
        os.fsync(handle.fileno())
    return path


def load_mmap_npy(path: Union[str, Path]) -> np.ndarray:
    """Memory-map an ``.npy`` read-only; the view is marked non-writeable.

    Raises ``ValueError`` when the file is shorter than the header's
    declared shape requires: Linux happily maps past EOF, so without this
    check a truncated column would load cleanly and then deliver
    ``SIGBUS`` on first access instead of healing as a store miss.
    """
    array = np.load(path, mmap_mode="r")
    needed = getattr(array, "offset", 0) + array.nbytes
    if os.path.getsize(path) < needed:
        raise ValueError(
            f"{path}: file shorter ({os.path.getsize(path)} B) than its "
            f"npy header requires ({needed} B)"
        )
    array.setflags(write=False)
    return array


class CommitOutcome(NamedTuple):
    """Result of :func:`commit_entry_dir`.

    ``path`` is the published entry either way; ``won`` is False when a
    concurrent writer of the same key published first and this writer's
    (byte-identical) work was discarded — callers can count that as a
    cache hit instead of a store.  Unpacks as a tuple; ``os.fspath`` works
    on it too, so path-like uses keep working.
    """

    path: Path
    won: bool

    def __fspath__(self) -> str:
        return str(self.path)


def commit_entry_dir(
    final_dir: Union[str, Path],
    arrays: Dict[str, np.ndarray],
    header: dict,
) -> CommitOutcome:
    """Atomically publish an entry directory of aligned arrays + header.

    Builds ``<final>.<pid>.tmp`` with one ``<key>.npy`` per array and a
    fsynced ``header.json``, then renames the whole directory into place.
    If another writer won the race — the final directory already exists,
    either up front or by the time this writer renames — the temp
    directory is discarded and the existing entry stands: entries for one
    key are byte-identical by construction, so either outcome is correct.
    The loser *detects* the winner and reports ``won=False`` so callers
    can reuse the published entry and count it as a hit.
    """
    final_dir = Path(final_dir)
    if final_dir.is_dir():
        # Already published: don't even build the temp directory.
        return CommitOutcome(final_dir, won=False)
    final_dir.parent.mkdir(parents=True, exist_ok=True)
    tmp_dir = final_dir.with_name(f"{final_dir.name}.{os.getpid()}.tmp")
    shutil.rmtree(tmp_dir, ignore_errors=True)
    tmp_dir.mkdir(parents=True)
    won = True
    try:
        for key, array in arrays.items():
            write_aligned_npy(tmp_dir / f"{key}.npy", array)
        header_path = tmp_dir / "header.json"
        with open(header_path, "w") as handle:
            json.dump(header, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.rename(tmp_dir, final_dir)
        except OSError:
            if not final_dir.is_dir():
                raise
            # Concurrent writer finished first; its identical entry stands.
            won = False
            shutil.rmtree(tmp_dir, ignore_errors=True)
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    return CommitOutcome(final_dir, won)


def remove_entry(path: Union[str, Path]) -> None:
    """Best-effort removal of a (possibly corrupt) entry file or directory."""
    path = Path(path)
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        try:
            path.unlink()
        except OSError:
            pass
