"""Crash-safe file writing.

Long experiment runs can be killed at any moment (OOM, Ctrl-C, batch-queue
preemption).  Writing results via a temporary file in the same directory
followed by :func:`os.replace` guarantees a reader never observes a
truncated file: either the old content exists, or the complete new content
does.  ``os.replace`` is atomic on POSIX and Windows when source and
destination share a filesystem, which same-directory placement ensures.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically via ``<path>.tmp`` + rename."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def atomic_write_json(path: Union[str, Path], data: Any, indent: int = 2) -> Path:
    """Serialize ``data`` as JSON and write it atomically to ``path``."""
    return atomic_write_text(
        path, json.dumps(data, indent=indent, sort_keys=True) + "\n"
    )
