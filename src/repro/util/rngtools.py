"""Deterministic random-number plumbing for workload synthesis.

Reproducibility rule: every synthetic trace is a pure function of its
:class:`~repro.workloads.spec.WorkloadSpec` and a single integer seed.
Sub-streams (one per workload phase) are derived deterministically so that
adding a phase does not perturb the randomness of the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import List


class SeedSequenceFactory:
    """Derive independent child seeds from a root seed and string labels.

    The derivation hashes ``(root_seed, label)`` with SHA-256, so children
    are stable across Python versions and insertion orders (unlike
    ``random.Random(root).randrange`` chains, which depend on call order).

    >>> f = SeedSequenceFactory(42)
    >>> a, b = f.seed_for("writes"), f.seed_for("reads")
    >>> a == f.seed_for("writes") and a != b
    True
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def seed_for(self, label: str) -> int:
        """Return a 64-bit seed deterministically derived from ``label``."""
        digest = hashlib.sha256(f"{self._root_seed}:{label}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def rng_for(self, label: str) -> random.Random:
        """Return a fresh :class:`random.Random` seeded for ``label``."""
        return random.Random(self.seed_for(label))


def spawn_rng(seed: int, label: str = "") -> random.Random:
    """One-shot convenience wrapper around :class:`SeedSequenceFactory`."""
    return SeedSequenceFactory(seed).rng_for(label)


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Return normalized Zipf(alpha) weights for ranks ``1..n``.

    Used to model the fragment-popularity skew the paper exploits in
    translation-aware selective caching (Fig. 10): a handful of fragments
    receive the bulk of the read accesses.

    >>> w = zipf_weights(3, 1.0)
    >>> abs(sum(w) - 1.0) < 1e-12
    True
    >>> w[0] > w[1] > w[2]
    True
    """
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    raw = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]
