"""Unit conversions between sectors, bytes and binary multiples.

The entire simulator addresses the disk in **512-byte sectors**, the unit
used by the paper's traces and by the SCSI/ATA command sets.  Converting at
package boundaries (trace parsing, cache budgets, report rendering) keeps the
hot simulation path purely integral.
"""

from __future__ import annotations

SECTOR_BYTES = 512
"""Size of one logical sector in bytes (the paper's addressing unit)."""

BYTES_PER_KIB = 1024
BYTES_PER_MIB = 1024 ** 2
BYTES_PER_GIB = 1024 ** 3

SECTORS_PER_KIB = BYTES_PER_KIB // SECTOR_BYTES
SECTORS_PER_MIB = BYTES_PER_MIB // SECTOR_BYTES
SECTORS_PER_GIB = BYTES_PER_GIB // SECTOR_BYTES


def bytes_to_sectors(n_bytes: int) -> int:
    """Convert a byte count to sectors, rounding up to a whole sector.

    Trace records occasionally carry sizes that are not sector multiples
    (e.g. the MSR traces contain byte-granular request sizes); a request
    covering any part of a sector occupies the whole sector.

    >>> bytes_to_sectors(512)
    1
    >>> bytes_to_sectors(513)
    2
    >>> bytes_to_sectors(0)
    0
    """
    if n_bytes < 0:
        raise ValueError(f"byte count must be >= 0, got {n_bytes}")
    return -(-n_bytes // SECTOR_BYTES)


def sectors_to_bytes(n_sectors: int) -> int:
    """Convert a sector count to bytes.

    >>> sectors_to_bytes(2)
    1024
    """
    return n_sectors * SECTOR_BYTES


def sectors_to_kib(n_sectors: int) -> float:
    """Convert sectors to KiB as a float (for reporting)."""
    return n_sectors * SECTOR_BYTES / BYTES_PER_KIB


def sectors_to_mib(n_sectors: int) -> float:
    """Convert sectors to MiB as a float (for reporting)."""
    return n_sectors * SECTOR_BYTES / BYTES_PER_MIB


def sectors_to_gib(n_sectors: int) -> float:
    """Convert sectors to GiB as a float (for reporting)."""
    return n_sectors * SECTOR_BYTES / BYTES_PER_GIB


def kib_to_sectors(n_kib: float) -> int:
    """Convert KiB to whole sectors, rounding up.

    >>> kib_to_sectors(1)
    2
    >>> kib_to_sectors(0.25)
    1
    """
    return bytes_to_sectors(int(-(-n_kib * BYTES_PER_KIB // 1)))


def mib_to_sectors(n_mib: float) -> int:
    """Convert MiB to whole sectors, rounding up."""
    return kib_to_sectors(n_mib * 1024)


def gib_to_sectors(n_gib: float) -> int:
    """Convert GiB to whole sectors, rounding up."""
    return mib_to_sectors(n_gib * 1024)


def format_sectors(n_sectors: int) -> str:
    """Render a sector count as a human-readable size string.

    Negative values (signed seek distances) keep their sign.

    >>> format_sectors(1)
    '512B'
    >>> format_sectors(2048)
    '1.0MiB'
    >>> format_sectors(-4)
    '-2.0KiB'
    """
    sign = "-" if n_sectors < 0 else ""
    n_bytes = abs(n_sectors) * SECTOR_BYTES
    if n_bytes < BYTES_PER_KIB:
        return f"{sign}{n_bytes}B"
    if n_bytes < BYTES_PER_MIB:
        return f"{sign}{n_bytes / BYTES_PER_KIB:.1f}KiB"
    if n_bytes < BYTES_PER_GIB:
        return f"{sign}{n_bytes / BYTES_PER_MIB:.1f}MiB"
    return f"{sign}{n_bytes / BYTES_PER_GIB:.2f}GiB"
