"""Shared low-level helpers: unit conversion, validation, RNG and statistics.

These modules are dependency-free (standard library only) and are used by
every other subsystem in :mod:`repro`.
"""

from repro.util.units import (
    BYTES_PER_KIB,
    BYTES_PER_MIB,
    BYTES_PER_GIB,
    SECTOR_BYTES,
    SECTORS_PER_KIB,
    SECTORS_PER_MIB,
    SECTORS_PER_GIB,
    bytes_to_sectors,
    sectors_to_bytes,
    sectors_to_kib,
    sectors_to_mib,
    sectors_to_gib,
    kib_to_sectors,
    mib_to_sectors,
    gib_to_sectors,
    format_sectors,
)
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_choice,
    check_range,
    check_type,
)
from repro.util.io import atomic_write_json, atomic_write_text
from repro.util.rngtools import SeedSequenceFactory, spawn_rng, zipf_weights
from repro.util.stats import (
    OnlineStats,
    Histogram,
    weighted_percentile,
    empirical_cdf,
    cdf_at,
    quantile_from_cdf,
)

__all__ = [
    "BYTES_PER_KIB",
    "BYTES_PER_MIB",
    "BYTES_PER_GIB",
    "SECTOR_BYTES",
    "SECTORS_PER_KIB",
    "SECTORS_PER_MIB",
    "SECTORS_PER_GIB",
    "bytes_to_sectors",
    "sectors_to_bytes",
    "sectors_to_kib",
    "sectors_to_mib",
    "sectors_to_gib",
    "kib_to_sectors",
    "mib_to_sectors",
    "gib_to_sectors",
    "format_sectors",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_choice",
    "check_range",
    "check_type",
    "atomic_write_json",
    "atomic_write_text",
    "SeedSequenceFactory",
    "spawn_rng",
    "zipf_weights",
    "OnlineStats",
    "Histogram",
    "weighted_percentile",
    "empirical_cdf",
    "cdf_at",
    "quantile_from_cdf",
]
