"""Streaming statistics helpers used by trace analysis and reporting.

Traces can run to millions of operations; these helpers accumulate summary
statistics in O(1) or O(#buckets) memory so the analysis layer never has to
hold a full per-operation log unless a recorder explicitly asks for one.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


class OnlineStats:
    """Welford-style online mean/variance/min/max accumulator.

    >>> s = OnlineStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.count, s.mean, round(s.variance, 6)
    (3, 2.0, 1.0)
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected); 0.0 with fewer than 2 points."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if not self._count:
            raise ValueError("no observations")
        return self._min

    @property
    def max(self) -> float:
        if not self._count:
            raise ValueError("no observations")
        return self._max


@dataclass
class Histogram:
    """Fixed-bucket histogram over arbitrary integer keys.

    Keys are bucketed by ``key // bucket_width``.  Used for seek-distance
    distributions where exact per-distance counts would be unboundedly many.
    """

    bucket_width: int = 1
    _counts: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {self.bucket_width}")

    def add(self, key: int, count: int = 1) -> None:
        bucket = key // self.bucket_width
        self._counts[bucket] = self._counts.get(bucket, 0) + count

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def items(self) -> List[Tuple[int, int]]:
        """Return ``(bucket_lower_bound, count)`` pairs sorted by bucket."""
        return [
            (bucket * self.bucket_width, count)
            for bucket, count in sorted(self._counts.items())
        ]

    def cdf(self) -> List[Tuple[int, float]]:
        """Return ``(bucket_lower_bound, cumulative_fraction)`` pairs."""
        total = self.total
        if total == 0:
            return []
        out: List[Tuple[int, float]] = []
        running = 0
        for lower, count in self.items():
            running += count
            out.append((lower, running / total))
        return out


def weighted_percentile(
    values: Sequence[float],
    weights: Sequence[float],
    fraction: float,
) -> float:
    """Return the smallest value whose cumulative weight reaches ``fraction``.

    ``values`` need not be sorted.  Used to answer questions like "what
    cache size captures 90 % of fragment accesses" (Fig. 10).

    >>> weighted_percentile([10, 20, 30], [1, 1, 2], 0.5)
    20
    """
    if not values:
        raise ValueError("values must be non-empty")
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    pairs = sorted(zip(values, weights))
    total = sum(w for _, w in pairs)
    if total <= 0:
        raise ValueError("total weight must be > 0")
    target = fraction * total
    running = 0.0
    for value, weight in pairs:
        running += weight
        if running >= target:
            return value
    return pairs[-1][0]


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return the empirical CDF of ``values`` as sorted (value, F(value)) pairs.

    Duplicate values collapse to one point carrying their joint mass.

    >>> empirical_cdf([1, 1, 3])
    [(1, 0.6666666666666666), (3, 1.0)]
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    out: List[Tuple[float, float]] = []
    i = 0
    while i < n:
        j = i
        while j < n and ordered[j] == ordered[i]:
            j += 1
        out.append((ordered[i], j / n))
        i = j
    return out


def cdf_at(cdf: Sequence[Tuple[float, float]], x: float) -> float:
    """Evaluate a step CDF (as returned by :func:`empirical_cdf`) at ``x``."""
    if not cdf:
        return 0.0
    xs = [p[0] for p in cdf]
    idx = bisect_right(xs, x)
    if idx == 0:
        return 0.0
    return cdf[idx - 1][1]


def quantile_from_cdf(cdf: Sequence[Tuple[float, float]], q: float) -> float:
    """Return the smallest x with F(x) >= q from a step CDF."""
    if not cdf:
        raise ValueError("empty CDF")
    fs = [p[1] for p in cdf]
    idx = bisect_left(fs, q)
    if idx >= len(cdf):
        return cdf[-1][0]
    return cdf[idx][0]
