"""Deterministic fault injection for robustness testing.

Three layers of faults, all seed-driven so every experiment under faults
is exactly reproducible:

* :mod:`repro.faults.corrupt` — damage raw trace-file *lines* (dropped
  fields, garbage tokens, zero/negative sizes, torn final line) to
  exercise the parsers' ``lenient``/``quarantine`` policies.
* :mod:`repro.faults.trace_faults` — damage a parsed *trace* (drop,
  duplicate, swap, truncate) to measure technique sensitivity to dirty
  input.
* :mod:`repro.faults.transient` — inject *transient device errors* into
  the translator service path, exercising the simulator's bounded
  retry/backoff (:class:`~repro.core.simulator.RetryPolicy`) and proving
  seek/SAF metrics are unperturbed by retries.
* :mod:`repro.faults.service_faults` — service-level chaos for the
  streaming daemon (:mod:`repro.service`): worker ``kill -9``,
  post-commit checkpoint corruption, and deterministic
  duplicated/delayed client sends.

Example::

    from repro.core import LS, RetryPolicy, build_translator, replay
    from repro.faults import FaultyTranslator, TransientFaultConfig

    faulty = FaultyTranslator(build_translator(trace, LS),
                              TransientFaultConfig(read_error_rate=0.05, seed=7))
    result = replay(trace, faulty, retry_policy=RetryPolicy())
    assert result.stats.seek_counters == replay(
        trace, build_translator(trace, LS)).stats.seek_counters
"""

from repro.faults.corrupt import (
    CORRUPTION_KINDS,
    CorruptionLog,
    CorruptionSpec,
    corrupt_lines,
)
from repro.faults.trace_faults import (
    TraceFaultConfig,
    TraceFaultLog,
    inject_trace_faults,
)
from repro.faults.service_faults import (
    ChaosSchedule,
    corrupt_newest_checkpoint,
    kill_worker,
)
from repro.faults.transient import FaultyTranslator, TransientFaultConfig

__all__ = [
    "ChaosSchedule",
    "corrupt_newest_checkpoint",
    "kill_worker",
    "CORRUPTION_KINDS",
    "CorruptionLog",
    "CorruptionSpec",
    "corrupt_lines",
    "TraceFaultConfig",
    "TraceFaultLog",
    "inject_trace_faults",
    "FaultyTranslator",
    "TransientFaultConfig",
]
