"""Transient device-error injection on the translator service path.

:class:`FaultyTranslator` wraps any :class:`~repro.core.translators.Translator`
and makes a seeded fraction of submissions fail with
:class:`~repro.core.errors.TransientIOError` *before* the wrapped
translator sees them.  Because no state (head position, address map,
caches) is touched on a faulted attempt, a retry is a clean resubmission —
which is exactly the contract the simulator's
:class:`~repro.core.simulator.RetryPolicy` relies on, and the reason seek
and SAF metrics are bit-identical with and without injected transient
faults for any fault seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import TransientIOError
from repro.core.outcomes import IOOutcome
from repro.core.translators import Translator
from repro.trace.record import IORequest
from repro.util.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class TransientFaultConfig:
    """Knobs for :class:`FaultyTranslator`.

    Attributes:
        read_error_rate: Probability a read submission faults.
        write_error_rate: Probability a write submission faults.
        seed: RNG seed; the fault sequence is a pure function of it.
        max_consecutive: Hard cap on back-to-back faults for one request,
            guaranteeing forward progress even at high rates (a "transient"
            error resolves eventually).  Set it above a
            :class:`RetryPolicy`'s ``max_retries`` to exercise the
            retries-exhausted path.
    """

    read_error_rate: float = 0.01
    write_error_rate: float = 0.0
    seed: int = 0
    max_consecutive: int = 2

    def __post_init__(self) -> None:
        check_probability("read_error_rate", self.read_error_rate)
        check_probability("write_error_rate", self.write_error_rate)
        check_non_negative("max_consecutive", self.max_consecutive)


class FaultyTranslator(Translator):
    """Wrap a translator, injecting seeded transient errors before service.

    The wrapper delegates everything observable (description, head) to the
    wrapped translator, so recorders and metrics see the real device
    behaviour; only the error injection is added.
    """

    def __init__(self, inner: Translator, config: TransientFaultConfig) -> None:
        super().__init__()
        self._inner = inner
        self._config = config
        self._rng = random.Random(config.seed)
        self._consecutive = 0
        self._injected = 0

    @property
    def inner(self) -> Translator:
        return self._inner

    @property
    def head(self):
        return self._inner.head

    @property
    def description(self) -> str:
        return f"{self._inner.description}+faulty"

    @property
    def injected_faults(self) -> int:
        """Total transient errors raised so far."""
        return self._injected

    def submit(self, request: IORequest) -> IOOutcome:
        rate = (
            self._config.read_error_rate
            if request.is_read
            else self._config.write_error_rate
        )
        if (
            rate > 0.0
            and self._consecutive < self._config.max_consecutive
            and self._rng.random() < rate
        ):
            self._consecutive += 1
            self._injected += 1
            raise TransientIOError(
                f"injected transient {'read' if request.is_read else 'write'} "
                f"error at lba {request.lba}",
                attempt=self._consecutive,
            )
        self._consecutive = 0
        return self._inner.submit(request)
