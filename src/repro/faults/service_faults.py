"""Service-level chaos: the faults a *daemon* meets, injected on purpose.

:mod:`repro.faults` so far injects faults into a single replay (transient
read errors, corrupted trace columns).  The streaming service adds whole
new failure surfaces — worker processes, checkpoint files, a client/server
protocol — and this module provides one deliberate injector per surface:

* :func:`kill_worker` — ``SIGKILL`` a session worker mid-stream: no
  atexit, no flush, exactly the crash the WAL contract must absorb.
* :func:`corrupt_newest_checkpoint` — flip bytes inside the newest
  checkpoint's array payload *after* it committed.  The ``.npy`` still
  parses; only the content checksum catches it, forcing recovery to fall
  back to the previous checkpoint plus a longer journal tail.
* :class:`ChaosSchedule` — a deterministic, clock-free client-side
  adversary: given a stream of batches it emits a schedule with
  duplicated sends and delayed (reordered) sends, exercising the
  sequence-number dedupe and gap/resync paths without any real timing.

Everything is seeded and deterministic — chaos runs must be replayable
bug reports, not flaky tests.
"""

from __future__ import annotations

import os
import random
import signal
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.service.checkpoint import CheckpointStore
from repro.util.npystore import PAGE_ALIGN


def kill_worker(pid: int) -> None:
    """``kill -9`` a session worker (no cleanup handler runs)."""
    os.kill(pid, signal.SIGKILL)


def corrupt_newest_checkpoint(
    session_root: Union[str, Path],
    seed: int = 0,
    flips: int = 8,
) -> Optional[Path]:
    """Flip ``flips`` bytes inside the newest checkpoint's largest array.

    Bytes are flipped *after* the page-aligned header, so the file still
    parses as a valid ``.npy`` — the damage is only detectable by the
    checkpoint's content checksum.  Returns the damaged entry path, or
    None when there is no checkpoint (nothing to corrupt).
    """
    store = CheckpointStore(session_root)
    seqs = store.sequence_numbers()
    if not seqs:
        return None
    entry = store.entry_path(seqs[-1])
    arrays = sorted(entry.glob("*.npy"), key=lambda p: p.stat().st_size)
    if not arrays:
        return None
    target = arrays[-1]
    size = target.stat().st_size
    if size <= PAGE_ALIGN:
        return None
    rng = random.Random(seed)
    with open(target, "r+b") as handle:
        for _ in range(max(1, flips)):
            offset = rng.randrange(PAGE_ALIGN, size)
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xA5]))
        handle.flush()
        os.fsync(handle.fileno())
    return entry


class ChaosSchedule:
    """Deterministic duplicate/delay adversary over a batch stream.

    Args:
        seed: Drives every decision; same seed, same schedule.
        duplicate_rate: Probability a sent batch is immediately sent
            again (a client retry the ack raced with — the server must
            ack it as a duplicate, applying nothing).
        delay_rate: Probability a batch is held back and sent *after*
            its successor (the successor then hits the server as a gap;
            a resyncing client recovers, a naive one would stall).
    """

    def __init__(
        self,
        seed: int = 0,
        duplicate_rate: float = 0.1,
        delay_rate: float = 0.1,
    ) -> None:
        if not 0 <= duplicate_rate <= 1 or not 0 <= delay_rate <= 1:
            raise ValueError("rates must be within [0, 1]")
        self._rng = random.Random(seed)
        self._duplicate_rate = duplicate_rate
        self._delay_rate = delay_rate

    def arrange(self, batches: Iterable) -> List[Tuple[str, object]]:
        """Turn an in-order batch stream into a tagged misdelivery schedule.

        Returns ``(tag, batch)`` pairs in delivery order, where tag is
        ``"send"``, ``"duplicate"`` (second delivery of the same batch)
        or ``"delayed"`` (a batch delivered after its successor).  Every
        batch appears at least once; the final state after a resyncing
        client drives the schedule equals the clean stream's.
        """
        schedule: List[Tuple[str, object]] = []
        held: Optional[object] = None
        for batch in batches:
            if held is not None:
                # Deliver at most one out-of-order hop late.
                schedule.append(("send", batch))
                schedule.append(("delayed", held))
                held = None
                continue
            if self._rng.random() < self._delay_rate:
                held = batch
                continue
            schedule.append(("send", batch))
            if self._rng.random() < self._duplicate_rate:
                schedule.append(("duplicate", batch))
        if held is not None:
            schedule.append(("delayed", held))
        return schedule
