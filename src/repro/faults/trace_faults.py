"""Trace-level fault models: drop, duplicate, reorder, truncate.

These act on an already-parsed :class:`~repro.trace.trace.Trace` and model
what a damaged or incompletely-captured trace does to replay results: ops
missing (collector overrun), ops repeated (retransmitted log records), ops
swapped with a neighbour (out-of-order capture), and a truncated tail
(capture stopped early).  All mutations are driven by one seeded RNG so a
given ``(trace, config)`` pair always yields the identical faulty trace —
experiments under injected faults stay reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.util.validation import check_probability, check_range


@dataclass(frozen=True)
class TraceFaultConfig:
    """Knobs for :func:`inject_trace_faults`.

    Attributes:
        drop_rate: Fraction of requests removed.
        duplicate_rate: Fraction of requests emitted twice back-to-back.
        swap_rate: Fraction of positions where a request is swapped with
            its successor (models capture-order inversion).
        truncate_fraction: Fraction of the trace tail cut off (applied
            first, before per-record faults).
        seed: RNG seed; equal seeds yield identical faulty traces.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    swap_rate: float = 0.0
    truncate_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_probability("drop_rate", self.drop_rate)
        check_probability("duplicate_rate", self.duplicate_rate)
        check_probability("swap_rate", self.swap_rate)
        check_range("truncate_fraction", self.truncate_fraction, 0.0, 1.0)


@dataclass
class TraceFaultLog:
    """Accounting of the faults actually applied."""

    dropped: int = 0
    duplicated: int = 0
    swapped: int = 0
    truncated: int = 0
    input_ops: int = 0
    output_ops: int = 0

    def summary(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "swapped": self.swapped,
            "truncated": self.truncated,
            "input_ops": self.input_ops,
            "output_ops": self.output_ops,
        }


def inject_trace_faults(
    trace: Trace,
    config: TraceFaultConfig,
    log: Optional[TraceFaultLog] = None,
) -> Trace:
    """Return a new trace with ``config``'s faults applied to ``trace``.

    Order of operations: truncate the tail, then walk the remainder once,
    dropping/duplicating/swapping per seeded coin-flips.  The input trace
    is never mutated.  The result is named ``"<name>+faults"``.
    """
    log = log if log is not None else TraceFaultLog()
    log.input_ops = len(trace)
    rng = random.Random(config.seed)

    requests: List[IORequest] = list(trace)
    if config.truncate_fraction > 0.0 and requests:
        keep = len(requests) - int(len(requests) * config.truncate_fraction)
        log.truncated = len(requests) - keep
        requests = requests[:keep]

    out: List[IORequest] = []
    index = 0
    while index < len(requests):
        request = requests[index]
        if config.drop_rate and rng.random() < config.drop_rate:
            log.dropped += 1
            index += 1
            continue
        if (
            config.swap_rate
            and index + 1 < len(requests)
            and rng.random() < config.swap_rate
        ):
            out.append(requests[index + 1])
            out.append(request)
            log.swapped += 1
            index += 2
            continue
        out.append(request)
        if config.duplicate_rate and rng.random() < config.duplicate_rate:
            out.append(request)
            log.duplicated += 1
        index += 1

    log.output_ops = len(out)
    faulty = Trace(out, name=f"{trace.name}+faults")
    return faulty
