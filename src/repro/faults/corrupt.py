"""Deterministic raw-line corruption for parser robustness testing.

Takes clean trace-file lines (any CSV dialect) and damages a seeded random
subset of them in the ways real dumps are damaged: dropped fields, garbage
tokens, zero/negative sizes, and a truncated final line.  Used to prove
that the ``lenient``/``quarantine`` parse policies skip exactly the damaged
records and keep everything else.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.util.validation import check_choice, check_probability

CORRUPTION_KINDS = (
    "drop_fields",     # keep only the first 1-2 CSV fields
    "garbage_field",   # replace a numeric field with a non-numeric token
    "zero_size",       # set the size/length field to 0
    "negative_size",   # set the size/length field to a negative number
    "truncate_line",   # cut the line mid-field (as a torn final write does)
)
"""The supported ways of damaging a record line."""


@dataclass(frozen=True)
class CorruptionSpec:
    """What to corrupt and how.

    Attributes:
        rate: Fraction of lines to damage (seeded-random selection).
        seed: RNG seed; equal seeds produce byte-identical corruption.
        kinds: Damage kinds to rotate through (default: all of them).
        size_field: 0-based CSV index of the size/length column
            (5 for MSR, 3 for CloudPhysics and the native format).
    """

    rate: float = 0.05
    seed: int = 0
    kinds: Sequence[str] = CORRUPTION_KINDS
    size_field: int = 3

    def __post_init__(self) -> None:
        check_probability("rate", self.rate)
        if not self.kinds:
            raise ValueError("kinds must not be empty")
        for kind in self.kinds:
            check_choice("kind", kind, CORRUPTION_KINDS)


@dataclass
class CorruptionLog:
    """Which lines were damaged, and how (0-based indices)."""

    damaged: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.damaged)

    @property
    def indices(self) -> List[int]:
        return [index for index, _ in self.damaged]


def corrupt_lines(
    lines: Sequence[str],
    spec: Optional[CorruptionSpec] = None,
    log: Optional[CorruptionLog] = None,
) -> List[str]:
    """Return a copy of ``lines`` with a seeded subset damaged per ``spec``.

    Selection and damage are fully determined by ``spec.seed``.  Damage
    kinds are applied round-robin over the selected lines so every kind in
    ``spec.kinds`` appears when enough lines are hit.  The optional ``log``
    records ``(index, kind)`` per damaged line.
    """
    spec = spec if spec is not None else CorruptionSpec()
    rng = random.Random(spec.seed)
    out = list(lines)
    hit = [i for i in range(len(out)) if rng.random() < spec.rate]
    for rotation, index in enumerate(hit):
        kind = spec.kinds[rotation % len(spec.kinds)]
        out[index] = _damage(out[index], kind, spec.size_field, rng)
        if log is not None:
            log.damaged.append((index, kind))
    return out


def _damage(line: str, kind: str, size_field: int, rng: random.Random) -> str:
    fields = line.split(",")
    if kind == "drop_fields":
        return ",".join(fields[: rng.randint(1, 2)])
    if kind == "garbage_field":
        victim = rng.randrange(len(fields))
        fields[victim] = "###"
        return ",".join(fields)
    if kind == "zero_size":
        if size_field < len(fields):
            fields[size_field] = "0"
        return ",".join(fields)
    if kind == "negative_size":
        if size_field < len(fields):
            try:
                magnitude = abs(int(fields[size_field])) or 512
            except ValueError:
                magnitude = 512
            fields[size_field] = str(-magnitude)
        return ",".join(fields)
    if kind == "truncate_line":
        return line[: max(1, len(line) * 2 // 3)].rstrip(",")
    raise AssertionError(f"unknown corruption kind {kind!r}")  # pragma: no cover
