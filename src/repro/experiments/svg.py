"""Dependency-free SVG chart rendering for exhibit output.

The experiment harness prints text renderings; this module produces
publication-style SVG files (bar charts for Figs. 2/8/11, step/line
charts for Figs. 3/4/5/10) with no plotting stack.  Charts are plain
strings assembled from a handful of primitives, so they are unit-testable
and diff-able.

Use via the CLI: ``python -m repro.experiments fig11 --svg charts/``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

PALETTE = ("#4878a8", "#e8923c", "#6aa56e", "#b86a6a", "#8a7ab8", "#5f5f5f")
_FONT = 'font-family="Helvetica,Arial,sans-serif"'


class SvgCanvas:
    """Minimal SVG assembly: fixed viewport, element list, serialization."""

    def __init__(self, width: int = 720, height: int = 400) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be > 0")
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             opacity: float = 1.0) -> None:
        self._elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" fill-opacity="{opacity:g}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#444", width: float = 1.0, dash: str = "") -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width:g}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], stroke: str,
                 width: float = 1.5) -> None:
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:g}"/>'
        )

    def text(self, x: float, y: float, content: str, size: int = 11,
             anchor: str = "start", rotate: Optional[float] = None,
             fill: str = "#222") -> None:
        transform = (
            f' transform="rotate({rotate:g} {x:.1f} {y:.1f})"' if rotate else ""
        )
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" {_FONT} '
            f'text-anchor="{anchor}" fill="{fill}"{transform}>'
            f"{escape(content)}</text>"
        )

    def to_string(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )


def _nice_ticks(peak: float, n: int = 5) -> List[float]:
    """A handful of round-ish axis ticks from 0 to just past ``peak``."""
    if peak <= 0:
        return [0.0, 1.0]
    raw = peak / n
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step * n >= peak:
            break
    count = int(peak / step) + 1
    return [step * i for i in range(count + 1)]


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Sequence[float]]],
    series_labels: Sequence[str],
    title: str,
    y_label: str = "",
    width: int = 840,
    height: int = 420,
    reference_line: Optional[float] = None,
) -> str:
    """Fig. 11-style grouped bars: one cluster per group, one bar per series."""
    if not groups or not series_labels:
        raise ValueError("groups and series_labels must be non-empty")
    for label, values in groups:
        if len(values) != len(series_labels):
            raise ValueError(f"group {label!r} has {len(values)} values, "
                             f"expected {len(series_labels)}")
    canvas = SvgCanvas(width, height)
    left, right, top, bottom = 56, 16, 36, 76
    plot_w = width - left - right
    plot_h = height - top - bottom
    peak = max(max(values) for _, values in groups)
    ticks = _nice_ticks(peak)
    y_max = ticks[-1] or 1.0

    def y_of(value: float) -> float:
        return top + plot_h * (1.0 - value / y_max)

    canvas.text(width / 2, 20, title, size=14, anchor="middle")
    for tick in ticks:
        y = y_of(tick)
        canvas.line(left, y, width - right, y, stroke="#ddd")
        canvas.text(left - 6, y + 4, f"{tick:g}", anchor="end", size=10)
    if y_label:
        canvas.text(14, top + plot_h / 2, y_label, size=11, anchor="middle",
                    rotate=-90)
    if reference_line is not None and reference_line <= y_max:
        y = y_of(reference_line)
        canvas.line(left, y, width - right, y, stroke="#b03030", dash="4,3")

    cluster_w = plot_w / len(groups)
    bar_w = cluster_w * 0.8 / len(series_labels)
    for g_index, (label, values) in enumerate(groups):
        x0 = left + g_index * cluster_w + cluster_w * 0.1
        for s_index, value in enumerate(values):
            x = x0 + s_index * bar_w
            y = y_of(value)
            canvas.rect(x, y, bar_w * 0.92, top + plot_h - y,
                        fill=PALETTE[s_index % len(PALETTE)])
        canvas.text(left + g_index * cluster_w + cluster_w / 2,
                    top + plot_h + 14, label, size=10, anchor="end",
                    rotate=-35)
    canvas.line(left, top + plot_h, width - right, top + plot_h)

    legend_x = left
    legend_y = height - 14
    for s_index, label in enumerate(series_labels):
        canvas.rect(legend_x, legend_y - 9, 10, 10,
                    fill=PALETTE[s_index % len(PALETTE)])
        canvas.text(legend_x + 14, legend_y, label, size=10)
        legend_x += 14 + 7 * len(label) + 18
    return canvas.to_string()


def line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    title: str,
    x_label: str = "",
    y_label: str = "",
    width: int = 720,
    height: int = 400,
) -> str:
    """Fig. 3/4/5/10-style line/step chart with one polyline per series."""
    if not series or all(not points for _, points in series):
        raise ValueError("series must contain at least one point")
    canvas = SvgCanvas(width, height)
    left, right, top, bottom = 64, 16, 36, 48
    plot_w = width - left - right
    plot_h = height - top - bottom
    xs = [x for _, points in series for x, _ in points]
    ys = [y for _, points in series for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def pt(x: float, y: float) -> Tuple[float, float]:
        return (
            left + plot_w * (x - x_lo) / x_span,
            top + plot_h * (1.0 - (y - y_lo) / y_span),
        )

    canvas.text(width / 2, 20, title, size=14, anchor="middle")
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y_val = y_lo + y_span * frac
        _, y = pt(x_lo, y_val)
        canvas.line(left, y, width - right, y, stroke="#ddd")
        canvas.text(left - 6, y + 4, f"{y_val:.3g}", anchor="end", size=10)
        x_val = x_lo + x_span * frac
        x, _ = pt(x_val, y_lo)
        canvas.text(x, top + plot_h + 16, f"{x_val:.3g}", anchor="middle", size=10)
    if x_label:
        canvas.text(left + plot_w / 2, height - 8, x_label, size=11, anchor="middle")
    if y_label:
        canvas.text(14, top + plot_h / 2, y_label, size=11, anchor="middle",
                    rotate=-90)
    canvas.line(left, top + plot_h, width - right, top + plot_h)
    canvas.line(left, top, left, top + plot_h)

    legend_y = top + 4
    for index, (label, points) in enumerate(series):
        if not points:
            continue
        color = PALETTE[index % len(PALETTE)]
        canvas.polyline([pt(x, y) for x, y in points], stroke=color)
        canvas.line(width - right - 120, legend_y + 6, width - right - 100,
                    legend_y + 6, stroke=color, width=2)
        canvas.text(width - right - 94, legend_y + 9, label, size=10)
        legend_y += 16
    return canvas.to_string()


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str,
    y_label: str = "",
    width: int = 840,
    height: int = 400,
) -> str:
    """Fig. 8-style single-series bar chart."""
    if not items:
        raise ValueError("items must be non-empty")
    return grouped_bar_chart(
        [(label, [value]) for label, value in items],
        series_labels=[y_label or "value"],
        title=title,
        y_label=y_label,
        width=width,
        height=height,
    )
