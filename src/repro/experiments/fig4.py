"""Fig. 4 — CDFs of access (seek) distances, NoLS vs LS, ±2 GB window.

Sharded: one shard per workload (see :mod:`repro.experiments.registry`).
Under ``--fast`` each shard derives both distance logs without a recorder
replay — the LS side from the recorded fragment stream (its kept-access
seek log equals :class:`~repro.core.recorders.SeekLogRecorder`'s,
differentially tested) and the NoLS side from
:func:`~repro.analysis.fast.nols_seek_distances`; the vectorized CDF /
fraction kernels agree exactly with the reference helpers.  Payloads
carry the *full-resolution* CDFs (the terminal step plot needs them);
``merge`` downsamples for the JSON.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.distances import distance_cdf, fraction_within
from repro.core.config import LS, NOLS
from repro.core.recorders import SeekLogRecorder
from repro.experiments.common import downsample, replay_with, save_json
from repro.experiments.render import step_cdf
from repro.experiments.sweep import sweep_engine
from repro.util.units import sectors_to_gib
from repro.workloads import FIG4_WORKLOADS

EXHIBIT = "fig4"
# The paper clips to +/-1-2 GB on multi-TB volumes; the synthetic
# archetypes scale the LBA space down ~100x, so the clip window scales
# with it (see EXPERIMENTS.md).
WINDOW_GIB = 0.25


def shard_names(seed: int = 42, scale: float = 1.0) -> List[str]:
    """One shard per Fig. 4 workload."""
    return list(FIG4_WORKLOADS)


def run_shard(name: str, seed: int = 42, scale: float = 1.0) -> dict:
    """Both seek-distance CDFs for one workload (full resolution)."""
    engine = sweep_engine(seed, scale)
    trace = engine.trace(name)
    if engine.fast_enabled():
        from repro.analysis.fast import (
            distance_cdf_fast,
            fraction_within_fast,
            nols_seek_distances,
        )
        from repro.core.stream import stream_replay

        nols_distances = nols_seek_distances(trace)
        ls_distances = stream_replay(engine.stream_for(trace), LS).distances
        nols_cdf = distance_cdf_fast(nols_distances, WINDOW_GIB)
        ls_cdf = distance_cdf_fast(ls_distances, WINDOW_GIB)
        nols_fraction = fraction_within_fast(nols_distances, WINDOW_GIB)
        ls_fraction = fraction_within_fast(ls_distances, WINDOW_GIB)
    else:
        nols_rec = SeekLogRecorder()
        ls_rec = SeekLogRecorder()
        replay_with(trace, NOLS, [nols_rec])
        replay_with(trace, LS, [ls_rec])
        nols_cdf = distance_cdf(nols_rec.distances, WINDOW_GIB)
        ls_cdf = distance_cdf(ls_rec.distances, WINDOW_GIB)
        nols_fraction = fraction_within(nols_rec.distances, WINDOW_GIB)
        ls_fraction = fraction_within(ls_rec.distances, WINDOW_GIB)
    return {
        "nols_fraction": nols_fraction,
        "ls_fraction": ls_fraction,
        "nols_cdf": [(int(x), float(f)) for x, f in nols_cdf],
        "ls_cdf": [(int(x), float(f)) for x, f in ls_cdf],
    }


def merge(
    payloads: Dict[str, dict],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Assemble shard payloads, print the step plots, write the JSON."""
    data = {}
    for name in FIG4_WORKLOADS:
        payload = payloads[name]
        nols_cdf = payload["nols_cdf"]
        ls_cdf = payload["ls_cdf"]
        data[name] = {
            "window_gib": WINDOW_GIB,
            "nols_fraction_within_window": round(payload["nols_fraction"], 4),
            "ls_fraction_within_window": round(payload["ls_fraction"], 4),
            "nols_cdf": downsample(
                [(sectors_to_gib(int(x)), f) for x, f in nols_cdf]
            ),
            "ls_cdf": downsample([(sectors_to_gib(int(x)), f) for x, f in ls_cdf]),
        }
        print(
            f"Fig. 4 [{name}] seeks within +/-{WINDOW_GIB:g} GiB: "
            f"NoLS {data[name]['nols_fraction_within_window']:.1%} of all seeks, "
            f"LS {data[name]['ls_fraction_within_window']:.1%}"
        )
        gib_cdf = [(sectors_to_gib(int(x)), f) for x, f in ls_cdf]
        print(step_cdf(gib_cdf, title=f"  LS access-distance CDF (GiB), {name}"))
    save_json(EXHIBIT, data, out_dir)
    return data


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 4 for src2_2, usr_0, w84 and w64.

    Shape to check: the LS distance distribution is much wider than the
    NoLS one — a smaller fraction of LS seeks fall inside the window that
    contains virtually all the original trace's seeks.
    """
    payloads = {
        name: run_shard(name, seed, scale) for name in shard_names(seed, scale)
    }
    return merge(payloads, seed, scale, out_dir)
