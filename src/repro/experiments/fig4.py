"""Fig. 4 — CDFs of access (seek) distances, NoLS vs LS, ±2 GB window."""

from __future__ import annotations

from typing import Optional

from repro.analysis.distances import distance_cdf, fraction_within
from repro.core.config import LS, NOLS
from repro.core.recorders import SeekLogRecorder
from repro.experiments.common import downsample, replay_with, save_json, workload_trace
from repro.experiments.render import step_cdf
from repro.util.units import sectors_to_gib
from repro.workloads import FIG4_WORKLOADS

EXHIBIT = "fig4"
# The paper clips to +/-1-2 GB on multi-TB volumes; the synthetic
# archetypes scale the LBA space down ~100x, so the clip window scales
# with it (see EXPERIMENTS.md).
WINDOW_GIB = 0.25


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 4 for src2_2, usr_0, w84 and w64.

    Shape to check: the LS distance distribution is much wider than the
    NoLS one — a smaller fraction of LS seeks fall inside the window that
    contains virtually all the original trace's seeks.
    """
    data = {}
    for name in FIG4_WORKLOADS:
        trace = workload_trace(name, seed, scale)
        nols_rec = SeekLogRecorder()
        ls_rec = SeekLogRecorder()
        replay_with(trace, NOLS, [nols_rec])
        replay_with(trace, LS, [ls_rec])
        nols_cdf = distance_cdf(nols_rec.distances, WINDOW_GIB)
        ls_cdf = distance_cdf(ls_rec.distances, WINDOW_GIB)
        data[name] = {
            "window_gib": WINDOW_GIB,
            "nols_fraction_within_window": round(
                fraction_within(nols_rec.distances, WINDOW_GIB), 4
            ),
            "ls_fraction_within_window": round(
                fraction_within(ls_rec.distances, WINDOW_GIB), 4
            ),
            "nols_cdf": downsample(
                [(sectors_to_gib(int(x)), f) for x, f in nols_cdf]
            ),
            "ls_cdf": downsample([(sectors_to_gib(int(x)), f) for x, f in ls_cdf]),
        }
        print(
            f"Fig. 4 [{name}] seeks within +/-{WINDOW_GIB:g} GiB: "
            f"NoLS {data[name]['nols_fraction_within_window']:.1%} of all seeks, "
            f"LS {data[name]['ls_fraction_within_window']:.1%}"
        )
        gib_cdf = [(sectors_to_gib(int(x)), f) for x, f in ls_cdf]
        print(step_cdf(gib_cdf, title=f"  LS access-distance CDF (GiB), {name}"))
    save_json(EXHIBIT, data, out_dir)
    return data
