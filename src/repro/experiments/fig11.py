"""Fig. 11 — seek amplification factors of LS and the three techniques.

Sharded: one shard per workload (see :mod:`repro.experiments.registry`).
Each shard runs one workload's full technique sweep through the shared
:class:`~repro.experiments.sweep.SweepEngine` (NoLS baseline + recorded
fragment stream, both persistent-store-backed under ``--fast``), so a
parallel run pays each recording once machine-wide.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import PAPER_CONFIGS
from repro.core.metrics import seek_amplification
from repro.experiments.common import save_json
from repro.experiments.render import format_table
from repro.experiments.sweep import sweep_engine
from repro.workloads import CLOUDPHYSICS_WORKLOADS, MSR_WORKLOADS

EXHIBIT = "fig11"


def shard_names(seed: int = 42, scale: float = 1.0) -> List[str]:
    """One shard per Fig. 11 workload (both families)."""
    return list(MSR_WORKLOADS) + list(CLOUDPHYSICS_WORKLOADS)


def run_shard(name: str, seed: int = 42, scale: float = 1.0) -> dict:
    """The full technique-grid SAF sweep for one workload."""
    engine = sweep_engine(seed, scale)
    family = "msr" if name in MSR_WORKLOADS else "cloudphysics"
    baseline = engine.baseline(name)
    safs = {}
    for config, result in zip(
        PAPER_CONFIGS, engine.workload_sweep(name, PAPER_CONFIGS)
    ):
        saf = seek_amplification(result.stats, baseline)
        safs[config.name] = {
            "read": round(saf.read, 3),
            "write": round(saf.write, 3),
            "total": round(saf.total, 3),
        }
    return {"family": family, "saf": safs}


def merge(
    payloads: Dict[str, dict],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Assemble shard payloads, print both family tables, write the JSON."""
    data = {}
    for family, names in (("msr", MSR_WORKLOADS), ("cloudphysics", CLOUDPHYSICS_WORKLOADS)):
        rows = []
        for name in names:
            entry = payloads[name]
            data[name] = entry
            safs = entry["saf"]
            rows.append(
                [name]
                + [f"{safs[c.name]['total']:.2f}" for c in PAPER_CONFIGS]
            )
        print(
            format_table(
                ["workload"] + [c.name for c in PAPER_CONFIGS],
                rows,
                title=f"Fig. 11 ({family}): total seek amplification factor",
            )
        )
    save_json(EXHIBIT, data, out_dir)
    return data


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 11: total SAF per workload under plain LS,
    LS+opportunistic defrag, LS+look-ahead-behind prefetch and
    LS+selective caching (64 MB), for the MSR and CloudPhysics sets.

    Shapes to check (paper §V): MSR workloads except usr_1/hm_1 sit below
    1; most CloudPhysics workloads sit above 1 with w91 worst; defrag
    worsens src2_2/w93/w20; prefetch gains are large for w84/w95/w91 and
    marginal for usr_1/hm_1/w55/w33; caching is the best technique nearly
    everywhere.
    """
    payloads = {
        name: run_shard(name, seed, scale) for name in shard_names(seed, scale)
    }
    return merge(payloads, seed, scale, out_dir)
