"""Fig. 5 — CDFs of dynamic fragmentation across fragmented reads."""

from __future__ import annotations

from typing import Optional

from repro.analysis.fragmentation import (
    fragment_cdf,
    fraction_of_fragments_in_top_reads,
)
from repro.core.config import LS
from repro.core.recorders import FragmentationRecorder
from repro.experiments.common import replay_with, save_json, workload_trace
from repro.experiments.render import step_cdf
from repro.workloads import FIG5_WORKLOADS

EXHIBIT = "fig5"


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 5 for usr_0, hm_1, w20 and w36.

    Shape to check: fragments concentrate — the most-fragmented ~20 % of
    fragmented reads hold >=50 % of all fragments (more extreme for w36).
    """
    data = {}
    for name in FIG5_WORKLOADS:
        trace = workload_trace(name, seed, scale)
        recorder = FragmentationRecorder()
        replay_with(trace, LS, [recorder])
        fragments = recorder.fragmented_read_fragments
        top20 = fraction_of_fragments_in_top_reads(recorder.read_fragments, 0.2)
        cdf = fragment_cdf(recorder.read_fragments)
        data[name] = {
            "fragmented_reads": len(fragments),
            "total_fragments": sum(fragments),
            "max_fragments_per_read": max(fragments) if fragments else 0,
            "fraction_of_fragments_in_top20pct_reads": round(top20, 4),
            "cdf": cdf[:200],
        }
        print(
            f"Fig. 5 [{name}] fragmented reads: {len(fragments)}, "
            f"fragments: {sum(fragments)}, top-20% of reads hold "
            f"{top20:.1%} of fragments"
        )
        print(step_cdf(cdf, title=f"  CDF of fragments per fragmented read, {name}"))
    save_json(EXHIBIT, data, out_dir)
    return data
