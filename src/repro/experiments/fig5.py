"""Fig. 5 — CDFs of dynamic fragmentation across fragmented reads.

Sharded: one shard per workload (see :mod:`repro.experiments.registry`).
Under ``--fast`` each shard reads the fragmented-read fragment counts
straight off the recorded stream (``group_size`` is exactly the
:class:`~repro.core.recorders.FragmentationRecorder` multiset — every
Fig. 5 statistic filters to fragments > 1 and sorts, so read order is
immaterial) and runs the vectorized CDF/concentration kernels, which
agree exactly with the reference helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.fragmentation import (
    fragment_cdf,
    fraction_of_fragments_in_top_reads,
)
from repro.core.config import LS
from repro.core.recorders import FragmentationRecorder
from repro.experiments.common import replay_with, save_json
from repro.experiments.render import step_cdf
from repro.experiments.sweep import sweep_engine
from repro.workloads import FIG5_WORKLOADS

EXHIBIT = "fig5"


def shard_names(seed: int = 42, scale: float = 1.0) -> List[str]:
    """One shard per Fig. 5 workload."""
    return list(FIG5_WORKLOADS)


def run_shard(name: str, seed: int = 42, scale: float = 1.0) -> dict:
    """Fragmentation statistics + full CDF for one workload."""
    engine = sweep_engine(seed, scale)
    trace = engine.trace(name)
    if engine.fast_enabled():
        from repro.analysis.fast import (
            fragment_cdf_fast,
            fraction_of_fragments_in_top_reads_fast,
        )

        stream = engine.stream_for(trace)
        fragments = stream.group_size.tolist()
        top20 = fraction_of_fragments_in_top_reads_fast(fragments, 0.2)
        cdf = fragment_cdf_fast(fragments)
    else:
        recorder = FragmentationRecorder()
        replay_with(trace, LS, [recorder])
        fragments = recorder.fragmented_read_fragments
        top20 = fraction_of_fragments_in_top_reads(recorder.read_fragments, 0.2)
        cdf = fragment_cdf(recorder.read_fragments)
    return {
        "fragmented_reads": len(fragments),
        "total_fragments": sum(fragments),
        "max_fragments_per_read": max(fragments) if fragments else 0,
        "top20": top20,
        "cdf": [(float(x), float(f)) for x, f in cdf],
    }


def merge(
    payloads: Dict[str, dict],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Assemble shard payloads, print the step plots, write the JSON."""
    data = {}
    for name in FIG5_WORKLOADS:
        payload = payloads[name]
        cdf = payload["cdf"]
        data[name] = {
            "fragmented_reads": payload["fragmented_reads"],
            "total_fragments": payload["total_fragments"],
            "max_fragments_per_read": payload["max_fragments_per_read"],
            "fraction_of_fragments_in_top20pct_reads": round(payload["top20"], 4),
            "cdf": cdf[:200],
        }
        print(
            f"Fig. 5 [{name}] fragmented reads: {payload['fragmented_reads']}, "
            f"fragments: {payload['total_fragments']}, top-20% of reads hold "
            f"{payload['top20']:.1%} of fragments"
        )
        print(step_cdf(cdf, title=f"  CDF of fragments per fragmented read, {name}"))
    save_json(EXHIBIT, data, out_dir)
    return data


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 5 for usr_0, hm_1, w20 and w36.

    Shape to check: fragments concentrate — the most-fragmented ~20 % of
    fragmented reads hold >=50 % of all fragments (more extreme for w36).
    """
    payloads = {
        name: run_shard(name, seed, scale) for name in shard_names(seed, scale)
    }
    return merge(payloads, seed, scale, out_dir)
