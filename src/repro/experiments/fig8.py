"""Fig. 8 — mis-ordered writes within a 256 KB horizon, per workload.

Sharded: one shard per workload (see :mod:`repro.experiments.registry`).
Under ``--fast`` each shard uses the vectorized
:func:`~repro.analysis.fast.misorder_rate_fast` kernel, which agrees
exactly with the reference scan.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.misorder import misorder_rate
from repro.experiments.common import save_json, workload_trace
from repro.experiments.render import hbar_chart
from repro.experiments.sweep import sweep_engine
from repro.workloads import TABLE1

EXHIBIT = "fig8"
HORIZON_KIB = 256.0


def shard_names(seed: int = 42, scale: float = 1.0) -> List[str]:
    """One shard per Table I workload."""
    return list(TABLE1)


def run_shard(name: str, seed: int = 42, scale: float = 1.0) -> dict:
    """Mis-ordered write rate for one workload."""
    trace = workload_trace(name, seed, scale)
    if sweep_engine(seed, scale).fast_enabled():
        from repro.analysis.fast import misorder_rate_fast

        rate = misorder_rate_fast(trace, HORIZON_KIB)
    else:
        rate = misorder_rate(trace, HORIZON_KIB)
    return {"rate": round(rate, 5)}


def merge(
    payloads: Dict[str, dict],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Assemble shard payloads, print the chart, write the JSON."""
    data = {name: payloads[name]["rate"] for name in TABLE1}
    print(
        hbar_chart(
            sorted(data.items(), key=lambda kv: -kv[1]),
            title=f"Fig. 8: mis-ordered write rate (horizon {HORIZON_KIB:g} KB)",
            fmt="{:.4f}",
        )
    )
    save_json(EXHIBIT, data, out_dir)
    return data


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 8: the fraction of writes whose LBA sequentially
    follows a write issued within the next 256 KB of written volume.

    Shape to check: rates reach roughly 1-in-20 for src2_2 and 1-in-25
    for w106, and are near zero for workloads without mis-ordered runs.
    """
    payloads = {
        name: run_shard(name, seed, scale) for name in shard_names(seed, scale)
    }
    return merge(payloads, seed, scale, out_dir)
