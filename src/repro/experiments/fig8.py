"""Fig. 8 — mis-ordered writes within a 256 KB horizon, per workload."""

from __future__ import annotations

from typing import Optional

from repro.analysis.misorder import misorder_rate
from repro.experiments.common import save_json, workload_trace
from repro.experiments.render import hbar_chart
from repro.workloads import TABLE1

EXHIBIT = "fig8"
HORIZON_KIB = 256.0


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 8: the fraction of writes whose LBA sequentially
    follows a write issued within the next 256 KB of written volume.

    Shape to check: rates reach roughly 1-in-20 for src2_2 and 1-in-25
    for w106, and are near zero for workloads without mis-ordered runs.
    """
    data = {}
    for name in TABLE1:
        trace = workload_trace(name, seed, scale)
        data[name] = round(misorder_rate(trace, HORIZON_KIB), 5)
    print(
        hbar_chart(
            sorted(data.items(), key=lambda kv: -kv[1]),
            title=f"Fig. 8: mis-ordered write rate (horizon {HORIZON_KIB:g} KB)",
            fmt="{:.4f}",
        )
    )
    save_json(EXHIBIT, data, out_dir)
    return data
