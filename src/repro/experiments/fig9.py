"""Fig. 9 — worked example of look-ahead-behind prefetching.

Replays the paper's toy scenario: LBAs 3, 2, 4 are updated out of order;
reading LBAs 1..5 costs five seeks without prefetching, but three with
look-ahead-behind enabled (LBAs 3 and 4 are prefetched while reading 2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import LS, TechniqueConfig
from repro.core.prefetch import PrefetchConfig
from repro.experiments.common import save_json
from repro.experiments.sweep import sweep_engine
from repro.trace.record import IORequest
from repro.trace.trace import Trace

EXHIBIT = "fig9"
UNIT = 8  # one toy "LBA" = 8 sectors (4 KiB)

WITH_PREFETCH = TechniqueConfig(
    name="LS+prefetch",
    prefetch=PrefetchConfig(behind_kib=4.0, ahead_kib=4.0, buffer_mib=1.0),
)


def _scenario_trace() -> Trace:
    """Wr 3; Wr 2; Wr 4; Rd 1-5 over an initially contiguous LBA range."""
    requests = [IORequest.write(unit * UNIT, UNIT) for unit in (3, 2, 4)]  # tA..tC
    requests.append(IORequest.read(1 * UNIT, 5 * UNIT))                    # tD / tD'
    return Trace(requests, name="fig9")


def _scenario(engine, config: TechniqueConfig) -> dict:
    stats = engine.replay(_scenario_trace(), config).stats
    return {
        "fragments": stats.read_fragments,
        "read_seeks": stats.read_seeks,
        "buffer_fragment_hits": stats.buffer_fragment_hits,
    }


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate the Fig. 9 walkthrough (seed/scale unused: exact scenario).

    Expected, matching the figure: without prefetching the read of LBAs
    1..5 pays 5 seeks; with look-ahead-behind it pays 3, with LBAs 3 and 4
    served from the prefetch buffer.
    """
    engine = sweep_engine(seed, scale)
    data = {
        "without_prefetch": _scenario(engine, LS),
        "with_prefetch": _scenario(engine, WITH_PREFETCH),
    }
    wo, wp = data["without_prefetch"], data["with_prefetch"]
    print("Fig. 9 scenario (LBAs 1..6 contiguous; Wr 3; Wr 2; Wr 4; Rd 1-5)")
    print(f"  without prefetch: fragments={wo['fragments']} seeks={wo['read_seeks']}")
    print(f"  with prefetch:    fragments={wp['fragments']} seeks={wp['read_seeks']} "
          f"(buffer hits={wp['buffer_fragment_hits']})")
    save_json(EXHIBIT, data, out_dir)
    return data
