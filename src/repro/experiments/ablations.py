"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's exhibits: each sweeps one knob of one
mechanism and reports the SAF (or WAF) surface, so the default settings in
:mod:`repro.core.config` are justified by data rather than assertion.

* ``ablation_cache`` — selective-cache capacity sweep (why 64 MB works,
  and why it fails for usr_1/src2_2).
* ``ablation_defrag`` — the §IV-A throttles (min fragments N x min
  accesses k) on a defrag-friendly and a defrag-hostile workload.
* ``ablation_prefetch`` — look-ahead/behind window sweep.
* ``ablation_cleaning`` — zone over-provisioning vs write amplification
  and seeks for the finite-disk cleaning translator.
* ``ablation_multifrontier`` — WOLF-style hot/cold separation vs a single
  frontier: frontier-switch write seeks vs reduced cold fragmentation.
* ``taxonomy`` — the §III log-friendly / agnostic / sensitive
  classification for all 21 workloads, predicted from trace features and
  measured from replays.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.classify import characterize, classify_saf
from repro.core.cleaning import ZonedCleaningTranslator
from repro.core.config import NOLS, TechniqueConfig, build_translator
from repro.core.defrag import DefragConfig
from repro.core.metrics import seek_amplification
from repro.core.multifrontier import MultiFrontierTranslator
from repro.core.prefetch import PrefetchConfig
from repro.core.selective_cache import SelectiveCacheConfig
from repro.core.simulator import replay
from repro.core.translators import LogStructuredTranslator
from repro.experiments.common import fast_replay_default, save_json
from repro.experiments.render import format_table
from repro.experiments.sweep import SweepEngine, sweep_engine
from repro.extentmap.tiers import DEFAULT_KERNEL_TIER, make_address_map, resolve_map_tier
from repro.util.units import mib_to_sectors
from repro.workloads import ReadMix, WorkloadSpec, WriteMix, generate_workload


def _ablation_replay(trace, translator):
    """Replay a hand-built ablation translator via the cheapest exact path.

    The finite-log ablations construct their translators directly (they
    sweep constructor knobs no :class:`TechniqueConfig` exposes), so they
    bypass the sweep engine's dispatch.  Under the process-wide ``--fast``
    default this routes the replay through the matching batch kernel —
    exact, so exhibit JSON stays byte-identical to a reference run — and
    falls back (tallied by reason) where no kernel applies.
    """
    return replay(trace, translator, fast=fast_replay_default())


def _ablation_map():
    """Extent map for an ablation translator (array tier under ``--fast``)."""
    tier = resolve_map_tier(DEFAULT_KERNEL_TIER) if fast_replay_default() else None
    return make_address_map(tier)


def _sweep_safs(
    engine: SweepEngine, name: str, configs
) -> list:
    """Total SAF per config on one workload, via the shared-replay engine."""
    baseline = engine.baseline(name)
    return [
        seek_amplification(result.stats, baseline).total
        for result in engine.workload_sweep(name, list(configs))
    ]


def run_cache(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Selective-cache capacity sweep on a cache-friendly workload (w91),
    a capacity-limited one (usr_1) and a small-working-set one (hm_1)."""
    sizes = (4.0, 16.0, 64.0, 256.0)
    engine = sweep_engine(seed, scale)
    data = {}
    rows = []
    for name in ("w91", "usr_1", "hm_1"):
        configs = [TechniqueConfig(name="LS")] + [
            TechniqueConfig(
                name=f"cache{mib:g}",
                cache=SelectiveCacheConfig(capacity_mib=mib),
            )
            for mib in sizes
        ]
        safs = _sweep_safs(engine, name, configs)
        row = {"LS": safs[0]}
        for mib, saf in zip(sizes, safs[1:]):
            row[f"{mib:g}MB"] = round(saf, 3)
        data[name] = row
        rows.append([name, f"{row['LS']:.2f}"] + [f"{row[f'{m:g}MB']:.2f}" for m in sizes])
    print(
        format_table(
            ["workload", "LS"] + [f"{m:g} MB" for m in sizes],
            rows,
            title="Ablation: selective-cache capacity vs total SAF",
        )
    )
    save_json("ablation_cache", data, out_dir)
    return data


def run_defrag(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Defrag throttle grid (N x k) on w91 (defrag helps) and w20 (hurts)."""
    grid = [(n, k) for n in (2, 4, 8) for k in (1, 2, 4)]
    engine = sweep_engine(seed, scale)
    data = {}
    for name in ("w91", "w20"):
        configs = [TechniqueConfig(name="LS")] + [
            TechniqueConfig(
                name=f"defrag{n}:{k}",
                defrag=DefragConfig(min_fragments=n, min_accesses=k),
            )
            for n, k in grid
        ]
        safs = _sweep_safs(engine, name, configs)
        ls = safs[0]
        cells = {
            f"N{n}k{k}": round(saf, 3) for (n, k), saf in zip(grid, safs[1:])
        }
        data[name] = {"LS": round(ls, 3), "grid": cells}
        rows = [
            [f"N={n}"] + [f"{cells[f'N{n}k{k}']:.2f}" for k in (1, 2, 4)]
            for n in (2, 4, 8)
        ]
        print(
            format_table(
                ["", "k=1", "k=2", "k=4"],
                rows,
                title=f"Ablation: defrag throttles on {name} (plain LS {ls:.2f})",
            )
        )
    save_json("ablation_defrag", data, out_dir)
    return data


def run_prefetch(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Prefetch window sweep on w91 (cluster-local fragments) and hm_1
    (temporally scattered fragments — windows cannot help much)."""
    windows = (64.0, 128.0, 256.0, 512.0)
    engine = sweep_engine(seed, scale)
    data = {}
    rows = []
    for name in ("w91", "hm_1"):
        configs = [TechniqueConfig(name="LS")] + [
            TechniqueConfig(
                name=f"pf{kib:g}",
                prefetch=PrefetchConfig(behind_kib=kib, ahead_kib=kib),
            )
            for kib in windows
        ]
        safs = _sweep_safs(engine, name, configs)
        row = {"LS": round(safs[0], 3)}
        for kib, saf in zip(windows, safs[1:]):
            row[f"{kib:g}KB"] = round(saf, 3)
        data[name] = row
        rows.append(
            [name, f"{row['LS']:.2f}"] + [f"{row[f'{w:g}KB']:.2f}" for w in windows]
        )
    print(
        format_table(
            ["workload", "LS"] + [f"{w:g} KB" for w in windows],
            rows,
            title="Ablation: look-ahead-behind window vs total SAF",
        )
    )
    save_json("ablation_prefetch", data, out_dir)
    return data


def _overwrite_workload(seed: int, scale: float):
    """A small-LBA-space overwrite workload that forces cleaning."""
    spec = WorkloadSpec(
        name="cleaning-ablation",
        family="cloudphysics",
        total_ops=int(8000 * scale) or 1000,
        read_fraction=0.3,
        mean_read_kib=16.0,
        mean_write_kib=16.0,
        working_set_mib=8,
        hot_mib=4,
        write_mix=WriteMix(random=0.5, hot_overwrite=0.5),
        read_mix=ReadMix(scan=0.5, random=0.5),
        phases=4,
    )
    return generate_workload(spec, seed=seed)


def run_cleaning(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Over-provisioning sweep for the finite-disk cleaning translator.

    More spare zones → fewer, cheaper cleanings (lower WAF) at the cost of
    capacity; the classic log-structured trade-off the paper's infinite
    model sidesteps.
    """
    trace = _overwrite_workload(seed, scale)
    baseline = _ablation_replay(trace, build_translator(trace, NOLS)).stats
    data = {}
    rows = []
    for n_zones in (12, 16, 24, 40):
        translator = ZonedCleaningTranslator(
            frontier_base=trace.max_end,
            zone_mib=1.0,
            n_zones=n_zones,
            reserve_zones=2,
            address_map=_ablation_map(),
        )
        stats = _ablation_replay(trace, translator).stats
        cs = translator.cleaning_stats
        total = stats.total_seeks + cs.cleaning_seeks
        over = n_zones * 1.0 / 8.0  # log capacity / workload LBA space
        data[str(n_zones)] = {
            "overprovision_x": round(over, 2),
            "waf": round(cs.write_amplification, 3),
            "cleanings": cs.cleanings,
            "host_seeks": stats.total_seeks,
            "cleaning_seeks": cs.cleaning_seeks,
            "saf_incl_cleaning": round(total / max(1, baseline.total_seeks), 3),
        }
        rows.append(
            [
                n_zones,
                f"{over:.1f}x",
                f"{cs.write_amplification:.2f}",
                cs.cleanings,
                stats.total_seeks,
                cs.cleaning_seeks,
                f"{total / max(1, baseline.total_seeks):.2f}",
            ]
        )
    print(
        format_table(
            ["zones", "capacity/ws", "WAF", "cleanings", "host seeks",
             "cleaning seeks", "SAF incl. cleaning"],
            rows,
            title="Ablation: log over-provisioning vs cleaning cost",
        )
    )
    save_json("ablation_cleaning", data, out_dir)
    return data


def run_multifrontier(
    seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None
) -> dict:
    """Single vs WOLF-style dual frontier on a hot/cold mixed workload."""
    trace = sweep_engine(seed, scale).trace("w91")
    baseline = _ablation_replay(trace, build_translator(trace, NOLS)).stats

    single = LogStructuredTranslator(
        frontier_base=trace.max_end, address_map=_ablation_map()
    )
    single_stats = _ablation_replay(trace, single).stats

    dual = MultiFrontierTranslator(
        frontier_base=trace.max_end,
        region_sectors=mib_to_sectors(2048),
        address_map=_ablation_map(),
    )
    dual_stats = _ablation_replay(trace, dual).stats

    data = {
        "single": {
            "write_seeks": single_stats.write_seeks,
            "read_seeks": single_stats.read_seeks,
            "saf": round(
                seek_amplification(single_stats, baseline).total, 3
            ),
        },
        "dual": {
            "write_seeks": dual_stats.write_seeks,
            "read_seeks": dual_stats.read_seeks,
            "frontier_switches": dual.frontier_switches,
            "hot_writes": dual.hot_writes,
            "cold_writes": dual.cold_writes,
            "saf": round(seek_amplification(dual_stats, baseline).total, 3),
        },
    }
    print(
        format_table(
            ["layout", "write seeks", "read seeks", "SAF"],
            [
                ["single frontier", single_stats.write_seeks,
                 single_stats.read_seeks, f"{data['single']['saf']:.2f}"],
                ["hot/cold frontiers", dual_stats.write_seeks,
                 dual_stats.read_seeks, f"{data['dual']['saf']:.2f}"],
            ],
            title=(
                "Ablation: WOLF-style frontier separation "
                f"({dual.frontier_switches} switches, "
                f"{dual.hot_writes} hot / {dual.cold_writes} cold writes)"
            ),
        )
    )
    save_json("ablation_multifrontier", data, out_dir)
    return data


def run_combined(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """All three techniques composed, vs the best single technique.

    Fig. 11 evaluates the mechanisms one at a time; a deployed translation
    layer would run them together.  Composition order per fragment:
    selective cache, then prefetch buffer, then media (with defrag after
    the read) — see :class:`LogStructuredTranslator`.
    """
    from repro.core.config import LS_ALL
    from repro.workloads import TABLE1

    combined = LS_ALL
    engine = sweep_engine(seed, scale)
    data = {}
    rows = []
    for name in TABLE1:
        single_configs = (
            TechniqueConfig(name="LS"),
            TechniqueConfig(name="LS+defrag", defrag=DefragConfig()),
            TechniqueConfig(name="LS+prefetch", prefetch=PrefetchConfig()),
            TechniqueConfig(name="LS+cache", cache=SelectiveCacheConfig()),
        )
        safs = _sweep_safs(engine, name, single_configs + (combined,))
        singles = {
            config.name: saf for config, saf in zip(single_configs, safs)
        }
        best_single = min(
            (value, key) for key, value in singles.items() if key != "LS"
        )
        all_three = safs[-1]
        data[name] = {
            "ls": round(singles["LS"], 3),
            "best_single": round(best_single[0], 3),
            "best_single_name": best_single[1],
            "combined": round(all_three, 3),
        }
        rows.append(
            [
                name,
                f"{singles['LS']:.2f}",
                f"{best_single[0]:.2f}",
                best_single[1],
                f"{all_three:.2f}",
            ]
        )
    wins = sum(
        1 for row in data.values() if row["combined"] <= row["best_single"] + 0.02
    )
    print(
        format_table(
            ["workload", "LS", "best single", "which", "combined"],
            rows,
            title=(
                "Ablation: all three techniques composed "
                f"(matches or beats the best single in {wins}/{len(data)})"
            ),
        )
    )
    save_json("ablation_combined", data, out_dir)
    return data


def run_taxonomy(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """§III taxonomy: classify every workload, predicted vs measured."""
    from repro.core.config import LS
    from repro.workloads import TABLE1

    engine = sweep_engine(seed, scale)
    data = {}
    rows = []
    agree = 0
    for name in TABLE1:
        trace = engine.trace(name)
        saf = engine.saf(name, LS).total
        measured = classify_saf(saf)
        predicted = characterize(trace).predicted_sensitivity()
        matches = predicted is measured or (
            # agnostic is a thin band; count adjacent predictions as a pass
            measured.value == "log-agnostic"
        )
        agree += matches
        data[name] = {
            "saf": round(saf, 3),
            "measured": measured.value,
            "predicted": predicted.value,
        }
        rows.append([name, f"{saf:.2f}", measured.value, predicted.value])
    print(
        format_table(
            ["workload", "LS SAF", "measured", "predicted from features"],
            rows,
            title=f"Workload taxonomy (feature prediction agrees on {agree}/21)",
        )
    )
    save_json("taxonomy", data, out_dir)
    return data
