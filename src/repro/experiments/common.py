"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple

from repro.core.config import TechniqueConfig, build_translator
from repro.core.recorders import Recorder
from repro.core.simulator import RunResult, Simulator
from repro.trace.trace import Trace
from repro.util.io import atomic_write_json
from repro.workloads import synthesize_workload

_TRACE_CACHE_MAX = 16
_trace_cache: "OrderedDict[Tuple[str, int, float], Trace]" = OrderedDict()


def workload_trace(name: str, seed: int, scale: float) -> Trace:
    """Memoized synthetic trace for a Table I workload.

    Several exhibits replay the same workloads; generating each trace once
    per (name, seed, scale) keeps a full ``all`` run fast and guarantees
    every exhibit sees the identical trace.  The cache is a small LRU
    (``_TRACE_CACHE_MAX`` entries) so a large-scale ``all`` run doesn't
    accumulate every workload it ever touched in memory.
    """
    key = (name, seed, scale)
    if key in _trace_cache:
        _trace_cache.move_to_end(key)
        return _trace_cache[key]
    trace = synthesize_workload(name, seed=seed, scale=scale)
    _trace_cache[key] = trace
    while len(_trace_cache) > _TRACE_CACHE_MAX:
        _trace_cache.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop all memoized workload traces (frees the memory immediately)."""
    _trace_cache.clear()


def trace_cache_size() -> int:
    """Number of traces currently memoized (bounded by the LRU limit)."""
    return len(_trace_cache)


def replay_with(
    trace: Trace,
    config: TechniqueConfig,
    recorders: Sequence[Recorder] = (),
) -> RunResult:
    """Replay ``trace`` under ``config`` with optional recorders attached."""
    translator = build_translator(trace, config)
    return Simulator(recorders=list(recorders)).run(trace, translator)


def save_json(exhibit: str, data: dict, out_dir: Optional[str]) -> Optional[Path]:
    """Dump exhibit data as ``<out_dir>/<exhibit>.json``; None disables.

    The write is atomic (tmp file + rename), so a run killed mid-dump
    never leaves a truncated JSON behind — at worst a stale ``.tmp`` file
    sits next to the previous complete version.
    """
    if out_dir is None:
        return None
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    return atomic_write_json(out / f"{exhibit}.json", data)


def downsample(series: Iterable[float], max_points: int = 200) -> list:
    """Thin a long series for JSON output, keeping first/last points."""
    values = list(series)
    if len(values) <= max_points:
        return values
    stride = len(values) / max_points
    picked = [values[int(i * stride)] for i in range(max_points)]
    picked[-1] = values[-1]
    return picked
