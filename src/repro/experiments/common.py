"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core.batch import BatchUnsupportedError, batch_replay
from repro.core.config import TechniqueConfig, build_translator
from repro.core.recorders import Recorder
from repro.core.simulator import RetryPolicy, RunResult, Simulator
from repro.trace.trace import Trace
from repro.util.io import atomic_write_json
from repro.workloads import synthesize_workload

_TRACE_CACHE_MAX = 16
_trace_cache: "OrderedDict[Tuple[str, int, float], Trace]" = OrderedDict()

_trace_store = None


def set_trace_store(root: Optional[str]) -> None:
    """Process-wide compiled-trace store for :func:`workload_trace`.

    Wired to the experiment CLI's ``--trace-store DIR`` flag (and forwarded
    to each parallel worker).  With a store set, synthesized workload
    traces are compiled to ``.npz`` on first use and loaded back on later
    runs — the in-memory LRU stays in front, so the store only pays off
    across processes/runs.  ``None`` disables.
    """
    global _trace_store
    if root is None:
        _trace_store = None
        return
    from repro.trace.store import TraceStore

    _trace_store = root if isinstance(root, TraceStore) else TraceStore(root)


def trace_store():
    """The active :class:`~repro.trace.store.TraceStore`, or None."""
    return _trace_store


def workload_trace(name: str, seed: int, scale: float) -> Trace:
    """Memoized synthetic trace for a Table I workload.

    Several exhibits replay the same workloads; generating each trace once
    per (name, seed, scale) keeps a full ``all`` run fast and guarantees
    every exhibit sees the identical trace.  The cache is a small LRU
    (``_TRACE_CACHE_MAX`` entries) so a large-scale ``all`` run doesn't
    accumulate every workload it ever touched in memory.  When a compiled
    store is active (:func:`set_trace_store`), misses consult it before
    synthesizing and compile what they synthesize.
    """
    key = (name, seed, scale)
    if key in _trace_cache:
        _trace_cache.move_to_end(key)
        return _trace_cache[key]
    trace = None
    meta = None
    if _trace_store is not None:
        from repro.trace.store import synthetic_meta

        meta = synthetic_meta(name, seed, scale)
        trace = _trace_store.load(meta)
        if trace is not None:
            # Stored traces lose their name (keyed by meta); restore it so
            # exhibits label results identically either way.
            trace = trace if trace.name == name else trace.renamed(name)
    if trace is None:
        trace = synthesize_workload(name, seed=seed, scale=scale)
        if _trace_store is not None:
            _trace_store.store(trace, meta)
    _trace_cache[key] = trace
    while len(_trace_cache) > _TRACE_CACHE_MAX:
        _trace_cache.popitem(last=False)
    return trace


_stream_store = None


def set_stream_store(root: Optional[str]) -> None:
    """Process-wide persistent stream store for the :class:`SweepEngine`.

    Wired to the experiment CLI's ``--stream-store DIR`` flag (and
    forwarded to each parallel worker).  With a store set, each workload's
    plain-LS fragment stream is recorded by whichever process gets there
    first and memory-mapped (zero-copy) by everyone else; NoLS baseline
    stats are shared the same way.  ``None`` disables.
    """
    global _stream_store
    if root is None:
        _stream_store = None
        return
    from repro.core.stream_store import StreamStore

    _stream_store = root if isinstance(root, StreamStore) else StreamStore(root)


def stream_store():
    """The active :class:`~repro.core.stream_store.StreamStore`, or None."""
    return _stream_store


def clear_trace_cache() -> None:
    """Drop all memoized workload traces (frees the memory immediately)."""
    _trace_cache.clear()


def trace_cache_size() -> int:
    """Number of traces currently memoized (bounded by the LRU limit)."""
    return len(_trace_cache)


_fast_replay_default = False


def set_fast_replay(enabled: bool) -> None:
    """Process-wide default for :func:`replay_with`'s fast path.

    Flipped by the experiment CLI's ``--fast`` flag (and by the parallel
    runner inside each worker process) so every exhibit replays through
    the vectorized batch kernel without each call site opting in.
    Replays that attach recorders still use the reference simulator.
    """
    global _fast_replay_default
    _fast_replay_default = bool(enabled)


def fast_replay_default() -> bool:
    """Current process-wide fast-replay default (see :func:`set_fast_replay`)."""
    return _fast_replay_default


_fallback_counts: Dict[str, int] = {}


def note_reference_fallback(reason: str) -> None:
    """Record one fast-path request served by the reference simulator.

    ``reason`` is the structured tag naming the feature that forced the
    fallback (:attr:`~repro.core.batch.BatchUnsupportedError.reason`, or
    ``"recorders"`` / ``"retry-policy"`` for replay-call features the
    kernels never see).  The exhibit runner drains the per-process counts
    into the run manifest so a ``--fast`` run shows *where* it silently
    ran at reference speed.
    """
    _fallback_counts[reason] = _fallback_counts.get(reason, 0) + 1


def drain_fallback_counts() -> Dict[str, int]:
    """Return and clear the per-reason reference-fallback counts."""
    global _fallback_counts
    counts, _fallback_counts = _fallback_counts, {}
    return counts


def replay_with(
    trace: Trace,
    config: TechniqueConfig,
    recorders: Sequence[Recorder] = (),
    fast: Optional[bool] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> RunResult:
    """Replay ``trace`` under ``config`` with optional recorders attached.

    ``fast`` selects the vectorized batch kernel
    (:mod:`repro.core.batch`); ``None`` defers to ``config.fast`` or the
    process-wide default set by :func:`set_fast_replay`.  The kernel is
    exact, and replays it cannot serve — recorders attached, or a
    ``retry_policy`` (the kernel never injects faults) — fall back to the
    reference simulator, so enabling it never changes results; each
    fallback is tallied by reason (:func:`note_reference_fallback`) so
    ``--fast`` runs surface where they ran at reference speed.
    """
    if fast is None:
        fast = config.fast or _fast_replay_default
    if fast:
        if recorders:
            note_reference_fallback("recorders")
        elif retry_policy is not None:
            note_reference_fallback("retry-policy")
        else:
            try:
                return batch_replay(trace, config).run_result
            except BatchUnsupportedError as exc:
                note_reference_fallback(exc.reason)
    translator = build_translator(trace, config)
    return Simulator(
        recorders=list(recorders), retry_policy=retry_policy
    ).run(trace, translator)


def save_json(exhibit: str, data: dict, out_dir: Optional[str]) -> Optional[Path]:
    """Dump exhibit data as ``<out_dir>/<exhibit>.json``; None disables.

    The write is atomic (tmp file + rename), so a run killed mid-dump
    never leaves a truncated JSON behind — at worst a stale ``.tmp`` file
    sits next to the previous complete version.
    """
    if out_dir is None:
        return None
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    return atomic_write_json(out / f"{exhibit}.json", data)


def downsample(series: Iterable[float], max_points: int = 200) -> list:
    """Thin a long series for JSON output, keeping first/last points."""
    values = list(series)
    if len(values) <= max_points:
        return values
    stride = len(values) / max_points
    picked = [values[int(i * stride)] for i in range(max_points)]
    picked[-1] = values[-1]
    return picked
