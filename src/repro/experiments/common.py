"""Shared plumbing for the experiment modules."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core.config import TechniqueConfig, build_translator
from repro.core.recorders import Recorder
from repro.core.simulator import RunResult, Simulator
from repro.trace.trace import Trace
from repro.workloads import synthesize_workload

_trace_cache: Dict[Tuple[str, int, float], Trace] = {}


def workload_trace(name: str, seed: int, scale: float) -> Trace:
    """Memoized synthetic trace for a Table I workload.

    Several exhibits replay the same workloads; generating each trace once
    per (name, seed, scale) keeps a full ``all`` run fast and guarantees
    every exhibit sees the identical trace.
    """
    key = (name, seed, scale)
    if key not in _trace_cache:
        _trace_cache[key] = synthesize_workload(name, seed=seed, scale=scale)
    return _trace_cache[key]


def replay_with(
    trace: Trace,
    config: TechniqueConfig,
    recorders: Sequence[Recorder] = (),
) -> RunResult:
    """Replay ``trace`` under ``config`` with optional recorders attached."""
    translator = build_translator(trace, config)
    return Simulator(recorders=list(recorders)).run(trace, translator)


def save_json(exhibit: str, data: dict, out_dir: Optional[str]) -> Optional[Path]:
    """Dump exhibit data as ``<out_dir>/<exhibit>.json``; None disables."""
    if out_dir is None:
        return None
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{exhibit}.json"
    with path.open("w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return path


def downsample(series: Iterable[float], max_points: int = 200) -> list:
    """Thin a long series for JSON output, keeping first/last points."""
    values = list(series)
    if len(values) <= max_points:
        return values
    stride = len(values) / max_points
    picked = [values[int(i * stride)] for i in range(max_points)]
    picked[-1] = values[-1]
    return picked
