"""Fig. 3 — long-seek (>500 KB) overhead over time, LS minus NoLS."""

from __future__ import annotations

from typing import Optional

from repro.analysis.temporal import WindowedSeekRecorder, long_seek_difference
from repro.core.config import LS, NOLS
from repro.experiments.common import downsample, replay_with, save_json, workload_trace
from repro.experiments.render import sparkline
from repro.workloads import FIG3_WORKLOADS

EXHIBIT = "fig3"
WINDOW_OPS = 500
MIN_SEEK_KIB = 500.0


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 3 for usr_1, web_0, w91 and w55.

    Shape to check: the difference series is strongly bursty — seek
    overhead concentrates in read-phase windows (the paper's diurnal
    pattern), rather than spreading evenly over the trace.
    """
    data = {}
    for name in FIG3_WORKLOADS:
        trace = workload_trace(name, seed, scale)
        ls_rec = WindowedSeekRecorder(window_ops=WINDOW_OPS, min_seek_kib=MIN_SEEK_KIB)
        nols_rec = WindowedSeekRecorder(window_ops=WINDOW_OPS, min_seek_kib=MIN_SEEK_KIB)
        replay_with(trace, LS, [ls_rec])
        replay_with(trace, NOLS, [nols_rec])
        diff = long_seek_difference(ls_rec, nols_rec)
        positive = [d for d in diff if d > 0]
        burstiness = (max(diff) / (sum(diff) / len(diff))) if diff and sum(diff) else 0.0
        data[name] = {
            "window_ops": WINDOW_OPS,
            "series": downsample(diff),
            "total_extra_long_seeks": sum(diff),
            "max_window": max(diff) if diff else 0,
            "windows_with_overhead": len(positive),
            "windows": len(diff),
            "burstiness": round(burstiness, 2),
        }
        print(f"Fig. 3 [{name}] extra long seeks per {WINDOW_OPS}-op window "
              f"(total {sum(diff)}, peak {max(diff) if diff else 0}, "
              f"{len(positive)}/{len(diff)} windows positive):")
        print("  " + sparkline(diff))
    save_json(EXHIBIT, data, out_dir)
    return data
