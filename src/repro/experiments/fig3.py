"""Fig. 3 — long-seek (>500 KB) overhead over time, LS minus NoLS.

Sharded: one shard per workload (see :mod:`repro.experiments.registry`).
Under ``--fast`` each shard derives both windowed series without a
recorder replay — the LS side from the recorded fragment stream
(:func:`~repro.core.stream.stream_windowed_long_seeks`, store-backed) and
the NoLS side from the vectorized baseline kernel
(:func:`~repro.analysis.fast.nols_windowed_long_seeks`); both are exact,
so the payload is byte-identical to the reference recorder path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.temporal import (
    WindowedSeekRecorder,
    long_seek_difference,
    long_seek_difference_series,
)
from repro.core.config import LS, NOLS
from repro.experiments.common import downsample, replay_with, save_json
from repro.experiments.render import sparkline
from repro.experiments.sweep import sweep_engine
from repro.workloads import FIG3_WORKLOADS

EXHIBIT = "fig3"
WINDOW_OPS = 500
MIN_SEEK_KIB = 500.0


def shard_names(seed: int = 42, scale: float = 1.0) -> List[str]:
    """One shard per Fig. 3 workload."""
    return list(FIG3_WORKLOADS)


def run_shard(name: str, seed: int = 42, scale: float = 1.0) -> dict:
    """The full-resolution difference series for one workload."""
    engine = sweep_engine(seed, scale)
    trace = engine.trace(name)
    if engine.fast_enabled():
        from repro.analysis.fast import nols_windowed_long_seeks
        from repro.core.stream import stream_windowed_long_seeks

        ls_series = stream_windowed_long_seeks(
            engine.stream_for(trace), WINDOW_OPS, MIN_SEEK_KIB
        )
        nols_series = nols_windowed_long_seeks(trace, WINDOW_OPS, MIN_SEEK_KIB)
        diff = long_seek_difference_series(ls_series, nols_series)
    else:
        ls_rec = WindowedSeekRecorder(window_ops=WINDOW_OPS, min_seek_kib=MIN_SEEK_KIB)
        nols_rec = WindowedSeekRecorder(window_ops=WINDOW_OPS, min_seek_kib=MIN_SEEK_KIB)
        replay_with(trace, LS, [ls_rec])
        replay_with(trace, NOLS, [nols_rec])
        diff = long_seek_difference(ls_rec, nols_rec)
    return {"diff": diff}


def merge(
    payloads: Dict[str, dict],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Assemble shard payloads, print the sparklines, write the JSON."""
    data = {}
    for name in FIG3_WORKLOADS:
        diff = payloads[name]["diff"]
        positive = [d for d in diff if d > 0]
        burstiness = (max(diff) / (sum(diff) / len(diff))) if diff and sum(diff) else 0.0
        data[name] = {
            "window_ops": WINDOW_OPS,
            "series": downsample(diff),
            "total_extra_long_seeks": sum(diff),
            "max_window": max(diff) if diff else 0,
            "windows_with_overhead": len(positive),
            "windows": len(diff),
            "burstiness": round(burstiness, 2),
        }
        print(f"Fig. 3 [{name}] extra long seeks per {WINDOW_OPS}-op window "
              f"(total {sum(diff)}, peak {max(diff) if diff else 0}, "
              f"{len(positive)}/{len(diff)} windows positive):")
        print("  " + sparkline(diff))
    save_json(EXHIBIT, data, out_dir)
    return data


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 3 for usr_1, web_0, w91 and w55.

    Shape to check: the difference series is strongly bursty — seek
    overhead concentrates in read-phase windows (the paper's diurnal
    pattern), rather than spreading evenly over the trace.
    """
    payloads = {
        name: run_shard(name, seed, scale) for name in shard_names(seed, scale)
    }
    return merge(payloads, seed, scale, out_dir)
