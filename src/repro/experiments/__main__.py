"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments all --out results/
    python -m repro.experiments fig11 fig10 --seed 7
    repro-experiments table1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXHIBITS, run_exhibit


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures from 'Minimizing Read Seeks "
        "for SMR Disk' (IISWC 2018) on synthetic workload archetypes.",
    )
    parser.add_argument(
        "exhibits",
        nargs="+",
        help=f"exhibit names ({', '.join(EXHIBITS)}), 'all', or 'report' "
        "to consolidate saved JSONs into REPORT.md",
    )
    parser.add_argument("--seed", type=int, default=42, help="workload RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (1.0 = registry default)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for JSON result dumps (default: no dumps)",
    )
    parser.add_argument(
        "--svg",
        default=None,
        metavar="DIR",
        help="directory for SVG chart renderings (chartable exhibits only)",
    )
    args = parser.parse_args(argv)

    if args.exhibits == ["report"]:
        from repro.experiments.report import write_report

        if not args.out:
            parser.error("'report' needs --out DIR pointing at saved results")
        path = write_report(args.out)
        print(f"wrote {path}")
        return 0

    names = list(EXHIBITS) if "all" in args.exhibits else args.exhibits
    for name in names:
        if name not in EXHIBITS:
            parser.error(f"unknown exhibit {name!r}; known: {', '.join(EXHIBITS)}")
    for name in names:
        start = time.time()
        print(f"=== {name} " + "=" * max(0, 66 - len(name)))
        data = run_exhibit(name, seed=args.seed, scale=args.scale, out_dir=args.out)
        if args.svg:
            from repro.experiments.charts import render_svg

            for path in render_svg(name, data, args.svg):
                print(f"(svg) {path}")
        print(f"--- {name} done in {time.time() - start:.1f}s\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
