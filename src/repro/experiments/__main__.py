"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments all --out results/
    python -m repro.experiments fig11 fig10 --seed 7
    python -m repro.experiments all --out results/ --keep-going --timeout 600
    python -m repro.experiments all --out results/ --resume
    python -m repro.experiments all --out results/ --jobs 4 --fast
    repro-experiments table1

``--jobs N`` fans exhibits out across N worker processes and ``--fast``
replays through the vectorized batch kernels; both are exact — exhibit
JSON is byte-identical to a serial, reference-path run.

Long runs are crash-safe (see docs/ROBUSTNESS.md): with ``--out`` every
exhibit JSON and the ``run.json`` manifest are written atomically, and
``--resume`` skips exhibits a previous (possibly killed) run already
completed with the same seed/scale.  The exit status is 0 only when every
requested exhibit succeeded.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXHIBITS, resolve_names
from repro.experiments.runner import (
    RunInterrupted,
    format_outcome_table,
    run_exhibits,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures from 'Minimizing Read Seeks "
        "for SMR Disk' (IISWC 2018) on synthetic workload archetypes.",
    )
    parser.add_argument(
        "exhibits",
        nargs="+",
        help=f"exhibit names ({', '.join(EXHIBITS)}), 'all', or 'report' "
        "to consolidate saved JSONs into REPORT.md",
    )
    parser.add_argument("--seed", type=int, default=42, help="workload RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (1.0 = registry default)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for JSON result dumps and the run.json manifest "
        "(default: no dumps)",
    )
    parser.add_argument(
        "--svg",
        default=None,
        metavar="DIR",
        help="directory for SVG chart renderings (chartable exhibits only)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="continue past failing exhibits; print a pass/fail table at "
        "the end and exit 1 if any failed",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-exhibit time budget; an exhibit over budget counts as "
        "failed (POSIX main thread only)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip exhibits already completed by a previous run with the "
        "same --out, seed and scale (needs the run.json manifest)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run exhibits across N worker processes (default 1 = serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="replay through the vectorized batch kernels (exact; replays "
        "the kernels cannot serve fall back to the reference path, "
        "reported per exhibit as '(fallback) <count>x <reason>' lines and "
        "a 'fallbacks' key in the run.json manifest)",
    )
    parser.add_argument(
        "--trace-store",
        default=None,
        metavar="DIR",
        help="persistent compiled-trace store: workload traces are "
        "compiled to page-aligned column files under DIR on first use "
        "and memory-mapped back on later runs (exact; delete DIR to "
        "clear)",
    )
    parser.add_argument(
        "--stream-store",
        default=None,
        metavar="DIR",
        help="persistent fragment-stream store: plain-LS streams and "
        "NoLS baselines are recorded under DIR once machine-wide and "
        "memory-mapped by every process (exact; only consulted with "
        "--fast; delete DIR to clear)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.exhibits == ["report"]:
        from repro.experiments.report import write_report

        if not args.out:
            parser.error("'report' needs --out DIR pointing at saved results")
        path = write_report(args.out)
        print(f"wrote {path}")
        return 0

    try:
        names = resolve_names(args.exhibits)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    if args.resume and not args.out:
        parser.error("--resume requires --out DIR (the manifest lives there)")

    try:
        outcomes = run_exhibits(
            names,
            seed=args.seed,
            scale=args.scale,
            out_dir=args.out,
            svg_dir=args.svg,
            keep_going=args.keep_going,
            timeout_s=args.timeout,
            resume=args.resume,
            jobs=args.jobs,
            fast=args.fast,
            trace_store=args.trace_store,
            stream_store=args.stream_store,
        )
    except RunInterrupted as exc:
        # Workers are reaped and the manifest is finalized before this
        # propagates; the conventional 128+signum exit code tells the
        # shell which signal it was (130 SIGINT, 143 SIGTERM).
        print(
            f"\nrun interrupted by {exc.signal_name}; completed exhibits are "
            "checkpointed — rerun with --resume to continue",
            file=sys.stderr,
        )
        return 128 + exc.signum
    except KeyboardInterrupt:
        print(
            "\nrun interrupted; completed exhibits are checkpointed — "
            "rerun with --resume to continue",
            file=sys.stderr,
        )
        return 130
    failed = [o for o in outcomes if not o.ok]
    if args.keep_going or failed or len(outcomes) > 1:
        print(format_outcome_table(outcomes))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
