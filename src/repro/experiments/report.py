"""Consolidated markdown report from saved exhibit results.

``python -m repro.experiments all --out results/`` leaves one JSON per
exhibit; this module folds them into a single human-readable
``REPORT.md`` — the auto-generated counterpart of the hand-written
EXPERIMENTS.md::

    from repro.experiments.report import write_report
    write_report("results", "results/REPORT.md")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union


def _load(results_dir: Path, exhibit: str) -> Optional[dict]:
    path = results_dir / f"{exhibit}.json"
    if not path.exists():
        return None
    with path.open() as handle:
        return json.load(handle)


def _fig11_section(data: dict, lines: List[str]) -> None:
    lines.append("## Fig. 11 — seek amplification factors\n")
    configs = ["LS", "LS+defrag", "LS+prefetch", "LS+cache"]
    lines.append("| workload | family | " + " | ".join(configs) + " | best |")
    lines.append("|---|---|" + "---|" * (len(configs) + 1))
    for name, row in data.items():
        totals = {c: row["saf"][c]["total"] for c in configs}
        best = min(totals, key=totals.get)
        lines.append(
            f"| {name} | {row['family']} | "
            + " | ".join(f"{totals[c]:.2f}" for c in configs)
            + f" | {best} |"
        )
    lines.append("")


def _fig2_section(data: dict, lines: List[str]) -> None:
    lines.append("## Fig. 2 — seek counts, NoLS vs LS\n")
    lines.append("| workload | NoLS rd | NoLS wr | LS rd | LS wr |")
    lines.append("|---|---|---|---|---|")
    for name, row in data.items():
        lines.append(
            f"| {name} | {row['nols']['read_seeks']} | "
            f"{row['nols']['write_seeks']} | {row['ls']['read_seeks']} | "
            f"{row['ls']['write_seeks']} |"
        )
    lines.append("")


def _fig8_section(data: dict, lines: List[str]) -> None:
    lines.append("## Fig. 8 — mis-ordered write rates\n")
    lines.append("| workload | rate |")
    lines.append("|---|---|")
    for name, rate in sorted(data.items(), key=lambda kv: -kv[1]):
        lines.append(f"| {name} | {rate:.4f} |")
    lines.append("")


def _fig10_section(data: dict, lines: List[str]) -> None:
    lines.append("## Fig. 10 — cache sizing by fragment popularity\n")
    lines.append("| workload | fragments | MiB@50% | MiB@80% | MiB@90% | MiB total |")
    lines.append("|---|---|---|---|---|---|")
    for name, row in data.items():
        lines.append(
            f"| {name} | {row['fragments']} | {row['cache_mib_for_50pct']} | "
            f"{row['cache_mib_for_80pct']} | {row['cache_mib_for_90pct']} | "
            f"{row['total_mib']} |"
        )
    lines.append("")


def _scenario_section(fig6: Optional[dict], fig9: Optional[dict], lines: List[str]) -> None:
    if fig6:
        wd = fig6["with_defrag"]
        wo = fig6["without_defrag"]
        lines.append("## Fig. 6 — defragmentation walkthrough\n")
        lines.append(
            f"Fragmented read: {wo['rd_2_5_first']['read_seeks']} seeks; "
            f"re-read after defrag: {wd['rd_2_5_again']['read_seeks']}; "
            f"adjacent read pays {wd['rd_1_2']['read_seeks']} "
            f"(relocation penalty).\n"
        )
    if fig9:
        lines.append("## Fig. 9 — prefetching walkthrough\n")
        lines.append(
            f"Read of 5 out-of-order pieces: "
            f"{fig9['without_prefetch']['read_seeks']} seeks plain, "
            f"{fig9['with_prefetch']['read_seeks']} with look-ahead-behind "
            f"({fig9['with_prefetch']['buffer_fragment_hits']} buffer hits).\n"
        )


def _taxonomy_section(data: dict, lines: List[str]) -> None:
    lines.append("## Workload taxonomy (extension)\n")
    agree = sum(
        1 for row in data.values() if row["measured"] == row["predicted"]
    )
    lines.append(
        f"Feature-based prediction agrees with measured classification on "
        f"{agree}/{len(data)} workloads.\n"
    )


def build_report(results_dir: Union[str, Path]) -> str:
    """Assemble the markdown report from whatever JSONs are present."""
    results = Path(results_dir)
    if not results.is_dir():
        raise FileNotFoundError(f"no results directory at {results}")
    lines: List[str] = [
        "# Reproduction report",
        "",
        "Auto-generated from the JSON dumps in this directory "
        "(`python -m repro.experiments all --out ...`).  Shapes and the "
        "paper-vs-measured discussion live in EXPERIMENTS.md.",
        "",
    ]
    sections = 0
    fig11 = _load(results, "fig11")
    if fig11:
        _fig11_section(fig11, lines)
        sections += 1
    fig2 = _load(results, "fig2")
    if fig2:
        _fig2_section(fig2, lines)
        sections += 1
    fig8 = _load(results, "fig8")
    if fig8:
        _fig8_section(fig8, lines)
        sections += 1
    fig10 = _load(results, "fig10")
    if fig10:
        _fig10_section(fig10, lines)
        sections += 1
    fig6 = _load(results, "fig6")
    fig9 = _load(results, "fig9")
    if fig6 or fig9:
        _scenario_section(fig6, fig9, lines)
        sections += 1
    taxonomy = _load(results, "taxonomy")
    if taxonomy:
        _taxonomy_section(taxonomy, lines)
        sections += 1
    if sections == 0:
        raise FileNotFoundError(
            f"no exhibit JSONs found in {results}; run the experiments first"
        )
    return "\n".join(lines) + "\n"


def write_report(
    results_dir: Union[str, Path],
    out_path: Union[str, Path, None] = None,
) -> Path:
    """Write the report (default: ``<results_dir>/REPORT.md``)."""
    results = Path(results_dir)
    out = Path(out_path) if out_path else results / "REPORT.md"
    out.write_text(build_report(results))
    return out
