"""Plain-text rendering helpers for experiment output.

Everything prints to stdout as fixed-width text: tables for the paper's
tables, horizontal bars for its bar charts, and coarse step plots for its
CDFs — enough to eyeball the shapes against the paper without a plotting
stack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def hbar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    title: Optional[str] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render labeled horizontal bars scaled to the maximum value."""
    if not items:
        return title or ""
    peak = max(value for _, value in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines: List[str] = [title] if title else []
    for label, value in items:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_w)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)


def grouped_bars(
    groups: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render grouped bars (one block of bars per group label)."""
    lines: List[str] = [title] if title else []
    peak = max(
        (value for _, bars in groups for _, value in bars),
        default=1.0,
    ) or 1.0
    for group_label, bars in groups:
        lines.append(f"{group_label}:")
        label_w = max(len(label) for label, _ in bars)
        for label, value in bars:
            bar = "#" * max(0, round(width * value / peak))
            lines.append(f"  {label.ljust(label_w)} | {bar} {value:.2f}")
    return "\n".join(lines)


def step_cdf(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
    x_fmt: str = "{:.3g}",
) -> str:
    """Render a CDF as a coarse character plot (x: value, y: F(x))."""
    lines: List[str] = [title] if title else []
    if not points:
        lines.append("(empty)")
        return "\n".join(lines)
    xs = [p[0] for p in points]
    lo, hi = min(xs), max(xs)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, f in points:
        col = min(width - 1, int((x - lo) / span * (width - 1)))
        row = min(height - 1, int((1.0 - f) * (height - 1)))
        grid[row][col] = "*"
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_fmt.format(lo)}{' ' * (width - 12)}{x_fmt.format(hi)}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Compress a series into one line of block characters."""
    if not values:
        return "(empty)"
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in values
    )
