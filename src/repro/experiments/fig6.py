"""Fig. 6 — worked example of opportunistic defragmentation.

Replays the paper's six-LBA toy scenario step by step: updates fragment a
contiguous range, a read pays three extra seeks, defragmentation rewrites
the range at the log head, the re-read is seek-free, and a later read of
an adjacent range pays an extra seek because the defrag moved its data.
"""

from __future__ import annotations

from typing import Optional

from repro.core.defrag import OpportunisticDefrag
from repro.core.translators import LogStructuredTranslator
from repro.experiments.common import save_json
from repro.trace.record import IORequest

EXHIBIT = "fig6"
UNIT = 8  # one toy "LBA" = 8 sectors (4 KiB)


def _scenario(defrag: bool) -> dict:
    translator = LogStructuredTranslator(
        frontier_base=16 * UNIT,
        defrag=OpportunisticDefrag() if defrag else None,
    )
    steps = {}
    translator.submit(IORequest.write(3 * UNIT, UNIT))              # (A) Wr 3
    translator.submit(IORequest.write(5 * UNIT, UNIT))              # (B) Wr 5
    o_c = translator.submit(IORequest.read(2 * UNIT, 4 * UNIT))     # (C) Rd 2-5
    steps["rd_2_5_first"] = {
        "fragments": o_c.fragments,
        "read_seeks": o_c.read_seeks,
        "defrag_write_seeks": o_c.defrag_write_seeks,
    }
    o_e = translator.submit(IORequest.read(2 * UNIT, 4 * UNIT))     # (E) Rd 2-5 again
    steps["rd_2_5_again"] = {"fragments": o_e.fragments, "read_seeks": o_e.read_seeks}
    o_f = translator.submit(IORequest.read(1 * UNIT, 2 * UNIT))     # (F) Rd 1-2
    steps["rd_1_2"] = {"fragments": o_f.fragments, "read_seeks": o_f.read_seeks}
    return steps


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate the Fig. 6 walkthrough (seed/scale unused: exact scenario).

    Expected, matching the figure: the first read of LBAs 2..5 spans 4
    fragments (3 extra seeks); with defragmentation the re-read costs a
    single seek, while the following read of LBAs 1..2 pays an extra seek
    it would not have paid without defragmentation.
    """
    data = {
        "without_defrag": _scenario(defrag=False),
        "with_defrag": _scenario(defrag=True),
    }
    wo, wd = data["without_defrag"], data["with_defrag"]
    print("Fig. 6 scenario (LBAs 1..6 contiguous; Wr 3; Wr 5; Rd 2-5; Rd 2-5; Rd 1-2)")
    print(f"  without defrag: Rd2-5 fragments={wo['rd_2_5_first']['fragments']} "
          f"seeks={wo['rd_2_5_first']['read_seeks']}; re-read seeks="
          f"{wo['rd_2_5_again']['read_seeks']}; Rd1-2 seeks={wo['rd_1_2']['read_seeks']}")
    print(f"  with defrag:    Rd2-5 fragments={wd['rd_2_5_first']['fragments']} "
          f"seeks={wd['rd_2_5_first']['read_seeks']}; re-read seeks="
          f"{wd['rd_2_5_again']['read_seeks']} (defragmented); "
          f"Rd1-2 seeks={wd['rd_1_2']['read_seeks']} (extra seek from relocation)")
    save_json(EXHIBIT, data, out_dir)
    return data
