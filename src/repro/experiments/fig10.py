"""Fig. 10 — fragment popularity and cumulative cache-size curves."""

from __future__ import annotations

from typing import Optional

from repro.analysis.popularity import FragmentPopularityRecorder
from repro.core.config import LS
from repro.experiments.common import downsample, save_json
from repro.experiments.render import format_table
from repro.experiments.sweep import sweep_engine
from repro.workloads import FIG10_WORKLOADS

EXHIBIT = "fig10"


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 10 for the paper's eight workloads.

    Shape to check: fragment accesses are highly skewed, and the fragments
    covering the bulk of accesses (say 80–90 %) total at most a few tens
    of MB — comfortably inside a 64 MB selective cache.
    """
    engine = sweep_engine(seed, scale)
    data = {}
    rows = []
    for name in FIG10_WORKLOADS:
        trace = engine.trace(name)
        recorder = FragmentPopularityRecorder()
        # The recorder observes per-request outcomes, so the engine routes
        # this replay to the reference simulator regardless of --fast.
        engine.replay(trace, LS, [recorder])
        curve = recorder.curve()
        mib_50 = curve.cache_mib_for_access_share(0.5)
        mib_80 = curve.cache_mib_for_access_share(0.8)
        mib_90 = curve.cache_mib_for_access_share(0.9)
        data[name] = {
            "fragments": curve.fragment_count,
            "total_accesses": curve.total_accesses,
            "top_access_count": curve.access_counts[0] if curve.access_counts else 0,
            "cache_mib_for_50pct": round(mib_50, 2),
            "cache_mib_for_80pct": round(mib_80, 2),
            "cache_mib_for_90pct": round(mib_90, 2),
            "total_mib": round(curve.cumulative_mib[-1], 2) if curve.cumulative_mib else 0.0,
            "access_counts": downsample(curve.access_counts),
            "cumulative_mib": downsample(curve.cumulative_mib),
        }
        rows.append(
            [
                name,
                curve.fragment_count,
                curve.total_accesses,
                f"{mib_50:.1f}",
                f"{mib_80:.1f}",
                f"{mib_90:.1f}",
                f"{data[name]['total_mib']:.1f}",
            ]
        )
    print(
        format_table(
            [
                "workload",
                "fragments",
                "accesses",
                "MiB@50%",
                "MiB@80%",
                "MiB@90%",
                "MiB total",
            ],
            rows,
            title="Fig. 10: cache size needed to hold the most-accessed fragments",
        )
    )
    save_json(EXHIBIT, data, out_dir)
    return data
