"""Fig. 10 — fragment popularity and cumulative cache-size curves.

Sharded: one shard per workload (see :mod:`repro.experiments.registry`).
Under ``--fast`` each shard builds the popularity curve straight off the
recorded fragment stream —
:func:`~repro.core.stream.stream_fragment_stats` reproduces the
reference recorder's ``(count, size)`` pairs in first-access order, and
:func:`~repro.analysis.fast.popularity_curve_fast` the stable-sorted
curve — so no recorder replay is needed and the result is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.popularity import FragmentPopularityRecorder
from repro.core.config import LS
from repro.experiments.common import downsample, save_json
from repro.experiments.render import format_table
from repro.experiments.sweep import sweep_engine
from repro.workloads import FIG10_WORKLOADS

EXHIBIT = "fig10"


def shard_names(seed: int = 42, scale: float = 1.0) -> List[str]:
    """One shard per Fig. 10 workload."""
    return list(FIG10_WORKLOADS)


def run_shard(name: str, seed: int = 42, scale: float = 1.0) -> dict:
    """The full popularity curve of one workload (picklable payload)."""
    engine = sweep_engine(seed, scale)
    trace = engine.trace(name)
    if engine.fast_enabled():
        from repro.analysis.fast import popularity_curve_fast
        from repro.core.stream import stream_fragment_stats

        curve = popularity_curve_fast(stream_fragment_stats(engine.stream_for(trace)))
    else:
        recorder = FragmentPopularityRecorder()
        # The recorder observes per-request outcomes, so the engine routes
        # this replay to the reference simulator.
        engine.replay(trace, LS, [recorder])
        curve = recorder.curve()
    return {
        "fragments": curve.fragment_count,
        "total_accesses": curve.total_accesses,
        "top_access_count": curve.access_counts[0] if curve.access_counts else 0,
        "mib_50": curve.cache_mib_for_access_share(0.5),
        "mib_80": curve.cache_mib_for_access_share(0.8),
        "mib_90": curve.cache_mib_for_access_share(0.9),
        "access_counts": list(curve.access_counts),
        "cumulative_mib": list(curve.cumulative_mib),
    }


def merge(
    payloads: Dict[str, dict],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Assemble shard payloads, print the table, write the JSON."""
    data = {}
    rows = []
    for name in FIG10_WORKLOADS:
        payload = payloads[name]
        mib_50, mib_80, mib_90 = payload["mib_50"], payload["mib_80"], payload["mib_90"]
        cumulative_mib = payload["cumulative_mib"]
        data[name] = {
            "fragments": payload["fragments"],
            "total_accesses": payload["total_accesses"],
            "top_access_count": payload["top_access_count"],
            "cache_mib_for_50pct": round(mib_50, 2),
            "cache_mib_for_80pct": round(mib_80, 2),
            "cache_mib_for_90pct": round(mib_90, 2),
            "total_mib": round(cumulative_mib[-1], 2) if cumulative_mib else 0.0,
            "access_counts": downsample(payload["access_counts"]),
            "cumulative_mib": downsample(cumulative_mib),
        }
        rows.append(
            [
                name,
                payload["fragments"],
                payload["total_accesses"],
                f"{mib_50:.1f}",
                f"{mib_80:.1f}",
                f"{mib_90:.1f}",
                f"{data[name]['total_mib']:.1f}",
            ]
        )
    print(
        format_table(
            [
                "workload",
                "fragments",
                "accesses",
                "MiB@50%",
                "MiB@80%",
                "MiB@90%",
                "MiB total",
            ],
            rows,
            title="Fig. 10: cache size needed to hold the most-accessed fragments",
        )
    )
    save_json(EXHIBIT, data, out_dir)
    return data


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 10 for the paper's eight workloads.

    Shape to check: fragment accesses are highly skewed, and the fragments
    covering the bulk of accesses (say 80–90 %) total at most a few tens
    of MB — comfortably inside a 64 MB selective cache.
    """
    payloads = {
        name: run_shard(name, seed, scale) for name in shard_names(seed, scale)
    }
    return merge(payloads, seed, scale, out_dir)
