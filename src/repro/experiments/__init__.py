"""Experiment harness: regenerate every table and figure of the paper.

One module per exhibit; each exposes ``run(seed, scale, out_dir) -> dict``
returning the exhibit's data (also dumped as JSON when ``out_dir`` is set)
and printing a paper-style text rendering.

Command line::

    python -m repro.experiments all
    python -m repro.experiments fig11 --seed 42 --scale 1.0 --out results/
"""

from repro.experiments.registry import EXHIBITS, resolve_names, run_exhibit
from repro.experiments.runner import (
    ExhibitOutcome,
    ExhibitTimeoutError,
    RunManifest,
    exhibit_fingerprint,
    ingest_workloads,
    run_exhibits,
)
from repro.experiments.sweep import SweepEngine, reset_sweep_engines, sweep_engine

__all__ = [
    "EXHIBITS",
    "resolve_names",
    "run_exhibit",
    "ExhibitOutcome",
    "ExhibitTimeoutError",
    "RunManifest",
    "exhibit_fingerprint",
    "ingest_workloads",
    "run_exhibits",
    "SweepEngine",
    "reset_sweep_engines",
    "sweep_engine",
]
