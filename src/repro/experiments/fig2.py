"""Fig. 2 — read and write seek counts, NoLS vs LS, per workload."""

from __future__ import annotations

from typing import Optional

from repro.core.config import LS, NOLS
from repro.experiments.common import replay_with, save_json, workload_trace
from repro.experiments.render import format_table
from repro.workloads import FIG2_CLOUDPHYSICS, FIG2_MSR

EXHIBIT = "fig2"


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 2: per-workload read/write seek counts for the
    untranslated (NoLS) and log-structured (LS) replays.

    The paper's observations to check against: write seeks collapse under
    LS everywhere; read seeks rise modestly for some workloads (src2_2,
    wdev_0, w36), hugely for others (w91, w33, w20).
    """
    data = {}
    rows = []
    for family, names in (("msr", FIG2_MSR), ("cloudphysics", FIG2_CLOUDPHYSICS)):
        for name in names:
            trace = workload_trace(name, seed, scale)
            nols = replay_with(trace, NOLS).stats
            ls = replay_with(trace, LS).stats
            data[name] = {
                "family": family,
                "nols": {"read_seeks": nols.read_seeks, "write_seeks": nols.write_seeks},
                "ls": {"read_seeks": ls.read_seeks, "write_seeks": ls.write_seeks},
            }
            rows.append(
                [
                    name,
                    family,
                    nols.read_seeks,
                    nols.write_seeks,
                    ls.read_seeks,
                    ls.write_seeks,
                    f"{(ls.read_seeks + ls.write_seeks) / max(1, nols.read_seeks + nols.write_seeks):.2f}",
                ]
            )
    print(
        format_table(
            ["workload", "family", "NoLS rd", "NoLS wr", "LS rd", "LS wr", "total ratio"],
            rows,
            title="Fig. 2: read/write seek counts under NoLS vs LS",
        )
    )
    save_json(EXHIBIT, data, out_dir)
    return data
