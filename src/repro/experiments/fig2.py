"""Fig. 2 — read and write seek counts, NoLS vs LS, per workload.

Sharded: one shard per workload (see :mod:`repro.experiments.registry`).
``run_shard`` produces a picklable per-workload payload; ``merge``
assembles payloads into the exhibit dict, prints the table and writes the
JSON.  ``run`` is merge-over-serial-shards, so serial and sharded
parallel runs share one code path and are byte-identical by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import LS
from repro.experiments.common import save_json
from repro.experiments.render import format_table
from repro.experiments.sweep import sweep_engine
from repro.workloads import FIG2_CLOUDPHYSICS, FIG2_MSR

EXHIBIT = "fig2"


def shard_names(seed: int = 42, scale: float = 1.0) -> List[str]:
    """One shard per Fig. 2 workload."""
    return list(FIG2_MSR) + list(FIG2_CLOUDPHYSICS)


def run_shard(name: str, seed: int = 42, scale: float = 1.0) -> dict:
    """NoLS/LS seek counts for one workload (picklable payload).

    Routed through the sweep engine: the NoLS baseline and the plain-LS
    stream replay both come from the shared (store-backed) state under
    ``--fast``, and from the reference pipeline otherwise.
    """
    engine = sweep_engine(seed, scale)
    family = "msr" if name in FIG2_MSR else "cloudphysics"
    nols = engine.baseline(name)
    ls = engine.workload_replay(name, LS).stats
    return {
        "family": family,
        "nols": {"read_seeks": nols.read_seeks, "write_seeks": nols.write_seeks},
        "ls": {"read_seeks": ls.read_seeks, "write_seeks": ls.write_seeks},
    }


def merge(
    payloads: Dict[str, dict],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Assemble shard payloads, print the Fig. 2 table, write the JSON."""
    data = {}
    rows = []
    for family, names in (("msr", FIG2_MSR), ("cloudphysics", FIG2_CLOUDPHYSICS)):
        for name in names:
            entry = payloads[name]
            data[name] = entry
            nols, ls = entry["nols"], entry["ls"]
            total_ratio = (ls["read_seeks"] + ls["write_seeks"]) / max(
                1, nols["read_seeks"] + nols["write_seeks"]
            )
            rows.append(
                [
                    name,
                    family,
                    nols["read_seeks"],
                    nols["write_seeks"],
                    ls["read_seeks"],
                    ls["write_seeks"],
                    f"{total_ratio:.2f}",
                ]
            )
    print(
        format_table(
            ["workload", "family", "NoLS rd", "NoLS wr", "LS rd", "LS wr", "total ratio"],
            rows,
            title="Fig. 2: read/write seek counts under NoLS vs LS",
        )
    )
    save_json(EXHIBIT, data, out_dir)
    return data


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 2: per-workload read/write seek counts for the
    untranslated (NoLS) and log-structured (LS) replays.

    The paper's observations to check against: write seeks collapse under
    LS everywhere; read seeks rise modestly for some workloads (src2_2,
    wdev_0, w36), hugely for others (w91, w33, w20).
    """
    payloads = {
        name: run_shard(name, seed, scale) for name in shard_names(seed, scale)
    }
    return merge(payloads, seed, scale, out_dir)
