"""Fig. 7 — examples of highly non-sequential LBA write patterns."""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import downsample, save_json, workload_trace
from repro.experiments.render import sparkline
from repro.workloads import FIG7_WORKLOADS

EXHIBIT = "fig7"
SAMPLE_OPS = 400


def _descending_step_fraction(lbas: List[int]) -> float:
    """Fraction of consecutive write pairs whose LBA decreases."""
    if len(lbas) < 2:
        return 0.0
    down = sum(1 for a, b in zip(lbas, lbas[1:]) if b < a)
    return down / (len(lbas) - 1)


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 7 for hm_1 and w106: a window of the write stream's
    LBAs, showing locally descending runs (the mis-ordered pattern).

    Shape to check: a visible fraction of consecutive writes step
    *backwards* in LBA even though the data is logically sequential.
    """
    data = {}
    for name in FIG7_WORKLOADS:
        trace = workload_trace(name, seed, scale)
        write_lbas = [r.lba for r in trace if r.is_write]
        window = write_lbas[:SAMPLE_OPS]
        data[name] = {
            "sample_ops": len(window),
            "lbas": downsample(window, 400),
            "descending_step_fraction_sample": round(
                _descending_step_fraction(window), 4
            ),
            "descending_step_fraction_all": round(
                _descending_step_fraction(write_lbas), 4
            ),
        }
        print(
            f"Fig. 7 [{name}] first {len(window)} write LBAs "
            f"({data[name]['descending_step_fraction_all']:.1%} of all "
            f"consecutive writes step backwards):"
        )
        print("  " + sparkline([float(x) for x in window]))
    save_json(EXHIBIT, data, out_dir)
    return data
