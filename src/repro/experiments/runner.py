"""Crash-safe experiment runner: isolation, timeouts, checkpoint/resume,
and a parallel (multi-process) execution mode.

A long ``python -m repro.experiments all`` run must survive a bad exhibit,
a hung exhibit, and a mid-run kill without losing completed work.  This
module wraps :func:`~repro.experiments.registry.run_exhibit` with:

* **Per-exhibit isolation** — an exhibit that raises is recorded (status +
  full traceback) and, with ``keep_going``, the run continues.
* **Per-exhibit timeout** — a SIGALRM-based watchdog (POSIX main thread
  only; silently disabled elsewhere) turns a hung exhibit into a
  ``timeout`` failure instead of a hung run.  In parallel mode every
  worker task runs in its own process's main thread, so the watchdog arms
  there too.
* **A run manifest** — ``<out_dir>/run.json``, rewritten atomically after
  every exhibit, records per-exhibit status, duration, error traceback and
  a ``(name, seed, scale, version)`` fingerprint.
* **Resume** — a rerun with ``resume=True`` skips exhibits whose manifest
  entry is ``ok``, whose fingerprint matches the current parameters, and
  whose JSON dump is present and valid; everything else is re-run.
* **Parallelism** — ``jobs=N`` fans the exhibits out across a process
  pool.  Exhibits are pure functions of ``(name, seed, scale)``, and each
  worker defensively reseeds the global :mod:`random` state per exhibit
  via :class:`~repro.util.rngtools.SeedSequenceFactory`, so a parallel
  run writes byte-identical exhibit JSON to a serial run; only the
  manifest's wall-clock durations differ.  The manifest stays
  single-writer (the parent), so checkpointing and resume work unchanged.
* **Grid sharding** — exhibits that declare a
  :class:`~repro.experiments.registry.Sharding` are split into
  per-workload shards under ``jobs > 1``: the pool schedules all units
  longest-first (shards weighted by their workload's operation count,
  unsplittable exhibits ahead of them), workers return picklable shard
  payloads, and the parent deterministically reassembles each exhibit
  with the module's ``merge`` — the same code path a serial run uses — so
  exhibit JSON and stdout stay byte-identical while fig11-class sweeps no
  longer pin one worker.  The manifest still tracks whole exhibits: a
  shard failure/timeout fails its exhibit (error prefixed ``shard <id>:``),
  and resume semantics are unchanged (exhibit-level fingerprints).
* **Cold-start ingestion** — with a persistent trace/stream store set,
  every distinct workload the pending exhibits replay becomes a
  first-class pool unit (:func:`ingest_workloads` exposes the same units
  standalone) scheduled ahead of the exhibit units, which are gated on
  their workloads' ingestion — a cold parallel run pays each trace
  synthesis and fragment-stream recording exactly once instead of once
  per racing worker.  Ingestion is an exact cache warm-up: a failed
  ingest unit is non-fatal (its dependents just run cold).

Because exhibit JSON dumps and the manifest are both written via
tmp-file+rename (:mod:`repro.util.io`), a run killed at any instant leaves
only complete, parseable JSON on disk.
"""

from __future__ import annotations

import hashlib
import io
import json
import multiprocessing
import random
import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager, redirect_stdout
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.registry import (
    SHARDED,
    STREAM_PRIMING,
    WORKLOADS,
    run_exhibit,
)
from repro.util.io import atomic_write_json
from repro.util.rngtools import SeedSequenceFactory

MANIFEST_NAME = "run.json"

STATUS_RUNNING = "running"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_SKIPPED = "skipped"  # resume found a completed, matching entry


class ExhibitTimeoutError(Exception):
    """An exhibit exceeded its per-exhibit time budget."""


class RunInterrupted(BaseException):
    """The run was interrupted by a signal (SIGINT/SIGTERM).

    ``BaseException`` on purpose, like :class:`KeyboardInterrupt`: exhibit
    isolation must not swallow an operator's interrupt.  The runner
    finalizes the manifest (no dangling ``running`` entries) before this
    propagates, so a rerun with ``resume=True`` continues cleanly.
    """

    def __init__(self, signum: int) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        super().__init__(f"run interrupted by {name}")
        self.signum = signum
        self.signal_name = name


@contextmanager
def run_signal_handlers():
    """Turn SIGINT/SIGTERM into :class:`RunInterrupted` inside the block.

    Only arms in the main thread of a POSIX process (a ``signal.signal``
    limitation, same as :func:`exhibit_timeout`); elsewhere the block
    runs with whatever handlers the host installed.  Previous handlers
    are restored on exit either way.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise RunInterrupted(signum)

    previous = {}
    for signum in (signal.SIGINT, getattr(signal, "SIGTERM", None)):
        if signum is None:
            continue
        try:
            previous[signum] = signal.signal(signum, _raise)
        except (ValueError, OSError):  # exotic hosts; run unprotected
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def exhibit_fingerprint(name: str, seed: int, scale: float) -> str:
    """Identity of one exhibit execution for resume matching.

    Two runs may share completed work only if exhibit name, seed, scale
    and library version all agree; a resume with different parameters
    re-runs everything.
    """
    from repro import __version__

    blob = json.dumps(
        {"name": name, "seed": seed, "scale": scale, "version": __version__},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class ExhibitOutcome:
    """What happened to one exhibit in one run."""

    name: str
    status: str
    duration_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_SKIPPED)


class RunManifest:
    """The ``run.json`` checkpoint file.

    The manifest maps exhibit name → ``{status, duration_s, fingerprint,
    error, finished_at}`` plus run-level metadata.  It is saved atomically
    after every state change, so the file on disk is always complete and
    reflects the last finished (or started) exhibit.
    """

    def __init__(self, path: Path, seed: int, scale: float) -> None:
        self.path = Path(path)
        self.seed = seed
        self.scale = scale
        self.exhibits: Dict[str, dict] = {}

    @classmethod
    def load(cls, path: Path) -> "RunManifest":
        """Load an existing manifest (raises on missing/corrupt file)."""
        path = Path(path)
        with path.open() as handle:
            raw = json.load(handle)
        manifest = cls(path, seed=raw.get("seed", 0), scale=raw.get("scale", 1.0))
        manifest.exhibits = dict(raw.get("exhibits", {}))
        return manifest

    @classmethod
    def load_or_create(cls, path: Path, seed: int, scale: float) -> "RunManifest":
        """Load ``path`` if it is a valid manifest, else start fresh.

        A corrupt manifest (should be impossible given atomic writes, but
        disks happen) is treated as absent rather than aborting the run.
        """
        path = Path(path)
        if path.exists():
            try:
                return cls.load(path)
            except (OSError, ValueError):
                pass
        return cls(path, seed=seed, scale=scale)

    def save(self) -> None:
        atomic_write_json(
            self.path,
            {
                "manifest_version": 1,
                "seed": self.seed,
                "scale": self.scale,
                "exhibits": self.exhibits,
            },
        )

    def mark_running(self, name: str, fingerprint: str) -> None:
        self.exhibits[name] = {
            "status": STATUS_RUNNING,
            "fingerprint": fingerprint,
            "duration_s": 0.0,
            "error": None,
        }
        self.save()

    def mark_done(
        self,
        name: str,
        status: str,
        fingerprint: str,
        duration_s: float,
        error: Optional[str] = None,
        fallbacks: Optional[Dict[str, int]] = None,
    ) -> None:
        entry = {
            "status": status,
            "fingerprint": fingerprint,
            "duration_s": round(duration_s, 3),
            "error": error,
        }
        if fallbacks:
            # Per-reason counts of replays a --fast run served through the
            # reference simulator (see repro.experiments.common).
            entry["fallbacks"] = dict(fallbacks)
        self.exhibits[name] = entry
        self.save()

    def completed_ok(self, name: str, fingerprint: str) -> bool:
        """True if ``name`` finished successfully with this fingerprint."""
        entry = self.exhibits.get(name)
        return (
            entry is not None
            and entry.get("status") == STATUS_OK
            and entry.get("fingerprint") == fingerprint
        )


@contextmanager
def exhibit_timeout(seconds: Optional[float]):
    """Raise :class:`ExhibitTimeoutError` in the block after ``seconds``.

    Uses ``SIGALRM``/``setitimer``, so it only arms on POSIX in the main
    thread; anywhere else it is a no-op (the run still has per-exhibit
    isolation, just no watchdog).
    """
    can_alarm = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        yield
        return

    def _on_alarm(signum, frame):
        raise ExhibitTimeoutError(f"exhibit exceeded {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _json_dump_valid(path: Path) -> bool:
    try:
        with path.open() as handle:
            json.load(handle)
        return True
    except (OSError, ValueError):
        return False


def format_fallbacks(fallbacks: Dict[str, int]) -> str:
    """Render per-reason reference-fallback counts for CLI output.

    ``{"recorders": 3, "translator FaultyTranslator": 1}`` becomes
    ``"3x recorders, 1x translator FaultyTranslator"`` (descending count,
    then reason, so the dominant downgrade leads the line).
    """
    ordered = sorted(fallbacks.items(), key=lambda item: (-item[1], item[0]))
    return ", ".join(f"{count}x {reason}" for reason, count in ordered)


def _pool_worker(
    task: Tuple[
        str, Optional[str], int, float, Optional[str], Optional[str],
        Optional[float], bool, Optional[str], Optional[str],
    ],
) -> Tuple[
    str, Optional[str], str, float, Optional[str], List[str], str,
    Optional[dict], Dict[str, int],
]:
    """Run one scheduling unit (whole exhibit or one shard) in a worker.

    Returns ``(name, shard, status, duration_s, error, svg_paths,
    captured_stdout, payload, fallbacks)``; ``payload`` is the shard's
    picklable result (None for whole exhibits, whose JSON the worker
    writes itself) and ``fallbacks`` the per-reason reference-fallback
    counts the unit accrued under ``--fast`` (empty otherwise).  Never
    raises: every failure mode is folded into the status so the parent
    keeps its single-writer control of the manifest.
    """
    (
        name, shard, seed, scale, out_dir, svg_dir, timeout_s, fast,
        trace_store, stream_store,
    ) = task
    # Exhibits are pure functions of (name, seed, scale), but reseed the
    # process-global random state per exhibit anyway so any stray global
    # RNG use is deterministic per (seed, exhibit) rather than dependent
    # on worker task scheduling.
    random.seed(SeedSequenceFactory(seed).seed_for(f"exhibit:{name}"))
    from repro.experiments import common

    common.set_fast_replay(fast)
    common.set_trace_store(trace_store)
    common.set_stream_store(stream_store)
    captured = io.StringIO()
    svg_paths: List[str] = []
    payload: Optional[dict] = None
    start = time.time()
    status, error = STATUS_OK, None
    try:
        with redirect_stdout(captured), exhibit_timeout(timeout_s):
            if shard is not None:
                payload = SHARDED[name].run_shard(shard, seed=seed, scale=scale)
            else:
                data = run_exhibit(name, seed=seed, scale=scale, out_dir=out_dir)
                if svg_dir:
                    from repro.experiments.charts import render_svg

                    svg_paths = [str(p) for p in render_svg(name, data, svg_dir)]
    except ExhibitTimeoutError as exc:
        status, error = STATUS_TIMEOUT, str(exc)
    except BaseException:
        status, error = STATUS_FAILED, traceback.format_exc()
    return (
        name, shard, status, time.time() - start, error, svg_paths,
        captured.getvalue(), payload, common.drain_fallback_counts(),
    )


_INGEST = "__ingest__"


def _ingest_worker(
    task: Tuple[str, int, float, bool, Optional[str], Optional[str], Optional[float], bool],
) -> Tuple[str, str, str, float, Optional[str]]:
    """Ingest one workload into the persistent stores (pool unit).

    Synthesizes (or store-loads) the workload trace, compiling it into
    the trace store, and — when ``prime_stream`` — records and publishes
    its plain-LS fragment stream and NoLS baseline to the stream store.
    Everything an exhibit later does with the workload then starts from
    memory-mapped store hits instead of repeating the synthesis in every
    worker.  Ingestion is an exact cache warm-up: a failure is tolerated
    (dependents fall back to computing on demand).

    Returns ``(_INGEST, workload, status, duration_s, error)``.
    """
    (
        workload, seed, scale, fast, trace_store, stream_store, timeout_s,
        prime_stream,
    ) = task
    random.seed(SeedSequenceFactory(seed).seed_for(f"ingest:{workload}"))
    from repro.experiments import common

    common.set_fast_replay(fast)
    common.set_trace_store(trace_store)
    common.set_stream_store(stream_store)
    start = time.time()
    status, error = STATUS_OK, None
    try:
        with exhibit_timeout(timeout_s):
            trace = common.workload_trace(workload, seed, scale)
            if prime_stream and stream_store is not None and fast:
                from repro.experiments.sweep import sweep_engine

                engine = sweep_engine(seed, scale)
                engine.stream_for(trace)
                engine.baseline(workload)
    except ExhibitTimeoutError as exc:
        status, error = STATUS_TIMEOUT, str(exc)
    except BaseException:
        status, error = STATUS_FAILED, traceback.format_exc()
    # Discard fallback tallies accrued while priming: counts are
    # attributed per exhibit, and this worker process may run an exhibit
    # unit next.
    common.drain_fallback_counts()
    return (_INGEST, workload, status, time.time() - start, error)


def ingest_workloads(
    names: Sequence[str],
    seed: int = 42,
    scale: float = 1.0,
    trace_store: Optional[str] = None,
    stream_store: Optional[str] = None,
    jobs: int = 1,
    fast: bool = True,
    prime_streams: Optional[bool] = None,
    timeout_s: Optional[float] = None,
    mp_start_method: Optional[str] = None,
    echo: Callable[[str], None] = lambda message: None,
) -> List[ExhibitOutcome]:
    """Populate the persistent stores for ``names`` (deduped) up front.

    The cold-start half of a parallel exhibit run, exposed on its own:
    each distinct workload is synthesized/compiled into ``trace_store``
    once — and, with ``prime_streams`` (default: on when a stream store
    is given and ``fast``), its plain-LS fragment stream and NoLS
    baseline are recorded into ``stream_store`` once — instead of
    redundantly inside every pool worker that happens to need it.
    Scheduling is longest-first by workload op count.  Failures are
    per-workload and non-fatal (the stores just stay cold for that
    workload); inspect the returned outcomes.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if prime_streams is None:
        prime_streams = stream_store is not None and fast
    ordered: List[str] = []
    for name in names:
        if name not in ordered:
            ordered.append(name)
    ordered.sort(key=lambda name: -_shard_weight(name))
    tasks = [
        (
            name, seed, scale, fast, trace_store, stream_store, timeout_s,
            prime_streams,
        )
        for name in ordered
    ]
    outcomes: List[ExhibitOutcome] = []

    def note(result) -> None:
        _tag, workload, status, duration, error = result
        outcomes.append(ExhibitOutcome(workload, status, duration, error))
        if status == STATUS_OK:
            echo(f"(ingest) {workload} done in {duration:.1f}s")
        else:
            echo(f"(ingest) {workload} {status.upper()} after {duration:.1f}s")

    if jobs == 1:
        from repro.experiments import common

        previous = (
            common.fast_replay_default(),
            common.trace_store(),
            common.stream_store(),
        )
        try:
            for task in tasks:
                note(_ingest_worker(task))
        finally:
            common.set_fast_replay(previous[0])
            common.set_trace_store(previous[1])
            common.set_stream_store(previous[2])
        return outcomes

    context = multiprocessing.get_context(mp_start_method or "spawn")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        for result in pool.map(_ingest_worker, tasks):
            note(result)
    return outcomes


def _reap_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate and join a pool's worker processes (best effort).

    Used on interrupt: waiting politely for an in-flight fig11-class
    sweep defeats the point of Ctrl-C.  Exhibit/manifest writes are all
    atomic-rename, so killing workers mid-write leaves no torn files.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:
            pass


def _shard_weight(shard: str) -> int:
    """Longest-first scheduling weight of one shard (workload op count)."""
    try:
        from repro.workloads import get_spec

        return int(get_spec(shard).total_ops)
    except Exception:
        return 0


def _run_pending_parallel(
    pending: Sequence[str],
    manifest: Optional[RunManifest],
    seed: int,
    scale: float,
    out_dir: Optional[str],
    svg_dir: Optional[str],
    keep_going: bool,
    timeout_s: Optional[float],
    jobs: int,
    fast: bool,
    trace_store: Optional[str],
    stream_store: Optional[str],
    echo: Callable[[str], None],
    mp_start_method: Optional[str],
) -> Dict[str, ExhibitOutcome]:
    """Fan ``pending`` exhibits (and their shards) out over a process pool.

    The parent is the sole manifest writer: every pending exhibit is
    marked ``running`` up front (preserving the serial manifest's entry
    order), then marked done as it finishes.  Sharded exhibits
    (:data:`~repro.experiments.registry.SHARDED`) are expanded into
    per-workload shard units; all units are submitted longest-first
    (unsplittable exhibits ahead, then shards by descending workload op
    count), and an exhibit finishes when its last shard arrives and the
    parent's deterministic ``merge`` reassembles it.  Without
    ``keep_going`` the first failing unit cancels the not-yet-started
    units; exhibits left without a recorded outcome have their
    placeholder entries removed so the manifest matches a serial run that
    stopped at the failure.
    """
    context = multiprocessing.get_context(mp_start_method or "spawn")
    fingerprints = {name: exhibit_fingerprint(name, seed, scale) for name in pending}
    if manifest is not None:
        for name in pending:
            manifest.exhibits[name] = {
                "status": STATUS_RUNNING,
                "fingerprint": fingerprints[name],
                "duration_s": 0.0,
                "error": None,
            }
        manifest.save()

    # Expand sharded exhibits into units and order everything longest-first.
    shard_map: Dict[str, List[str]] = {}
    units: List[Tuple[float, str, Optional[str]]] = []
    for name in pending:
        sharding = SHARDED.get(name)
        shards = list(sharding.shards(seed, scale)) if sharding is not None else []
        if len(shards) > 1:
            shard_map[name] = shards
            for shard in shards:
                units.append((float(_shard_weight(shard)), name, shard))
        else:
            units.append((float("inf"), name, None))
    units.sort(key=lambda unit: -unit[0])

    # Cold-start ingestion plan: with persistent stores, every distinct
    # workload the pending exhibits replay becomes a first-class pool
    # unit scheduled ahead of them, and each exhibit unit is gated on its
    # workloads' ingest units — so a cold run pays each synthesis (and,
    # for stream-path exhibits, each fragment-stream recording) exactly
    # once instead of once per worker that races to it.
    workload_users: Dict[str, set] = {}
    exhibit_workloads: Dict[str, frozenset] = {}
    if trace_store is not None or stream_store is not None:
        for name in pending:
            declared = WORKLOADS.get(name)
            if declared is None:
                continue
            try:
                workloads = list(declared(seed, scale))
            except Exception:
                continue  # a bad declaration must never fail the run
            exhibit_workloads[name] = frozenset(workloads)
            for workload in workloads:
                workload_users.setdefault(workload, set()).add(name)
    ingest_order = sorted(workload_users, key=lambda w: -_shard_weight(w))

    def unit_deps(name: str, shard: Optional[str]) -> frozenset:
        if shard is not None:
            return frozenset([shard]) & workload_users.keys()
        return exhibit_workloads.get(name, frozenset())

    shard_payloads: Dict[str, Dict[str, dict]] = {n: {} for n in shard_map}
    shard_durations: Dict[str, float] = {n: 0.0 for n in shard_map}
    shard_fallbacks: Dict[str, Dict[str, int]] = {n: {} for n in shard_map}
    shard_failures: Dict[str, Tuple[str, Optional[str]]] = {}
    results: Dict[str, ExhibitOutcome] = {}
    abort = False

    def record(name, status, duration, error, svg_paths, output, fallbacks=None):
        nonlocal abort
        if manifest is not None:
            manifest.mark_done(
                name, status, fingerprints[name], duration, error,
                fallbacks=fallbacks,
            )
        results[name] = ExhibitOutcome(name, status, duration, error)
        echo(f"=== {name} " + "=" * max(0, 66 - len(name)))
        if output.rstrip():
            echo(output.rstrip())
        for path in svg_paths:
            echo(f"(svg) {path}")
        if fallbacks:
            echo(f"(fallback) {format_fallbacks(fallbacks)}")
        if status == STATUS_OK:
            echo(f"--- {name} done in {duration:.1f}s\n")
        else:
            echo(f"--- {name} {status.upper()} after {duration:.1f}s")
            if error:
                echo(error.rstrip())
            echo("")
            if not keep_going:
                abort = True

    def merge_exhibit(name):
        """Deterministically reassemble a fully-sharded exhibit (parent)."""
        captured = io.StringIO()
        svg_paths: List[str] = []
        start = time.time()
        status, error = STATUS_OK, None
        try:
            with redirect_stdout(captured):
                data = SHARDED[name].merge(
                    shard_payloads[name], seed=seed, scale=scale, out_dir=out_dir
                )
            if svg_dir:
                from repro.experiments.charts import render_svg

                svg_paths = [str(p) for p in render_svg(name, data, svg_dir)]
        except Exception:
            status, error = STATUS_FAILED, traceback.format_exc()
        duration = shard_durations[name] + (time.time() - start)
        record(name, status, duration, error, svg_paths, captured.getvalue(),
               fallbacks=shard_fallbacks[name])

    def absorb(result):
        """Fold one worker result into exhibit-level bookkeeping."""
        (
            name, shard, status, duration, error, svg_paths, output, payload,
            fallbacks,
        ) = result
        if shard is None:
            record(name, status, duration, error, svg_paths, output,
                   fallbacks=fallbacks)
            return
        shard_durations[name] += duration
        for reason, count in fallbacks.items():
            bucket = shard_fallbacks[name]
            bucket[reason] = bucket.get(reason, 0) + count
        if name in results:
            return  # exhibit already failed on an earlier shard
        if status != STATUS_OK:
            if name not in shard_failures:
                shard_failures[name] = (status, f"shard {shard}: {error}")
                failure_status, failure_error = shard_failures[name]
                record(name, failure_status, shard_durations[name],
                       failure_error, [], output,
                       fallbacks=shard_fallbacks[name])
            return
        shard_payloads[name][shard] = payload
        if len(shard_payloads[name]) == len(shard_map[name]):
            merge_exhibit(name)

    interrupt: Optional[BaseException] = None
    prime = stream_store is not None and fast
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        not_done: set = set()

        def submit_unit(name: str, shard: Optional[str]) -> None:
            not_done.add(
                pool.submit(
                    _pool_worker,
                    (
                        name, shard, seed, scale, out_dir, svg_dir, timeout_s,
                        fast, trace_store, stream_store,
                    ),
                )
            )

        # Ingest units go in first (longest-first), then every exhibit
        # unit whose workloads need no ingestion; gated units wait.
        for workload in ingest_order:
            prime_stream = prime and any(
                user in STREAM_PRIMING for user in workload_users[workload]
            )
            not_done.add(
                pool.submit(
                    _ingest_worker,
                    (
                        workload, seed, scale, fast, trace_store,
                        stream_store, timeout_s, prime_stream,
                    ),
                )
            )
        ingested: set = set()
        waiting: List[Tuple[float, str, Optional[str]]] = []
        for _weight, name, shard in units:
            if unit_deps(name, shard) <= ingested:
                submit_unit(name, shard)
            else:
                waiting.append((_weight, name, shard))

        def release(workload: str) -> None:
            """An ingest unit finished: submit the units it unblocks."""
            ingested.add(workload)
            still: List[Tuple[float, str, Optional[str]]] = []
            for weight, name, shard in waiting:
                if unit_deps(name, shard) <= ingested:
                    submit_unit(name, shard)
                else:
                    still.append((weight, name, shard))
            waiting[:] = still

        try:
            with run_signal_handlers():
                while not_done and not abort:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        result = future.result()
                        if result[0] == _INGEST:
                            _tag, workload, status, duration, error = result
                            if status == STATUS_OK:
                                echo(f"(ingest) {workload} ready in {duration:.1f}s")
                            else:
                                # Non-fatal: dependents just run cold.
                                echo(
                                    f"(ingest) {workload} {status.upper()} "
                                    f"after {duration:.1f}s; continuing without it"
                                )
                            release(workload)
                        else:
                            absorb(result)
        except (KeyboardInterrupt, RunInterrupted) as exc:
            # Operator interrupt: cancel everything not yet started, reap
            # the worker processes (their dumps are atomic, so a unit
            # killed mid-write leaves no torn file), and fall through to
            # finalize the manifest before re-raising.
            interrupt = exc
            for future in not_done:
                future.cancel()
            _reap_pool(pool)
        if interrupt is None and abort:
            for future in not_done:
                future.cancel()
            # In-flight units finish (their dumps/payloads stay valid);
            # record whatever completes into whole exhibits.  Units still
            # gated on ingestion were never submitted — like cancelled
            # futures, they are dropped from the manifest below.
            for future in not_done:
                if not future.cancelled():
                    result = future.result()
                    if result[0] != _INGEST:
                        absorb(result)
            for name in shard_map:
                if name not in results and len(shard_payloads[name]) == len(
                    shard_map[name]
                ):
                    merge_exhibit(name)
            if manifest is not None:
                # Exhibits with no recorded outcome were never attempted
                # end-to-end; a serial manifest has no entry for them.
                dropped = [n for n in pending if n not in results]
                for name in dropped:
                    manifest.exhibits.pop(name, None)
                if dropped:
                    manifest.save()
    if interrupt is not None:
        # Finalize: no exhibit may be left marked ``running`` — resume
        # treats such entries as incomplete, but the manifest must say
        # what actually happened, not lie mid-sentence.
        if manifest is not None:
            dropped = [n for n in pending if n not in results]
            for name in dropped:
                manifest.exhibits.pop(name, None)
            if dropped:
                manifest.save()
        raise interrupt
    return results


def run_exhibits(
    names: Sequence[str],
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
    svg_dir: Optional[str] = None,
    keep_going: bool = False,
    timeout_s: Optional[float] = None,
    resume: bool = False,
    echo: Callable[[str], None] = print,
    jobs: int = 1,
    fast: bool = False,
    trace_store: Optional[str] = None,
    stream_store: Optional[str] = None,
    mp_start_method: Optional[str] = None,
) -> List[ExhibitOutcome]:
    """Run ``names`` with isolation, checkpointing, resume and parallelism.

    Returns one :class:`ExhibitOutcome` per *attempted* exhibit, in
    ``names`` order; without ``keep_going`` the run stops at the first
    failure (serial: later exhibits are not attempted; parallel: exhibits
    not yet started are cancelled, in-flight ones finish and are
    recorded).  The manifest is maintained only when ``out_dir`` is given
    (resume requires it).

    Args:
        jobs: Worker process count; ``1`` replays the classic serial path.
            With ``jobs > 1`` sharded exhibits split into per-workload
            units scheduled longest-first.  Exhibit JSON output is
            byte-identical either way.
        fast: Replay exhibits through the vectorized batch kernel
            (:mod:`repro.core.batch`; exact, so output is unchanged).
        trace_store: Directory of a persistent compiled-trace store
            (:mod:`repro.trace.store`); synthesized workload traces are
            compiled there on first use and loaded back on later runs.
            Exact, so output is unchanged; ``None`` disables.
        stream_store: Directory of a persistent stream store
            (:mod:`repro.core.stream_store`); recorded fragment streams
            and NoLS baselines are published there once machine-wide and
            memory-mapped by every other process.  Exact, so output is
            unchanged; ``None`` disables.
        mp_start_method: multiprocessing start method for ``jobs > 1``
            (default ``"spawn"`` for hermetic workers; tests use
            ``"fork"`` to exercise failure injection).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    manifest: Optional[RunManifest] = None
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        manifest_path = out_path / MANIFEST_NAME
        if resume:
            manifest = RunManifest.load_or_create(manifest_path, seed, scale)
        else:
            manifest = RunManifest(manifest_path, seed=seed, scale=scale)
        manifest.seed, manifest.scale = seed, scale
        manifest.save()
    elif resume:
        raise ValueError("resume requires an out_dir (the manifest lives there)")

    def skip_on_resume(name: str, fingerprint: str) -> bool:
        return (
            resume
            and manifest is not None
            and manifest.completed_ok(name, fingerprint)
            and _json_dump_valid(Path(out_dir) / f"{name}.json")
        )

    if jobs > 1:
        skipped: Dict[str, ExhibitOutcome] = {}
        pending: List[str] = []
        for name in names:
            if skip_on_resume(name, exhibit_fingerprint(name, seed, scale)):
                echo(f"=== {name}: already complete, skipping (resume)")
                skipped[name] = ExhibitOutcome(name, STATUS_SKIPPED)
            else:
                pending.append(name)
        results = _run_pending_parallel(
            pending, manifest, seed, scale, out_dir, svg_dir,
            keep_going, timeout_s, jobs, fast, trace_store, stream_store,
            echo, mp_start_method,
        )
        return [
            outcome
            for name in names
            for outcome in (skipped.get(name) or results.get(name),)
            if outcome is not None
        ]

    from repro.experiments import common

    previous_fast = common.fast_replay_default()
    previous_store = common.trace_store()
    previous_stream_store = common.stream_store()
    common.set_fast_replay(fast)
    if trace_store is not None:
        common.set_trace_store(trace_store)
    if stream_store is not None:
        common.set_stream_store(stream_store)
    common.drain_fallback_counts()  # attribute counts per exhibit, not run
    outcomes: List[ExhibitOutcome] = []
    try:
        with run_signal_handlers():
            for name in names:
                fingerprint = exhibit_fingerprint(name, seed, scale)
                if skip_on_resume(name, fingerprint):
                    echo(f"=== {name}: already complete, skipping (resume)")
                    outcomes.append(ExhibitOutcome(name, STATUS_SKIPPED))
                    continue
                if manifest is not None:
                    manifest.mark_running(name, fingerprint)
                echo(f"=== {name} " + "=" * max(0, 66 - len(name)))
                start = time.time()
                status, error = STATUS_OK, None
                try:
                    with exhibit_timeout(timeout_s):
                        data = run_exhibit(
                            name, seed=seed, scale=scale, out_dir=out_dir
                        )
                        if svg_dir:
                            from repro.experiments.charts import render_svg

                            for path in render_svg(name, data, svg_dir):
                                echo(f"(svg) {path}")
                except ExhibitTimeoutError as exc:
                    status, error = STATUS_TIMEOUT, str(exc)
                except (KeyboardInterrupt, RunInterrupted) as exc:
                    # Finalize the manifest mid-exhibit: the interrupted
                    # exhibit is failed (it did not finish), everything
                    # before it keeps its recorded status, and a rerun
                    # with resume=True picks up exactly here.
                    cause = (
                        f"interrupted ({exc.signal_name})"
                        if isinstance(exc, RunInterrupted)
                        else "interrupted (KeyboardInterrupt)"
                    )
                    if manifest is not None:
                        manifest.mark_done(
                            name, STATUS_FAILED, fingerprint,
                            time.time() - start, cause,
                        )
                    raise
                except Exception:
                    status, error = STATUS_FAILED, traceback.format_exc()
                duration = time.time() - start
                fallbacks = common.drain_fallback_counts()

                if manifest is not None:
                    manifest.mark_done(
                        name, status, fingerprint, duration, error,
                        fallbacks=fallbacks,
                    )
                outcomes.append(ExhibitOutcome(name, status, duration, error))
                if fallbacks:
                    echo(f"(fallback) {format_fallbacks(fallbacks)}")
                if status == STATUS_OK:
                    echo(f"--- {name} done in {duration:.1f}s\n")
                else:
                    echo(f"--- {name} {status.upper()} after {duration:.1f}s")
                    if error:
                        echo(error.rstrip())
                    echo("")
                    if not keep_going:
                        break
    finally:
        common.set_fast_replay(previous_fast)
        if trace_store is not None:
            common.set_trace_store(previous_store)
        if stream_store is not None:
            common.set_stream_store(previous_stream_store)
    return outcomes


def format_outcome_table(outcomes: Sequence[ExhibitOutcome]) -> str:
    """Render the end-of-run pass/fail summary table."""
    width = max([len(o.name) for o in outcomes] + [len("exhibit")])
    lines = [
        f"{'exhibit'.ljust(width)}  {'status':8}  duration",
        f"{'-' * width}  {'-' * 8}  --------",
    ]
    for outcome in outcomes:
        lines.append(
            f"{outcome.name.ljust(width)}  {outcome.status:8}  "
            f"{outcome.duration_s:7.1f}s"
        )
    ok = sum(1 for o in outcomes if o.ok)
    lines.append(f"{ok}/{len(outcomes)} exhibits ok")
    return "\n".join(lines)
