"""Shared-replay sweep engine for (workload x technique x parameter) grids.

Every headline exhibit replays each workload several times: fig11 runs a
NoLS baseline plus four technique configs per workload, and the ablations
add a fresh full replay per parameter point.  The replays are highly
redundant — the NoLS baseline is shared by every grid point, and all
defrag-free configurations resolve reads against the *identical* plain-LS
layout (see :mod:`repro.core.stream`).  :class:`SweepEngine` plans a grid
so the expensive work happens once per workload:

* the **NoLS baseline** is replayed once (vectorized batch kernel) and
  its stats memoized;
* the **fragment-access stream** is recorded once per trace
  (:func:`~repro.core.stream.record_fragment_stream`) and every
  cache/prefetch grid point is evaluated against the recording;
* **selective-cache capacity sweeps** collapse further: one
  stack-distance pass serves every capacity point
  (:func:`~repro.core.stream.stream_cache_sweep`);
* **defrag** grid points (layout-mutating) run through the chunked batch
  kernel (:mod:`repro.core.batch`), NoLS/unknown configs likewise.

All paths are exact, so exhibit JSON is byte-identical to the reference
pipeline; replays that attach recorders or a retry policy fall back to
the reference simulator automatically (the kernels cannot observe
per-request events or inject faults).  The engine defers to the
process-wide ``--fast`` switch (:func:`~repro.experiments.common.
set_fast_replay`): with fast replay off, every call routes through the
reference path unchanged.

Engines are memoized per ``(seed, scale)`` via :func:`sweep_engine`, so
exhibits running in one process (serial ``all`` runs, one pool worker
handling several exhibits) share baselines and recorded streams.  Traces
themselves still come from :func:`~repro.experiments.common.
workload_trace`, which consults the compiled-trace store — parallel
workers therefore stop re-parsing once the store is primed.  When a
persistent :class:`~repro.core.stream_store.StreamStore` is active
(:func:`~repro.experiments.common.set_stream_store` or the constructor
argument), recorded streams and NoLS baselines are shared **across
processes** too: the first worker to need a stream records and publishes
it, everyone else memory-maps the published arrays zero-copy.  The
in-memory LRU — keyed by :meth:`~repro.trace.trace.Trace.content_key`,
so logically identical traces from different load paths share one entry
— stays in front of the store.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.batch import batch_replay, batch_support
from repro.core.config import NOLS, TechniqueConfig
from repro.core.metrics import SeekAmplification, seek_amplification
from repro.core.outcomes import SimStats
from repro.core.recorders import Recorder
from repro.core.simulator import RetryPolicy, RunResult
from repro.core.stream import (
    FragmentStream,
    cache_hit_thresholds,
    record_fragment_stream,
    stream_cache_sweep,
    stream_replay,
    supports_cache_sweep,
    supports_stream,
)
from repro.experiments.common import (
    fast_replay_default,
    note_reference_fallback,
    replay_with,
    workload_trace,
)
from repro.trace.trace import Trace


class SweepEngine:
    """Plans and executes a replay grid with per-workload shared state.

    One engine is scoped to a ``(seed, scale)`` pair (the identity of a
    synthesized workload trace, together with its name).  ``fast=None``
    defers to the process-wide fast-replay default *per call*, so a single
    engine behaves correctly even when the CLI flag flips between runs.

    Args:
        seed / scale: Workload synthesis parameters.
        fast: Force the kernels on (True) / off (False), or defer (None).
        max_streams: Recorded fragment streams kept alive (LRU).  A
            stream is a few arrays the size of the access stream, so two
            in flight comfortably covers exhibits that interleave a
            couple of workloads.
        stream_store: Persistent stream store to share recordings and
            NoLS baselines across processes, or None to defer to the
            process-wide store (:func:`~repro.experiments.common.
            set_stream_store`).
    """

    def __init__(
        self,
        seed: int = 42,
        scale: float = 1.0,
        fast: Optional[bool] = None,
        max_streams: int = 2,
        stream_store=None,
    ) -> None:
        if max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams}")
        self.seed = seed
        self.scale = scale
        self._fast = fast
        self._max_streams = max_streams
        self._stream_store_override = stream_store
        # trace.content_key() -> (stream, {block_sectors: thresholds});
        # the content key survives re-loads of the same workload, so a
        # trace reaching this engine through a different path (fresh
        # synthesis vs compiled-store mmap) still hits the same entry.
        self._streams: "OrderedDict[str, tuple]" = OrderedDict()
        self._baselines: Dict[str, SimStats] = {}
        self.streams_recorded = 0

    # ----------------------------------------------------------------- #
    # Shared state
    # ----------------------------------------------------------------- #

    def fast_enabled(self, config: Optional[TechniqueConfig] = None) -> bool:
        """Whether this call should use the kernels (mirrors replay_with)."""
        if self._fast is not None:
            return self._fast
        if config is not None and config.fast:
            return True
        return fast_replay_default()

    def trace(self, name: str) -> Trace:
        """The workload trace (memoized + compiled-store-backed)."""
        return workload_trace(name, self.seed, self.scale)

    def stream_store(self):
        """The effective :class:`StreamStore` (constructor override wins)."""
        if self._stream_store_override is not None:
            return self._stream_store_override
        from repro.experiments import common

        return common.stream_store()

    def stream_for(self, trace: Trace) -> FragmentStream:
        """The recorded fragment-access stream of ``trace`` (memoized).

        Lookup order: in-memory LRU, then the persistent stream store
        (zero-copy mmap hit), then a fresh recording — which is published
        to the store so no other process pays it again.
        """
        key = trace.content_key()
        entry = self._streams.get(key)
        if entry is not None:
            self._streams.move_to_end(key)
            return entry[0]
        store = self.stream_store()
        stream = store.load_stream(trace) if store is not None else None
        if stream is None:
            stream = record_fragment_stream(trace)
            self.streams_recorded += 1
            if store is not None:
                store.store_stream(trace, stream)
        self._streams[key] = (stream, {})
        while len(self._streams) > self._max_streams:
            self._streams.popitem(last=False)
        return stream

    def _thresholds(self, trace: Trace, stream: FragmentStream, block_sectors: int):
        """Stack-distance thresholds for ``stream``, memoized per entry."""
        entry = self._streams.get(trace.content_key())
        cache = entry[1] if entry is not None else {}
        if block_sectors not in cache:
            cache[block_sectors] = cache_hit_thresholds(stream, block_sectors)
        return cache[block_sectors]

    def baseline(self, name: str) -> SimStats:
        """The workload's NoLS baseline stats (replayed once per engine).

        Under fast replay the persistent stream store is consulted first
        and primed after a compute; the reference path (fast off) never
        touches the store, so reference runs stay purely reference.
        """
        stats = self._baselines.get(name)
        if stats is not None:
            return stats
        store = self.stream_store() if self.fast_enabled() else None
        trace = self.trace(name) if store is not None else None
        if store is not None:
            stats = store.load_baseline(trace)
        if stats is None:
            stats = self.replay(self.trace(name), NOLS).stats
            if store is not None:
                store.store_baseline(trace, stats)
        self._baselines[name] = stats
        return stats

    # ----------------------------------------------------------------- #
    # Replay dispatch
    # ----------------------------------------------------------------- #

    def replay(
        self,
        trace: Trace,
        config: TechniqueConfig,
        recorders: Sequence[Recorder] = (),
        retry_policy: Optional[RetryPolicy] = None,
    ) -> RunResult:
        """Replay via the cheapest exact path for ``config``.

        Dispatch: recorders or a retry policy force the reference
        simulator (through :func:`replay_with`'s own fallback); otherwise
        defrag-free configs evaluate against the recorded stream, and
        everything else (NoLS, defrag combinations) uses the batch kernel.
        """
        if recorders or retry_policy is not None:
            return replay_with(
                trace, config, recorders, retry_policy=retry_policy
            )
        if not self.fast_enabled(config):
            return replay_with(trace, config, fast=False)
        if supports_stream(config):
            return stream_replay(self.stream_for(trace), config).run_result
        support = batch_support(config)
        if support:
            return batch_replay(trace, config).run_result
        note_reference_fallback(support.reason)
        return replay_with(trace, config, fast=False)

    def sweep(
        self, trace: Trace, configs: Sequence[TechniqueConfig]
    ) -> List[RunResult]:
        """Replay ``trace`` under every config, sharing whatever possible.

        Results come back in ``configs`` order.  Cache-only points with a
        common block size are batched through the shared stack-distance
        kernel; the rest dispatch individually via :meth:`replay`.
        """
        configs = list(configs)
        results: List[Optional[RunResult]] = [None] * len(configs)
        sweepable: Dict[int, List[int]] = {}
        if self.fast_enabled():
            for position, config in enumerate(configs):
                if supports_cache_sweep(config):
                    sweepable.setdefault(
                        config.cache.block_sectors, []
                    ).append(position)
        for block_sectors, positions in sweepable.items():
            if len(positions) < 2:
                continue  # a lone point is cheaper as a plain stream replay
            stream = self.stream_for(trace)
            thresholds = self._thresholds(trace, stream, block_sectors)
            swept = stream_cache_sweep(
                stream, [configs[p] for p in positions], thresholds=thresholds
            )
            for position, result in zip(positions, swept):
                results[position] = result.run_result
        for position, config in enumerate(configs):
            if results[position] is None:
                results[position] = self.replay(trace, config)
        return results

    # ----------------------------------------------------------------- #
    # Workload-level conveniences (what the exhibits call)
    # ----------------------------------------------------------------- #

    def workload_replay(self, name: str, config: TechniqueConfig) -> RunResult:
        return self.replay(self.trace(name), config)

    def workload_sweep(
        self, name: str, configs: Sequence[TechniqueConfig]
    ) -> List[RunResult]:
        return self.sweep(self.trace(name), configs)

    def saf(self, name: str, config: TechniqueConfig) -> SeekAmplification:
        """Seek amplification of ``config`` on ``name`` vs the NoLS baseline."""
        stats = self.workload_replay(name, config).stats
        return seek_amplification(stats, self.baseline(name))


# --------------------------------------------------------------------- #
# Process-wide engine registry
# --------------------------------------------------------------------- #

_ENGINES_MAX = 4
_engines: "OrderedDict[Tuple[int, float], SweepEngine]" = OrderedDict()


def sweep_engine(seed: int = 42, scale: float = 1.0) -> SweepEngine:
    """The shared engine for ``(seed, scale)`` (bounded LRU registry).

    Exhibits fetch their engine here so a serial ``all`` run — or one pool
    worker handling several exhibits — shares NoLS baselines and recorded
    streams across exhibits.  Engines defer to the process-wide fast
    default, so the registry is safe to share between fast and reference
    runs (the kernels are exact either way).
    """
    key = (seed, scale)
    engine = _engines.get(key)
    if engine is not None:
        _engines.move_to_end(key)
        return engine
    engine = SweepEngine(seed=seed, scale=scale)
    _engines[key] = engine
    while len(_engines) > _ENGINES_MAX:
        _engines.popitem(last=False)
    return engine


def reset_sweep_engines() -> None:
    """Drop every memoized engine (tests; frees streams and baselines)."""
    _engines.clear()
