"""Exhibit registry mapping names to runner modules.

Exhibits that iterate independent workloads also declare a
:class:`Sharding`: ``shards(seed, scale)`` lists the shard names,
``run_shard(shard, seed, scale)`` produces one picklable payload, and
``merge(payloads, seed, scale, out_dir)`` deterministically reassembles
the exhibit (prints + JSON).  Each module's ``run`` is defined as merge
over a serial shard loop, so serial and sharded-parallel runs share one
code path and their output is byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)

Runner = Callable[..., dict]

EXHIBITS: Dict[str, Runner] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "ablation_cache": ablations.run_cache,
    "ablation_defrag": ablations.run_defrag,
    "ablation_prefetch": ablations.run_prefetch,
    "ablation_cleaning": ablations.run_cleaning,
    "ablation_multifrontier": ablations.run_multifrontier,
    "ablation_combined": ablations.run_combined,
    "taxonomy": ablations.run_taxonomy,
}
"""All regenerable exhibits: the paper's (in its order) plus ablations."""


@dataclass(frozen=True)
class Sharding:
    """How the parallel runner splits one exhibit into workload shards."""

    shards: Callable[[int, float], List[str]]
    run_shard: Callable[..., dict]
    merge: Callable[..., dict]


SHARDED: Dict[str, Sharding] = {
    "fig2": Sharding(fig2.shard_names, fig2.run_shard, fig2.merge),
    "fig3": Sharding(fig3.shard_names, fig3.run_shard, fig3.merge),
    "fig4": Sharding(fig4.shard_names, fig4.run_shard, fig4.merge),
    "fig5": Sharding(fig5.shard_names, fig5.run_shard, fig5.merge),
    "fig8": Sharding(fig8.shard_names, fig8.run_shard, fig8.merge),
    "fig10": Sharding(fig10.shard_names, fig10.run_shard, fig10.merge),
    "fig11": Sharding(fig11.shard_names, fig11.run_shard, fig11.merge),
}
"""Exhibits the parallel runner may split into per-workload shards."""


def _table1_workloads(seed: int = 42, scale: float = 1.0) -> List[str]:
    from repro.workloads import TABLE1

    return list(TABLE1)


def _fig7_workloads(seed: int = 42, scale: float = 1.0) -> List[str]:
    from repro.workloads import FIG7_WORKLOADS

    return list(FIG7_WORKLOADS)


WORKLOADS: Dict[str, Callable[[int, float], List[str]]] = {
    "table1": _table1_workloads,
    "fig2": fig2.shard_names,
    "fig3": fig3.shard_names,
    "fig4": fig4.shard_names,
    "fig5": fig5.shard_names,
    "fig7": _fig7_workloads,
    "fig8": fig8.shard_names,
    "fig10": fig10.shard_names,
    "fig11": fig11.shard_names,
    "ablation_cache": lambda seed, scale: ["w91", "usr_1", "hm_1"],
    "ablation_defrag": lambda seed, scale: ["w91", "w20"],
    "ablation_prefetch": lambda seed, scale: ["w91", "hm_1"],
    "ablation_multifrontier": lambda seed, scale: ["w91"],
    "ablation_combined": _table1_workloads,
    "taxonomy": _table1_workloads,
}
"""Table I workloads each exhibit replays, for cold-start ingestion
planning (exhibits absent here — toy scenarios, synthetic sweeps — need
no pre-ingested traces).  The parallel runner schedules one ingest unit
per distinct workload ahead of the exhibits that replay it."""

STREAM_PRIMING = frozenset(
    {
        "fig2", "fig3", "fig4", "fig5", "fig10", "fig11",
        "ablation_cache", "ablation_defrag", "ablation_prefetch",
        "ablation_combined", "taxonomy",
    }
)
"""Exhibits whose workloads also want the plain-LS fragment stream and
NoLS baseline published to the stream store during ingestion (they
resolve replays through the :class:`~repro.experiments.sweep.SweepEngine`
stream path).  Trace-stats-only exhibits (``table1``, ``fig7``, ``fig8``)
skip the recording."""


def resolve_names(requested: Sequence[str]) -> List[str]:
    """Expand/validate a CLI exhibit list.

    ``"all"`` anywhere in the list expands to every registered exhibit (in
    registry order); otherwise every name must be registered.  Raises
    :class:`KeyError` naming the first unknown exhibit.
    """
    if "all" in requested:
        return list(EXHIBITS)
    for name in requested:
        if name not in EXHIBITS:
            raise KeyError(
                f"unknown exhibit {name!r}; known: {', '.join(EXHIBITS)}"
            )
    return list(requested)


def run_exhibit(
    name: str,
    seed: int = 42,
    scale: float = 1.0,
    out_dir: Optional[str] = None,
) -> dict:
    """Run one exhibit by name (KeyError lists the valid names)."""
    try:
        runner = EXHIBITS[name]
    except KeyError:
        raise KeyError(
            f"unknown exhibit {name!r}; known: {', '.join(EXHIBITS)}"
        ) from None
    return runner(seed=seed, scale=scale, out_dir=out_dir)
