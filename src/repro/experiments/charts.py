"""Build SVG charts from exhibit result data.

Each supported exhibit gets a renderer that turns the JSON-able dict its
runner returns into one or more SVG files; unsupported exhibits (the
walkthroughs and tables) are skipped silently.  Driven by the CLI's
``--svg DIR`` option.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List

from repro.experiments.svg import bar_chart, grouped_bar_chart, line_chart


def _write(out_dir: Path, name: str, svg: str, written: List[Path]) -> None:
    path = out_dir / f"{name}.svg"
    path.write_text(svg)
    written.append(path)


def _fig2(data: dict, out_dir: Path, written: List[Path]) -> None:
    for family in ("msr", "cloudphysics"):
        groups = [
            (name, [
                row["nols"]["read_seeks"],
                row["nols"]["write_seeks"],
                row["ls"]["read_seeks"],
                row["ls"]["write_seeks"],
            ])
            for name, row in data.items()
            if row["family"] == family
        ]
        if not groups:
            continue
        _write(
            out_dir,
            f"fig2_{family}",
            grouped_bar_chart(
                groups,
                series_labels=["NoLS read", "NoLS write", "LS read", "LS write"],
                title=f"Fig. 2 ({family}): seek counts, NoLS vs LS",
                y_label="seeks",
            ),
            written,
        )


def _fig3(data: dict, out_dir: Path, written: List[Path]) -> None:
    series = [
        (name, [(float(i), float(v)) for i, v in enumerate(row["series"])])
        for name, row in data.items()
    ]
    _write(
        out_dir,
        "fig3",
        line_chart(
            series,
            title="Fig. 3: extra long seeks per window (LS - NoLS)",
            x_label="window",
            y_label="extra long seeks",
        ),
        written,
    )


def _cdf_chart(data: dict, key_pairs, title, x_label, out_name, out_dir, written):
    series = []
    for name, row in data.items():
        for key, suffix in key_pairs:
            points = [(float(x), float(f)) for x, f in row[key]]
            if points:
                series.append((f"{name}{suffix}", points))
    _write(
        out_dir,
        out_name,
        line_chart(series, title=title, x_label=x_label, y_label="CDF"),
        written,
    )


def _fig4(data: dict, out_dir: Path, written: List[Path]) -> None:
    _cdf_chart(
        data,
        [("nols_cdf", " NoLS"), ("ls_cdf", " LS")],
        "Fig. 4: CDF of access distances",
        "distance (GiB)",
        "fig4",
        out_dir,
        written,
    )


def _fig5(data: dict, out_dir: Path, written: List[Path]) -> None:
    _cdf_chart(
        data,
        [("cdf", "")],
        "Fig. 5: CDF of fragments per fragmented read",
        "fragments",
        "fig5",
        out_dir,
        written,
    )


def _fig8(data: dict, out_dir: Path, written: List[Path]) -> None:
    items = sorted(data.items(), key=lambda kv: -kv[1])
    _write(
        out_dir,
        "fig8",
        bar_chart(
            items,
            title="Fig. 8: mis-ordered write rate (256 KB horizon)",
            y_label="rate",
        ),
        written,
    )


def _fig10(data: dict, out_dir: Path, written: List[Path]) -> None:
    series = [
        (
            name,
            [
                (float(i), float(mib))
                for i, mib in enumerate(row["cumulative_mib"])
            ],
        )
        for name, row in data.items()
    ]
    _write(
        out_dir,
        "fig10",
        line_chart(
            series,
            title="Fig. 10: cumulative cache size by fragment popularity rank",
            x_label="fragment rank (sampled)",
            y_label="MiB",
        ),
        written,
    )


def _fig11(data: dict, out_dir: Path, written: List[Path]) -> None:
    configs = ["LS", "LS+defrag", "LS+prefetch", "LS+cache"]
    for family in ("msr", "cloudphysics"):
        groups = [
            (name, [row["saf"][c]["total"] for c in configs])
            for name, row in data.items()
            if row["family"] == family
        ]
        if not groups:
            continue
        _write(
            out_dir,
            f"fig11_{family}",
            grouped_bar_chart(
                groups,
                series_labels=configs,
                title=f"Fig. 11 ({family}): seek amplification factor",
                y_label="SAF",
                reference_line=1.0,
            ),
            written,
        )


def _ablation_cache(data: dict, out_dir: Path, written: List[Path]) -> None:
    sizes = ["4MB", "16MB", "64MB", "256MB"]
    groups = [
        (name, [row[size] for size in sizes]) for name, row in data.items()
    ]
    _write(
        out_dir,
        "ablation_cache",
        grouped_bar_chart(
            groups,
            series_labels=sizes,
            title="Ablation: selective-cache capacity vs SAF",
            y_label="SAF",
            reference_line=1.0,
        ),
        written,
    )


def _ablation_cleaning(data: dict, out_dir: Path, written: List[Path]) -> None:
    points = sorted(
        (row["overprovision_x"], row["waf"]) for row in data.values()
    )
    seeks = sorted(
        (row["overprovision_x"], row["saf_incl_cleaning"]) for row in data.values()
    )
    _write(
        out_dir,
        "ablation_cleaning",
        line_chart(
            [("WAF", points), ("SAF incl. cleaning", seeks)],
            title="Ablation: over-provisioning vs cleaning cost",
            x_label="log capacity / working set",
        ),
        written,
    )


RENDERERS: Dict[str, Callable] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig8": _fig8,
    "fig10": _fig10,
    "fig11": _fig11,
    "ablation_cache": _ablation_cache,
    "ablation_cleaning": _ablation_cleaning,
}
"""Exhibits with an SVG rendering (others are text/table-only)."""


def render_svg(exhibit: str, data: dict, out_dir) -> List[Path]:
    """Render ``exhibit``'s chart(s) into ``out_dir``; returns paths
    written (empty when the exhibit has no chart form)."""
    renderer = RENDERERS.get(exhibit)
    if renderer is None:
        return []
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    renderer(data, out, written)
    return written
