"""Table I — workload characteristics, paper vs. synthetic archetype."""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import save_json, workload_trace
from repro.experiments.render import format_table
from repro.trace.stats import compute_stats
from repro.workloads import TABLE1

EXHIBIT = "table1"


def run(seed: int = 42, scale: float = 1.0, out_dir: Optional[str] = None) -> dict:
    """Regenerate Table I: per-workload counts, volumes and mean sizes.

    Synthetic archetypes are scaled down from the paper's traces; the
    comparison columns are therefore *read fraction* and *mean write size*
    (scale-invariant), alongside the raw synthetic counts.
    """
    rows = []
    data = {}
    for name, entry in TABLE1.items():
        trace = workload_trace(name, seed, scale)
        stats = compute_stats(trace)
        paper = entry.paper
        data[name] = {
            "paper": {
                "read_count": paper.read_count,
                "write_count": paper.write_count,
                "read_gb": paper.read_gb,
                "written_gb": paper.written_gb,
                "mean_write_kb": paper.mean_write_kb,
                "read_fraction": round(paper.read_fraction, 3),
                "guest_os": paper.guest_os,
            },
            "synthetic": {
                "read_count": stats.read_count,
                "write_count": stats.write_count,
                "read_gib": round(stats.read_volume_gib, 3),
                "written_gib": round(stats.written_volume_gib, 3),
                "mean_write_kib": round(stats.mean_write_size_kib, 1),
                "read_fraction": round(stats.read_fraction, 3),
            },
        }
        rows.append(
            [
                name,
                paper.read_count,
                paper.write_count,
                f"{paper.read_fraction:.3f}",
                f"{stats.read_fraction:.3f}",
                f"{paper.mean_write_kb:.1f}",
                f"{stats.mean_write_size_kib:.1f}",
                stats.read_count,
                stats.write_count,
            ]
        )
    print(
        format_table(
            [
                "workload",
                "paper rd#",
                "paper wr#",
                "paper rd frac",
                "synth rd frac",
                "paper wr KB",
                "synth wr KiB",
                "synth rd#",
                "synth wr#",
            ],
            rows,
            title="Table I: workload characteristics (paper vs synthetic archetype)",
        )
    )
    save_json(EXHIBIT, data, out_dir)
    return data
