"""Top-level CLI: ``python -m repro <command>`` (console script ``repro``).

Commands:

* ``repro serve`` — boot the streaming replay daemon
  (:mod:`repro.service.daemon`) and run until SIGINT/SIGTERM; sessions
  checkpoint on the way down, so a later boot with the same ``--root``
  resumes every tenant.
* ``repro serve-smoke`` — the self-contained chaos smoke run
  (:mod:`repro.service.smoke`): 3 tenants, one worker kill, one corrupt
  checkpoint, exact-recovery assertions, clean shutdown.
* ``repro load`` — the serving load harness (:mod:`repro.load`): boots a
  throwaway daemon (or targets ``--host/--port``), streams multi-tenant
  Table-I mixtures at 10–100M-op scale with live queries, and prints a
  JSON report (throughput, p99 latencies, peak RSS).

Experiment exhibits keep their own entry point
(``python -m repro.experiments`` / ``repro-experiments``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

from repro.service.daemon import DaemonConfig, ReplayDaemon
from repro.service.supervisor import SupervisorConfig


async def _serve(args) -> int:
    daemon = ReplayDaemon(
        Path(args.root),
        config=DaemonConfig(
            host=args.host,
            port=args.port,
            queue_depth=args.queue_depth,
            deadline_s=args.deadline,
        ),
        supervisor_config=SupervisorConfig(
            checkpoint_interval_ops=args.checkpoint_interval,
        ),
    )
    await daemon.start()
    print(f"repro serve: listening on {args.host}:{daemon.port} (root={args.root})")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    serve_task = asyncio.ensure_future(daemon.serve_forever())
    stop_wait = asyncio.ensure_future(stop.wait())
    try:
        # serve_forever only returns on error; stop on signal or crash.
        await asyncio.wait({serve_task, stop_wait}, return_when=asyncio.FIRST_COMPLETED)
    finally:
        stop_wait.cancel()
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await daemon.stop()
        print("repro serve: all sessions checkpointed; bye")
    return 0


def _load(args) -> int:
    import json
    import tempfile

    from repro.core.config import LS, LS_CACHE, LS_DEFRAG
    from repro.load.driver import TenantLoad, run_load
    from repro.load.mixture import preset

    components = preset(args.mixture)
    configs = (LS, LS_DEFRAG, LS_CACHE)
    tenants = [
        TenantLoad(
            name=f"tenant_{i}",
            components=components,
            config=configs[i % len(configs)],
            total_ops=args.ops,
            batch_ops=args.batch_ops,
            wire=args.wire,
            window=args.window,
            seed=17 + i,
        )
        for i in range(args.tenants)
    ]

    def drive(host: str, port: int) -> dict:
        report = run_load(
            host,
            port,
            tenants,
            target_ops_per_s=args.rate,
            schedule=args.schedule,
            period_s=args.period,
            live_queries=not args.no_queries,
        )
        return report.to_dict()

    if args.host is not None:
        result = drive(args.host, args.port)
    else:
        from repro.service.harness import DaemonThread

        def boot_and_drive(root: str) -> dict:
            # Size the per-tenant queue for the pipeline window, or every
            # tenant sheds (and resyncs) the moment its window fills.
            server = DaemonThread(
                root,
                config=DaemonConfig(
                    port=0, queue_depth=max(2 * args.window, 64)
                ),
            )
            port = server.start()
            try:
                return drive("127.0.0.1", port)
            finally:
                server.stop()

        if args.root is not None:
            result = boot_and_drive(args.root)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-load-") as tmp:
                result = boot_and_drive(tmp)

    text = json.dumps(result, indent=2, sort_keys=True)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming replay service for the SMR read-seek study.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the streaming replay daemon")
    serve.add_argument("--root", required=True, help="state directory (checkpoints + journals)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7272)
    serve.add_argument("--queue-depth", type=int, default=16, help="per-tenant queue bound")
    serve.add_argument("--deadline", type=float, default=30.0, help="queue deadline seconds")
    serve.add_argument(
        "--checkpoint-interval", type=int, default=50_000, help="ops between checkpoints"
    )

    smoke = commands.add_parser(
        "serve-smoke", help="3-tenant chaos smoke run against a throwaway daemon"
    )
    smoke.add_argument("--root", default=None, help="state dir (default: temp)")
    smoke.add_argument("--ops", type=int, default=3400, help="ops per tenant")

    load = commands.add_parser(
        "load", help="drive a daemon with multi-tenant mixture traffic"
    )
    load.add_argument("--host", default=None, help="target an already-running daemon")
    load.add_argument("--port", type=int, default=7272)
    load.add_argument("--root", default=None, help="state dir for a throwaway daemon (default: temp)")
    load.add_argument("--ops", type=int, default=1_000_000, help="total ops per tenant")
    load.add_argument("--tenants", type=int, default=3, help="number of tenants")
    load.add_argument("--batch-ops", type=int, default=2_000, help="ops per batch")
    load.add_argument("--window", type=int, default=32, help="pipelined batches in flight")
    load.add_argument(
        "--mixture", default="user_heavy", help="preset mixture name (see repro.load.mixture)"
    )
    load.add_argument(
        "--wire", default="bin", choices=("bin", "json"),
        help="bin = pipelined columnar (coalesced); json = sequential fallback",
    )
    load.add_argument(
        "--rate", type=float, default=None, help="combined target ops/s (default: unthrottled)"
    )
    load.add_argument(
        "--schedule", default="steady", choices=("steady", "diurnal", "burst")
    )
    load.add_argument("--period", type=float, default=10.0, help="schedule period seconds")
    load.add_argument("--no-queries", action="store_true", help="skip the live-query sidecar")
    load.add_argument("--out", default=None, help="write the JSON report here too")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return asyncio.run(_serve(args))
    if args.command == "serve-smoke":
        from repro.service.smoke import main as smoke_main

        smoke_argv = ["--ops", str(args.ops)]
        if args.root:
            smoke_argv += ["--root", args.root]
        return smoke_main(smoke_argv)
    if args.command == "load":
        return _load(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
