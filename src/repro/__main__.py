"""Top-level CLI: ``python -m repro <command>`` (console script ``repro``).

Commands:

* ``repro serve`` — boot the streaming replay daemon
  (:mod:`repro.service.daemon`) and run until SIGINT/SIGTERM; sessions
  checkpoint on the way down, so a later boot with the same ``--root``
  resumes every tenant.
* ``repro serve-smoke`` — the self-contained chaos smoke run
  (:mod:`repro.service.smoke`): 3 tenants, one worker kill, one corrupt
  checkpoint, exact-recovery assertions, clean shutdown.

Experiment exhibits keep their own entry point
(``python -m repro.experiments`` / ``repro-experiments``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

from repro.service.daemon import DaemonConfig, ReplayDaemon
from repro.service.supervisor import SupervisorConfig


async def _serve(args) -> int:
    daemon = ReplayDaemon(
        Path(args.root),
        config=DaemonConfig(
            host=args.host,
            port=args.port,
            queue_depth=args.queue_depth,
            deadline_s=args.deadline,
        ),
        supervisor_config=SupervisorConfig(
            checkpoint_interval_ops=args.checkpoint_interval,
        ),
    )
    await daemon.start()
    print(f"repro serve: listening on {args.host}:{daemon.port} (root={args.root})")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    serve_task = asyncio.ensure_future(daemon.serve_forever())
    stop_wait = asyncio.ensure_future(stop.wait())
    try:
        # serve_forever only returns on error; stop on signal or crash.
        await asyncio.wait({serve_task, stop_wait}, return_when=asyncio.FIRST_COMPLETED)
    finally:
        stop_wait.cancel()
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await daemon.stop()
        print("repro serve: all sessions checkpointed; bye")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming replay service for the SMR read-seek study.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the streaming replay daemon")
    serve.add_argument("--root", required=True, help="state directory (checkpoints + journals)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7272)
    serve.add_argument("--queue-depth", type=int, default=16, help="per-tenant queue bound")
    serve.add_argument("--deadline", type=float, default=30.0, help="queue deadline seconds")
    serve.add_argument(
        "--checkpoint-interval", type=int, default=50_000, help="ops between checkpoints"
    )

    smoke = commands.add_parser(
        "serve-smoke", help="3-tenant chaos smoke run against a throwaway daemon"
    )
    smoke.add_argument("--root", default=None, help="state dir (default: temp)")
    smoke.add_argument("--ops", type=int, default=3400, help="ops per tenant")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return asyncio.run(_serve(args))
    if args.command == "serve-smoke":
        from repro.service.smoke import main as smoke_main

        smoke_argv = ["--ops", str(args.ops)]
        if args.root:
            smoke_argv += ["--root", args.root]
        return smoke_main(smoke_argv)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
