"""Dynamic-fragmentation analysis (paper §IV-A, Fig. 5).

*Static* fragmentation is the extent count of the address map — the seeks
a full sequential scan of the LBA space would pay
(:meth:`LogStructuredTranslator.static_fragmentation`).  *Dynamic*
fragmentation is per read: how many physical pieces one read touches.
Fig. 5 shows that dynamic fragments concentrate heavily — for usr_0, hm_1
and w20, over half of all fragments occur in ~20 % of the fragmented
reads — which is what makes opportunistic defragmentation cheap relative
to full address-space defragmentation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.util.stats import empirical_cdf


def static_fragmentation_series(
    trace,
    config,
    sample_every: int = 1000,
) -> List[Tuple[int, int]]:
    """Static fragmentation (mapped extent count) over a replay.

    Static fragmentation is "the number of seeks which would be incurred
    by a sequential read of the entire LBA space" (§IV-A).  This replays
    ``trace`` under ``config`` and samples the translator's extent count
    every ``sample_every`` operations, returning ``(op_index, extents)``
    pairs — the growth curve opportunistic defragmentation bends down.

    Only log-structured configurations have a map to sample; passing the
    NoLS baseline raises :class:`ValueError`.
    """
    from repro.core.config import build_translator
    from repro.core.translators import LogStructuredTranslator

    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    translator = build_translator(trace, config)
    if not isinstance(translator, LogStructuredTranslator):
        raise ValueError("static fragmentation requires a log-structured config")
    series: List[Tuple[int, int]] = []
    for op_index, request in enumerate(trace):
        translator.submit(request)
        if (op_index + 1) % sample_every == 0:
            series.append((op_index + 1, translator.static_fragmentation()))
    if not series or series[-1][0] != len(trace):
        series.append((len(trace), translator.static_fragmentation()))
    return series


def fragment_cdf(read_fragments: Sequence[int]) -> List[Tuple[float, float]]:
    """CDF of per-read fragment counts over *fragmented* reads only.

    Args:
        read_fragments: Fragment count of each read (any reads with a
            single fragment are ignored, as in Fig. 5).
    """
    fragmented = [f for f in read_fragments if f > 1]
    return [(float(x), y) for x, y in empirical_cdf(fragmented)]


def fragment_concentration(
    read_fragments: Sequence[int],
) -> List[Tuple[float, float]]:
    """Concentration (Lorenz-style) curve of fragments across reads.

    Sorts fragmented reads from most- to least-fragmented and returns
    ``(fraction_of_reads, fraction_of_fragments)`` points: how large a
    share of all fragments is held by the top x fraction of reads.
    """
    fragmented = sorted((f for f in read_fragments if f > 1), reverse=True)
    if not fragmented:
        return []
    total = sum(fragmented)
    n = len(fragmented)
    points: List[Tuple[float, float]] = []
    running = 0
    for i, f in enumerate(fragmented, start=1):
        running += f
        points.append((i / n, running / total))
    return points


def fraction_of_fragments_in_top_reads(
    read_fragments: Sequence[int],
    top_fraction: float = 0.2,
) -> float:
    """Share of all fragments held by the most-fragmented ``top_fraction``
    of fragmented reads (the paper's "half the fragments in ~20 % of the
    operations" statistic)."""
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    curve = fragment_concentration(read_fragments)
    if not curve:
        return 0.0
    for frac_reads, frac_fragments in curve:
        if frac_reads >= top_fraction:
            return frac_fragments
    return 1.0
