"""Workload and replay analyses behind the paper's characterization figures.

Each module maps to one analytical lens:

* :mod:`repro.analysis.distances` — seek/access-distance CDFs (Fig. 4).
* :mod:`repro.analysis.temporal` — windowed long-seek differencing (Fig. 3).
* :mod:`repro.analysis.fragmentation` — dynamic-fragmentation CDFs and
  concentration curves (Fig. 5).
* :mod:`repro.analysis.misorder` — mis-ordered-write detection (Fig. 8).
* :mod:`repro.analysis.popularity` — fragment access popularity and the
  cumulative cache-size curve (Fig. 10).
"""

from repro.analysis.distances import distance_cdf, clip_distances
from repro.analysis.temporal import WindowedSeekRecorder, long_seek_difference
from repro.analysis.fragmentation import (
    fragment_cdf,
    fragment_concentration,
    fraction_of_fragments_in_top_reads,
    static_fragmentation_series,
)
from repro.analysis.misorder import misordered_writes, misorder_rate
from repro.analysis.popularity import (
    FragmentPopularityRecorder,
    PopularityCurve,
)
from repro.analysis.fast import (
    distance_cdf_fast,
    fraction_within_fast,
    fragment_cdf_fast,
    fragment_concentration_fast,
    fraction_of_fragments_in_top_reads_fast,
    misorder_rate_fast,
    nols_seek_counts,
    nols_seek_distances,
    nols_windowed_long_seeks,
    popularity_curve_fast,
)
from repro.analysis.service import ServiceTimeEstimate, estimate_service_time
from repro.analysis.classify import (
    LogSensitivity,
    WorkloadCharacter,
    characterize,
    classify_saf,
    classify_stats,
)

__all__ = [
    "distance_cdf",
    "clip_distances",
    "WindowedSeekRecorder",
    "long_seek_difference",
    "fragment_cdf",
    "fragment_concentration",
    "fraction_of_fragments_in_top_reads",
    "static_fragmentation_series",
    "misordered_writes",
    "misorder_rate",
    "FragmentPopularityRecorder",
    "PopularityCurve",
    "LogSensitivity",
    "WorkloadCharacter",
    "characterize",
    "classify_saf",
    "classify_stats",
    "ServiceTimeEstimate",
    "estimate_service_time",
    # Vectorized equivalents (exact; see tests/differential/)
    "distance_cdf_fast",
    "fraction_within_fast",
    "fragment_cdf_fast",
    "fragment_concentration_fast",
    "fraction_of_fragments_in_top_reads_fast",
    "misorder_rate_fast",
    "nols_seek_counts",
    "nols_seek_distances",
    "nols_windowed_long_seeks",
    "popularity_curve_fast",
]
