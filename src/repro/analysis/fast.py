"""Vectorized (numpy) fast paths for trace-level analyses.

The reference implementations in this package are plain Python and easy
to audit; replaying multi-million-op traces (e.g. the real MSR files)
makes the O(n) Python loops noticeable.  This module provides numpy
equivalents for the analyses that need no translation state — baseline
(NoLS) seek counting and seek distances — with tests asserting exact
agreement with the reference path.

The stateful log-structured replay has its own vectorized kernel in
:mod:`repro.core.batch` (chunked sweeps over the extent map with
vectorized seek classification); :func:`nols_sim_stats` below exposes the
batch NoLS kernel at analysis level for symmetry.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.trace.trace import Trace
from repro.util.units import SECTOR_BYTES, BYTES_PER_MIB, gib_to_sectors, kib_to_sectors


def trace_arrays(trace: Trace) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose a trace into (is_read, lba, length) numpy arrays.

    Delegates to :meth:`~repro.trace.trace.Trace.as_arrays`, which caches
    the decomposition on the trace; treat the arrays as read-only.
    """
    return trace.as_arrays()


def nols_sim_stats(trace: Trace):
    """Full :class:`~repro.core.outcomes.SimStats` of the NoLS replay.

    Vectorized equivalent of ``replay(trace, InPlaceTranslator()).stats``
    (exact-match tested by the differential suite); use this instead of
    :func:`nols_seek_counts` when the complete counter set is wanted.
    """
    from repro.core.batch import batch_replay
    from repro.core.config import NOLS

    return batch_replay(trace, NOLS).stats


def nols_seek_counts(trace: Trace) -> Tuple[int, int]:
    """(read_seeks, write_seeks) of the conventional in-place replay.

    Vectorized restatement of the §II definition: op *i* seeks iff its LBA
    differs from op *i-1*'s end; the first op never seeks.  Agrees exactly
    with replaying through :class:`InPlaceTranslator` (property-tested).
    """
    if len(trace) == 0:
        return 0, 0
    is_read, lba, length = trace_arrays(trace)
    prev_end = lba[:-1] + length[:-1]
    seeks = lba[1:] != prev_end
    read_seeks = int(np.count_nonzero(seeks & is_read[1:]))
    write_seeks = int(np.count_nonzero(seeks & ~is_read[1:]))
    return read_seeks, write_seeks


def nols_seek_distances(trace: Trace) -> np.ndarray:
    """Signed distances of the baseline replay's seeks, in op order."""
    if len(trace) < 2:
        return np.empty(0, dtype=np.int64)
    _, lba, length = trace_arrays(trace)
    deltas = lba[1:] - (lba[:-1] + length[:-1])
    return deltas[deltas != 0]


def misorder_rate_fast(trace: Trace, horizon_kib: float = 256.0) -> float:
    """Vectorized Fig. 8 mis-ordered-write rate.

    For each write *i*, scans the following writes until the cumulative
    written volume passes the horizon, looking for one that ends exactly
    at *i*'s LBA.  Fully vectorized: the per-write window end comes from
    one batched searchsorted over the volume prefix sums, and the
    "does any window write end at my LBA" membership test becomes a
    next-occurrence query — write ends are encoded as sorted
    ``value_code * (n+1) + position`` keys, so a second batched
    searchsorted finds, per write, the first later write ending at its
    LBA, which is then compared against the window bound.  Agrees exactly
    with :func:`repro.analysis.misorder.misorder_rate`.
    """
    if horizon_kib <= 0:
        raise ValueError(f"horizon_kib must be > 0, got {horizon_kib}")
    is_read, all_lba, all_length = trace_arrays(trace)
    write_mask = ~is_read
    lba = all_lba[write_mask]
    length = all_length[write_mask]
    n = int(lba.size)
    if n == 0:
        return 0.0
    ends = lba + length
    horizon = kib_to_sectors(horizon_kib)
    # volume[i] = sectors written by writes 0..i-1; write i's window is
    # writes j in (i, k[i]) where the cumulative volume of writes
    # i+1..j-1 stays below the horizon.
    volume = np.concatenate(([0], np.cumsum(length)))
    k = np.searchsorted(volume, volume[1:] + horizon, side="left")
    # Dense value codes shared by ends and lba so equality of sector
    # addresses becomes equality of codes.
    codes = np.unique(np.concatenate([ends, lba]), return_inverse=True)[1]
    ends_code = codes[:n].astype(np.int64)
    lba_code = codes[n:].astype(np.int64)
    base = np.int64(n + 1)
    keys = np.sort(ends_code * base + np.arange(n, dtype=np.int64))
    keys = np.concatenate([keys, [np.iinfo(np.int64).max]])
    # Smallest key >= (lba_code[i], i+1) is the first write j > i with
    # ends[j] == lba[i]; write i is mis-ordered iff that j lands inside
    # the window, i.e. the key stays below (lba_code[i], k[i]).  A key
    # with a different (larger) code overshoots the bound because
    # k[i] <= n < base.
    queries = lba_code * base + np.arange(1, n + 1, dtype=np.int64)
    first_match = keys[np.searchsorted(keys[:-1], queries, side="left")]
    flagged = int(np.count_nonzero(first_match < lba_code * base + k))
    return flagged / n


def _empirical_cdf_points(values: np.ndarray) -> List[Tuple[float, float]]:
    """Vectorized :func:`repro.util.stats.empirical_cdf` over a numpy array.

    Duplicates collapse via ``np.unique``; the cumulative fractions are
    Python ``int / int`` divisions, bit-identical to the reference's
    ``j / n``.
    """
    if values.size == 0:
        return []
    uniques, counts = np.unique(values, return_counts=True)
    n = int(values.size)
    return [
        (float(value), cumulative / n)
        for value, cumulative in zip(
            uniques.tolist(), np.cumsum(counts).tolist()
        )
    ]


def fragment_cdf_fast(read_fragments: Sequence[int]) -> List[Tuple[float, float]]:
    """Vectorized Fig. 5 fragment-count CDF; agrees exactly with
    :func:`repro.analysis.fragmentation.fragment_cdf`."""
    fragments = np.asarray(read_fragments, dtype=np.int64)
    return _empirical_cdf_points(fragments[fragments > 1])


def fragment_concentration_fast(
    read_fragments: Sequence[int],
) -> List[Tuple[float, float]]:
    """Vectorized Fig. 5 concentration curve; agrees exactly with
    :func:`repro.analysis.fragmentation.fragment_concentration`."""
    fragments = np.asarray(read_fragments, dtype=np.int64)
    descending = np.sort(fragments[fragments > 1])[::-1]
    n = int(descending.size)
    if n == 0:
        return []
    cumulative = np.cumsum(descending).tolist()
    total = cumulative[-1]
    return [
        (rank / n, running / total)
        for rank, running in enumerate(cumulative, start=1)
    ]


def fraction_of_fragments_in_top_reads_fast(
    read_fragments: Sequence[int],
    top_fraction: float = 0.2,
) -> float:
    """Vectorized top-reads fragment share; agrees exactly with
    :func:`repro.analysis.fragmentation.fraction_of_fragments_in_top_reads`."""
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    fragments = np.asarray(read_fragments, dtype=np.int64)
    descending = np.sort(fragments[fragments > 1])[::-1]
    n = int(descending.size)
    if n == 0:
        return 0.0
    # The reference walks (rank/n, running/total) points until
    # rank/n >= top_fraction; reproduce its float comparison verbatim.
    ranks = np.arange(1, n + 1, dtype=np.int64) / n
    index = int(np.searchsorted(ranks, top_fraction, side="left"))
    cumulative = np.cumsum(descending)
    total = int(cumulative[-1])
    return int(cumulative[index]) / total


def distance_cdf_fast(
    distances: Sequence[int],
    window_gib: float = 2.0,
) -> List[Tuple[float, float]]:
    """Vectorized Fig. 4 clipped distance CDF; agrees exactly with
    :func:`repro.analysis.distances.distance_cdf`."""
    if window_gib <= 0:
        raise ValueError(f"window_gib must be > 0, got {window_gib}")
    values = np.asarray(distances, dtype=np.int64)
    limit = gib_to_sectors(window_gib)
    return _empirical_cdf_points(values[(values >= -limit) & (values <= limit)])


def fraction_within_fast(distances: Sequence[int], window_gib: float) -> float:
    """Vectorized in-window distance fraction; agrees exactly with
    :func:`repro.analysis.distances.fraction_within`."""
    values = np.asarray(distances, dtype=np.int64)
    n = int(values.size)
    if n == 0:
        return 0.0
    if window_gib <= 0:
        raise ValueError(f"window_gib must be > 0, got {window_gib}")
    limit = gib_to_sectors(window_gib)
    within = int(np.count_nonzero((values >= -limit) & (values <= limit)))
    return within / n


def nols_windowed_long_seeks(
    trace: Trace,
    window_ops: int = 1000,
    min_seek_kib: float = 500.0,
) -> List[int]:
    """Per-window long-seek counts of the NoLS replay (Fig. 3 baseline side).

    Vectorized equivalent of replaying through
    :class:`~repro.core.translators.InPlaceTranslator` with a
    :class:`~repro.analysis.temporal.WindowedSeekRecorder` and taking its
    ``series()`` — exact-match tested by the differential suite.
    """
    if window_ops <= 0:
        raise ValueError(f"window_ops must be > 0, got {window_ops}")
    if min_seek_kib < 0:
        raise ValueError(f"min_seek_kib must be >= 0, got {min_seek_kib}")
    n = len(trace)
    if n == 0:
        return []
    _, lba, length = trace_arrays(trace)
    threshold = kib_to_sectors(min_seek_kib)
    deltas = lba[1:] - (lba[:-1] + length[:-1])
    long_seek = (deltas != 0) & (np.abs(deltas) >= threshold)
    # Op i (1-based here; op 0 never seeks) falls in window i // window_ops;
    # the recorder extends its series through the last op's window even
    # when the tail windows are all zero.
    windows = np.arange(1, n, dtype=np.int64) // window_ops
    counts = np.bincount(
        windows[long_seek], minlength=(n - 1) // window_ops + 1
    )
    return counts.tolist()


def popularity_curve_fast(fragment_stats: Sequence[Tuple[int, int]]):
    """Build the Fig. 10 :class:`~repro.analysis.popularity.PopularityCurve`
    from ``(access_count, size_sectors)`` pairs, vectorized.

    Agrees exactly with
    :meth:`~repro.analysis.popularity.FragmentPopularityRecorder.curve`
    (stable descending sort preserves the reference's tie ordering; the
    MiB conversion is the same ``sectors * 512 / 2**20`` arithmetic).
    """
    from repro.analysis.popularity import PopularityCurve

    if not len(fragment_stats):
        return PopularityCurve(access_counts=[], cumulative_mib=[])
    pairs = np.asarray(fragment_stats, dtype=np.int64).reshape(-1, 2)
    order = np.argsort(-pairs[:, 0], kind="stable")
    counts = pairs[order, 0]
    sizes = pairs[order, 1]
    cumulative_mib = np.cumsum(sizes) * SECTOR_BYTES / BYTES_PER_MIB
    return PopularityCurve(
        access_counts=counts.tolist(), cumulative_mib=cumulative_mib.tolist()
    )
