"""Vectorized (numpy) fast paths for trace-level analyses.

The reference implementations in this package are plain Python and easy
to audit; replaying multi-million-op traces (e.g. the real MSR files)
makes the O(n) Python loops noticeable.  This module provides numpy
equivalents for the analyses that need no translation state — baseline
(NoLS) seek counting and seek distances — with tests asserting exact
agreement with the reference path.

The stateful log-structured replay has its own vectorized kernel in
:mod:`repro.core.batch` (chunked sweeps over the extent map with
vectorized seek classification); :func:`nols_sim_stats` below exposes the
batch NoLS kernel at analysis level for symmetry.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.trace.record import OpType
from repro.trace.trace import Trace
from repro.util.units import kib_to_sectors


def trace_arrays(trace: Trace) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose a trace into (is_read, lba, length) numpy arrays.

    Delegates to :meth:`~repro.trace.trace.Trace.as_arrays`, which caches
    the decomposition on the trace; treat the arrays as read-only.
    """
    return trace.as_arrays()


def nols_sim_stats(trace: Trace):
    """Full :class:`~repro.core.outcomes.SimStats` of the NoLS replay.

    Vectorized equivalent of ``replay(trace, InPlaceTranslator()).stats``
    (exact-match tested by the differential suite); use this instead of
    :func:`nols_seek_counts` when the complete counter set is wanted.
    """
    from repro.core.batch import batch_replay
    from repro.core.config import NOLS

    return batch_replay(trace, NOLS).stats


def nols_seek_counts(trace: Trace) -> Tuple[int, int]:
    """(read_seeks, write_seeks) of the conventional in-place replay.

    Vectorized restatement of the §II definition: op *i* seeks iff its LBA
    differs from op *i-1*'s end; the first op never seeks.  Agrees exactly
    with replaying through :class:`InPlaceTranslator` (property-tested).
    """
    if len(trace) == 0:
        return 0, 0
    is_read, lba, length = trace_arrays(trace)
    prev_end = lba[:-1] + length[:-1]
    seeks = lba[1:] != prev_end
    read_seeks = int(np.count_nonzero(seeks & is_read[1:]))
    write_seeks = int(np.count_nonzero(seeks & ~is_read[1:]))
    return read_seeks, write_seeks


def nols_seek_distances(trace: Trace) -> np.ndarray:
    """Signed distances of the baseline replay's seeks, in op order."""
    if len(trace) < 2:
        return np.empty(0, dtype=np.int64)
    _, lba, length = trace_arrays(trace)
    deltas = lba[1:] - (lba[:-1] + length[:-1])
    return deltas[deltas != 0]


def misorder_rate_fast(trace: Trace, horizon_kib: float = 256.0) -> float:
    """Vectorized Fig. 8 mis-ordered-write rate.

    For each write *i*, scans the following writes until the cumulative
    written volume passes the horizon, looking for one that ends exactly
    at *i*'s LBA.  Uses prefix sums so the per-write window is found in
    O(log n); the inner membership test is a searchsorted over the window
    slice.  Agrees exactly with :func:`repro.analysis.misorder.misorder_rate`.
    """
    if horizon_kib <= 0:
        raise ValueError(f"horizon_kib must be > 0, got {horizon_kib}")
    writes = [r for r in trace if r.op is OpType.WRITE]
    n = len(writes)
    if n == 0:
        return 0.0
    lba = np.fromiter((w.lba for w in writes), dtype=np.int64, count=n)
    length = np.fromiter((w.length for w in writes), dtype=np.int64, count=n)
    ends = lba + length
    horizon = kib_to_sectors(horizon_kib)
    # volume[i] = sectors written by writes 0..i-1
    volume = np.concatenate(([0], np.cumsum(length)))
    flagged = 0
    # For write i the window is writes j in (i, k) where the cumulative
    # volume of writes i+1..j-1 stays below the horizon.
    for i in range(n):
        # find largest k with volume[k] - volume[i+1] < horizon
        k = int(np.searchsorted(volume, volume[i + 1] + horizon, side="left"))
        window = ends[i + 1 : max(i + 1, k)]
        if window.size and np.any(window == lba[i]):
            flagged += 1
    return flagged / n
