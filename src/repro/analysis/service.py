"""Service-time estimation for translated replays.

Bridges the seek-counting evaluation (the paper's metric) and the §III
cost discussion: replay a trace under any configuration, weigh its seek
log with a cost model, and add media transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import TechniqueConfig, build_translator
from repro.core.recorders import SeekLogRecorder
from repro.core.simulator import Simulator
from repro.disk.seek_time import SeekTimeModel
from repro.trace.trace import Trace


@dataclass(frozen=True)
class ServiceTimeEstimate:
    """Estimated time decomposition of one replay."""

    seeks: int
    seek_ms: float
    transfer_ms: float

    @property
    def total_ms(self) -> float:
        return self.seek_ms + self.transfer_ms

    @property
    def seek_share(self) -> float:
        """Fraction of estimated service time spent repositioning."""
        total = self.total_ms
        return self.seek_ms / total if total else 0.0


def estimate_service_time(
    trace: Trace,
    config: TechniqueConfig,
    model: Optional[SeekTimeModel] = None,
) -> ServiceTimeEstimate:
    """Replay ``trace`` under ``config`` and estimate its service time.

    Transfer time covers host-visible bytes (all read and written sectors
    — cache and buffer hits still cross the interface) plus defrag
    rewrites; seek time weighs every recorded seek with ``model``.  Since
    hits seek nowhere, techniques that tie on transfer differentiate on
    the seek term.
    """
    model = model or SeekTimeModel()
    recorder = SeekLogRecorder()
    translator = build_translator(trace, config)
    stats = Simulator([recorder]).run(trace, translator).stats
    moved_sectors = (
        stats.sectors_read + stats.sectors_written + stats.defrag_rewritten_sectors
    )
    return ServiceTimeEstimate(
        seeks=len(recorder.records),
        seek_ms=model.total_ms(recorder.distances),
        transfer_ms=model.geometry.transfer_ms(moved_sectors),
    )
