"""Temporal seek behaviour (paper Fig. 3).

Fig. 3 plots, per unit of operation time, the *difference* in long-seek
counts between the log-structured replay and the original trace
(log-structured minus original), ignoring seeks shorter than ±500 KB whose
behaviour is much noisier.  The strong phase/diurnal structure it reveals
motivates why averaged SAF understates worst-case behaviour.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.outcomes import IOOutcome
from repro.util.units import kib_to_sectors


class WindowedSeekRecorder:
    """Count long seeks per fixed-size window of operation index.

    Args:
        window_ops: Operations per window (the unit of "time" on the Fig. 3
            x-axis, which the paper plots as operation number).
        min_seek_kib: Ignore seeks with \\|distance\\| below this (paper: 500 KB).
    """

    def __init__(self, window_ops: int = 1000, min_seek_kib: float = 500.0) -> None:
        if window_ops <= 0:
            raise ValueError(f"window_ops must be > 0, got {window_ops}")
        if min_seek_kib < 0:
            raise ValueError(f"min_seek_kib must be >= 0, got {min_seek_kib}")
        self._window_ops = window_ops
        self._threshold = kib_to_sectors(min_seek_kib)
        self._counts: Dict[int, int] = {}
        self._max_window = -1

    @property
    def window_ops(self) -> int:
        return self._window_ops

    def observe(self, op_index: int, outcome: IOOutcome) -> None:
        window = op_index // self._window_ops
        if window > self._max_window:
            self._max_window = window
        long_seeks = sum(
            1
            for access in outcome.accesses
            if access.seek and abs(access.distance) >= self._threshold
        )
        if long_seeks:
            self._counts[window] = self._counts.get(window, 0) + long_seeks

    def series(self) -> List[int]:
        """Dense per-window long-seek counts (index = window number)."""
        return [self._counts.get(w, 0) for w in range(self._max_window + 1)]


def long_seek_difference_series(
    translated: List[int], baseline: List[int]
) -> List[int]:
    """Elementwise ``translated - baseline`` with zero-padding.

    The series-level core of :func:`long_seek_difference`, shared with the
    vectorized Fig. 3 path (which produces the two series via
    :func:`~repro.core.stream.stream_windowed_long_seeks` and
    :func:`~repro.analysis.fast.nols_windowed_long_seeks`).
    """
    a = list(translated)
    b = list(baseline)
    n = max(len(a), len(b))
    a += [0] * (n - len(a))
    b += [0] * (n - len(b))
    return [x - y for x, y in zip(a, b)]


def long_seek_difference(
    translated: WindowedSeekRecorder,
    baseline: WindowedSeekRecorder,
) -> List[int]:
    """Fig. 3 series: per-window long seeks, translated minus baseline.

    Both recorders must have observed the same trace with the same window
    size.  The shorter series is zero-padded (a replay can end mid-window).
    """
    if translated.window_ops != baseline.window_ops:
        raise ValueError(
            f"window sizes differ: {translated.window_ops} vs {baseline.window_ops}"
        )
    return long_seek_difference_series(translated.series(), baseline.series())
