"""Incrementally-updated analysis summaries for streaming replay.

The batch analyses in :mod:`repro.analysis.fast` take whole arrays — a
trace's columns, or a replay's full seek-distance log.  A streaming
session (:mod:`repro.service`) sees its op stream in batches, never holds
it whole, and must answer live queries (current SAF, fragment CDF, seek
budget) after any batch.  This module provides the bounded, resumable
summaries those queries read from:

* :class:`IncrementalNolsBaseline` — the §II NoLS seek counts over the
  stream so far, updated vectorized per batch with the head position
  carried across batches.  After any prefix it equals
  :func:`repro.analysis.fast.nols_seek_counts` over that prefix exactly,
  which makes the live SAF (translated seeks / these counts) exact.
* :class:`IncrementalDistances` — a distance histogram plus a seek-time
  total, updated from :meth:`IncrementalBatchReplay.drain_distances
  <repro.core.batch.IncrementalBatchReplay.drain_distances>` output.
  Memory is bounded by the number of *distinct* distances, not the seek
  count, so a session can run indefinitely.
* :func:`fragment_cdf_from_hist` — the Fig. 5 fragment CDF from the
  engine's per-read fragment histogram, bit-identical to
  :func:`repro.analysis.fast.fragment_cdf_fast` over the equivalent
  per-read sequence.

Every summary serializes to a JSON-friendly ``state_dict`` and restores
bit-identically, so session checkpoints capture analysis state alongside
kernel state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.disk.seek_time import SeekTimeModel
from repro.util.units import gib_to_sectors


def fragment_cdf_from_hist(hist: Dict[int, int]) -> List[Tuple[float, float]]:
    """Fig. 5 fragment-count CDF from a ``{fragment_count: reads}`` histogram.

    Bit-identical to :func:`repro.analysis.fast.fragment_cdf_fast` applied
    to any per-read sequence with this histogram: that path collapses
    duplicates through ``np.unique`` and divides cumulative counts by the
    total with Python ``int / int``, which is exactly what iterating the
    sorted histogram reproduces.  Counts of 1 (unfragmented reads) are
    excluded, per the figure.
    """
    filtered = sorted(
        (int(fragments), int(reads))
        for fragments, reads in hist.items()
        if fragments > 1
    )
    n = sum(reads for _, reads in filtered)
    points: List[Tuple[float, float]] = []
    cumulative = 0
    for fragments, reads in filtered:
        cumulative += reads
        points.append((float(fragments), cumulative / n))
    return points


class IncrementalNolsBaseline:
    """Streaming §II seek counts of the conventional in-place replay.

    Feed the same op batches the translated replay consumes; after any
    prefix, ``(read_seeks, write_seeks)`` equals
    :func:`repro.analysis.fast.nols_seek_counts` over that prefix.  This
    is the denominator of the live SAF — no translator, extent map, or
    per-op Python loop, just one vectorized pass per batch with the head
    position carried in between (so batch boundaries are invisible).
    """

    def __init__(self) -> None:
        self.read_seeks = 0
        self.write_seeks = 0
        self.ops = 0
        self._head: Optional[int] = None

    def feed_arrays(
        self, is_read: np.ndarray, lba: np.ndarray, length: np.ndarray
    ) -> None:
        n = len(lba)
        if n == 0:
            return
        prev_end = np.empty(n, dtype=np.int64)
        # First op of the stream never seeks (§II: no predecessor).
        prev_end[0] = lba[0] if self._head is None else self._head
        np.add(lba[:-1], length[:-1], out=prev_end[1:])
        seeks = lba != prev_end
        read_seeks = int(np.count_nonzero(seeks & is_read))
        self.read_seeks += read_seeks
        self.write_seeks += int(np.count_nonzero(seeks)) - read_seeks
        self.ops += n
        self._head = int(lba[-1] + length[-1])

    def counts(self) -> Tuple[int, int]:
        return self.read_seeks, self.write_seeks

    def state_dict(self) -> dict:
        return {
            "read_seeks": self.read_seeks,
            "write_seeks": self.write_seeks,
            "ops": self.ops,
            "head": self._head,
        }

    def load_state(self, state: dict) -> None:
        self.read_seeks = int(state["read_seeks"])
        self.write_seeks = int(state["write_seeks"])
        self.ops = int(state["ops"])
        head = state["head"]
        self._head = None if head is None else int(head)


class IncrementalDistances:
    """Bounded streaming summary of a replay's seek-distance log.

    Accumulates a ``{signed_distance: count}`` histogram from the arrays
    :meth:`~repro.core.batch.IncrementalBatchReplay.drain_distances`
    yields, split by seek direction.  Supports the live queries the batch
    analyses answer from the full log:

    * :meth:`total_seek_ms` — the session's seek budget, summed over the
      histogram in sorted-distance order (mathematically equal to
      ``SeekTimeModel().total_ms(log)``; float summation order differs
      from the in-log-order reference, but is deterministic and
      recovery-stable, which is what the service's byte-identical
      recovery check needs).
    * :meth:`fraction_within` — exact: integer counts, ``int / int``.
    * :meth:`cdf` — exact per :func:`fragment_cdf_from_hist`'s argument
      (``np.unique`` + cumulative ``int / int`` collapses to histogram
      iteration).
    """

    def __init__(self, model: Optional[SeekTimeModel] = None) -> None:
        self._model = SeekTimeModel() if model is None else model
        self._read_hist: Dict[int, int] = {}
        self._write_hist: Dict[int, int] = {}

    @property
    def seeks(self) -> int:
        return sum(self._read_hist.values()) + sum(self._write_hist.values())

    @property
    def read_seeks(self) -> int:
        return sum(self._read_hist.values())

    def feed(self, distances: np.ndarray, distance_is_read: np.ndarray) -> None:
        """Fold one drained ``(distances, distance_is_read)`` pair in."""
        if len(distances) == 0:
            return
        for hist, mask in (
            (self._read_hist, distance_is_read),
            (self._write_hist, ~distance_is_read),
        ):
            values, counts = np.unique(distances[mask], return_counts=True)
            for value, count in zip(values.tolist(), counts.tolist()):
                hist[value] = hist.get(value, 0) + count

    def _merged(self) -> Dict[int, int]:
        merged = dict(self._read_hist)
        for value, count in self._write_hist.items():
            merged[value] = merged.get(value, 0) + count
        return merged

    def total_seek_ms(self, read_only: bool = False) -> float:
        """Aggregate seek time (the session's running seek budget)."""
        hist = self._read_hist if read_only else self._merged()
        return sum(
            self._model.seek_ms(distance) * count
            for distance, count in sorted(hist.items())
        )

    def fraction_within(self, window_gib: float, read_only: bool = True) -> float:
        """Fraction of seeks within ±``window_gib`` (Fig. 4 headline).

        Agrees exactly with :func:`repro.analysis.fast.fraction_within_fast`
        over the corresponding distance log.
        """
        if window_gib <= 0:
            raise ValueError(f"window_gib must be > 0, got {window_gib}")
        hist = self._read_hist if read_only else self._merged()
        n = sum(hist.values())
        if n == 0:
            return 0.0
        limit = gib_to_sectors(window_gib)
        within = sum(
            count for distance, count in hist.items() if -limit <= distance <= limit
        )
        return within / n

    def cdf(
        self, window_gib: float = 2.0, read_only: bool = True
    ) -> List[Tuple[float, float]]:
        """Clipped distance CDF (Fig. 4); agrees exactly with
        :func:`repro.analysis.fast.distance_cdf_fast` over the
        corresponding distance log."""
        if window_gib <= 0:
            raise ValueError(f"window_gib must be > 0, got {window_gib}")
        hist = self._read_hist if read_only else self._merged()
        limit = gib_to_sectors(window_gib)
        clipped = sorted(
            (distance, count)
            for distance, count in hist.items()
            if -limit <= distance <= limit
        )
        n = sum(count for _, count in clipped)
        points: List[Tuple[float, float]] = []
        cumulative = 0
        for distance, count in clipped:
            cumulative += count
            points.append((float(distance), cumulative / n))
        return points

    def state_dict(self) -> dict:
        return {
            "read_hist": sorted(self._read_hist.items()),
            "write_hist": sorted(self._write_hist.items()),
        }

    def load_state(self, state: dict) -> None:
        self._read_hist = {int(d): int(c) for d, c in state["read_hist"]}
        self._write_hist = {int(d): int(c) for d, c in state["write_hist"]}
