"""Fragment access popularity and cache sizing (paper §IV-C, Fig. 10).

Fig. 10 sorts the fragments touched by fragmented reads from most- to
least-accessed and overlays the cumulative RAM needed to cache them,
showing that the fragments responsible for the bulk of accesses total only
a few tens of MB — the empirical basis for translation-aware selective
caching with a small (64 MB) cache.

A *fragment* here is one physically contiguous piece of a fragmented read,
identified by its physical start sector.  Log PBAs are never rewritten
under the infinite-disk model, so the physical start is a stable identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.outcomes import IOOutcome
from repro.util.units import sectors_to_mib


@dataclass(frozen=True)
class PopularityCurve:
    """Fig. 10 data: fragments sorted by access count, most popular first.

    Attributes:
        access_counts: Per-fragment read access counts, descending.
        cumulative_mib: Running RAM total to cache fragments up to each rank.
    """

    access_counts: List[int]
    cumulative_mib: List[float]

    def __post_init__(self) -> None:
        # Precompute the cumulative access counts once: total_accesses and
        # cache_mib_for_access_share are called repeatedly per exhibit
        # (several share levels over the same curve), and re-summing a
        # million-fragment list in Python each time dominated Fig. 10.
        import numpy as np

        cumulative = np.cumsum(
            np.asarray(self.access_counts, dtype=np.int64)
        )
        cumulative.setflags(write=False)
        object.__setattr__(self, "_cumulative_accesses", cumulative)

    @property
    def fragment_count(self) -> int:
        return len(self.access_counts)

    @property
    def total_accesses(self) -> int:
        cumulative = self._cumulative_accesses
        return int(cumulative[-1]) if len(cumulative) else 0

    def cache_mib_for_access_share(self, share: float) -> float:
        """RAM needed to hold the top fragments covering ``share`` of accesses.

        This is the paper's headline Fig. 10 question: how big a cache
        captures e.g. 90 % of fragment accesses?  A ``searchsorted`` over
        the precomputed cumulative counts finds the rank in O(log n).
        """
        import numpy as np

        if not 0.0 < share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {share}")
        total = self.total_accesses
        if total == 0:
            return 0.0
        target = share * total
        # First rank whose cumulative count reaches the target, confined to
        # the ranks that carry a cache size (the lists are equal-length for
        # every well-formed curve; min() mirrors the reference zip()).
        limit = min(len(self.access_counts), len(self.cumulative_mib))
        index = int(
            np.searchsorted(
                self._cumulative_accesses[:limit], target, side="left"
            )
        )
        if index < limit:
            return self.cumulative_mib[index]
        return self.cumulative_mib[-1] if self.cumulative_mib else 0.0


class FragmentPopularityRecorder:
    """Accumulate per-fragment access counts during a replay.

    Only fragments of *fragmented* reads are tracked — unfragmented reads
    neither suffer fragmentation seeks nor would be admitted by selective
    caching.  Defrag rewrites are ignored (they are writes).
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._sizes: Dict[int, int] = {}

    def observe(self, op_index: int, outcome: IOOutcome) -> None:
        if not outcome.request.is_read or not outcome.fragmented:
            return
        for access in outcome.accesses:
            if access.defrag:
                continue
            key = access.pba
            self._counts[key] = self._counts.get(key, 0) + 1
            # A later read may touch a longer stretch of the same physical
            # run; keep the largest observed size for the cache estimate.
            if access.length > self._sizes.get(key, 0):
                self._sizes[key] = access.length

    @property
    def distinct_fragments(self) -> int:
        return len(self._counts)

    def fragment_stats(self) -> List[Tuple[int, int]]:
        """``(access_count, size_sectors)`` per fragment, insertion order.

        The raw material of :meth:`curve`, exposed so the vectorized
        builder (:func:`repro.analysis.fast.popularity_curve_fast`) can
        consume it; the iteration order is the tie-break order of the
        reference sort.
        """
        return [
            (count, self._sizes[pba]) for pba, count in self._counts.items()
        ]

    def curve(self) -> PopularityCurve:
        """Build the Fig. 10 sorted-popularity curve."""
        ranked: List[Tuple[int, int]] = sorted(
            ((count, self._sizes[pba]) for pba, count in self._counts.items()),
            key=lambda item: item[0],
            reverse=True,
        )
        counts = [count for count, _ in ranked]
        cumulative: List[float] = []
        running_sectors = 0
        for _, sectors in ranked:
            running_sectors += sectors
            cumulative.append(sectors_to_mib(running_sectors))
        return PopularityCurve(access_counts=counts, cumulative_mib=cumulative)
