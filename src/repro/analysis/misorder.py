"""Mis-ordered write detection (paper §IV-B, Fig. 8).

    "we measure mis-ordered writes, writes with LBAs sequentially following
    a write in the near future, ('near future' being defined as within the
    next 256 KB of write operations)."

A write *w* issued at position *i* in the write stream is mis-ordered when
some later write *v* — within the next 256 KB of written volume — ends
exactly where *w* begins (``v.end == w.lba``): had the two been swapped,
they would have formed an ascending sequential run.  Under log-structured
translation such pairs land in descending physical order and cost a missed
rotation on ordered read-back; Fig. 8 finds rates up to 1-in-25 (w106) and
1-in-20 (src2_2).
"""

from __future__ import annotations

from typing import List

from repro.trace.trace import Trace
from repro.util.units import kib_to_sectors


def misordered_writes(trace: Trace, horizon_kib: float = 256.0) -> List[int]:
    """Return write-stream indices of mis-ordered writes.

    Args:
        trace: Full trace; only its writes are examined (indices returned
            are positions in the write-only substream).
        horizon_kib: "Near future" horizon as written volume (paper: 256 KB).
    """
    if horizon_kib <= 0:
        raise ValueError(f"horizon_kib must be > 0, got {horizon_kib}")
    horizon = kib_to_sectors(horizon_kib)
    writes = [r for r in trace if r.is_write]
    flagged: List[int] = []
    for i, w in enumerate(writes):
        volume = 0
        j = i + 1
        while j < len(writes) and volume < horizon:
            v = writes[j]
            if v.end == w.lba:
                flagged.append(i)
                break
            volume += v.length
            j += 1
    return flagged


def misorder_rate(trace: Trace, horizon_kib: float = 256.0) -> float:
    """Fraction of writes that are mis-ordered (Fig. 8's y-axis)."""
    write_count = trace.write_count
    if write_count == 0:
        return 0.0
    return len(misordered_writes(trace, horizon_kib)) / write_count
