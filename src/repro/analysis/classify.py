"""Workload taxonomy (paper §I/§III).

The paper sorts workloads into three groups by their response to
log-structured translation: *log-friendly* (a net decrease in seeks),
*log-sensitive* (amplifications of 10x or more in the extreme) and
*log-agnostic* (little change).  This module derives the classification
from replay results, and extracts the trace-level features that predict
it — write intensity (§V's explanation for the MSR group), sequential-read
share (§III's amplification mechanism) and overwrite ratio (what creates
fragments at all).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.outcomes import SimStats
from repro.trace.trace import Trace


class LogSensitivity(enum.Enum):
    """The paper's three-way workload classification."""

    LOG_FRIENDLY = "log-friendly"
    LOG_AGNOSTIC = "log-agnostic"
    LOG_SENSITIVE = "log-sensitive"


def classify_saf(
    total_saf: float,
    friendly_below: float = 0.9,
    sensitive_above: float = 1.1,
) -> LogSensitivity:
    """Classify a workload by its total seek amplification factor."""
    if total_saf < 0:
        raise ValueError(f"total_saf must be >= 0, got {total_saf}")
    if friendly_below >= sensitive_above:
        raise ValueError("friendly_below must be < sensitive_above")
    if total_saf <= friendly_below:
        return LogSensitivity.LOG_FRIENDLY
    if total_saf >= sensitive_above:
        return LogSensitivity.LOG_SENSITIVE
    return LogSensitivity.LOG_AGNOSTIC


def classify_stats(translated: SimStats, baseline: SimStats) -> LogSensitivity:
    """Classify from two replays (translated vs conventional baseline)."""
    from repro.core.metrics import seek_amplification

    return classify_saf(seek_amplification(translated, baseline).total)


@dataclass(frozen=True)
class WorkloadCharacter:
    """Trace-level features that predict log sensitivity.

    Attributes:
        write_intensity: Writes per read (high → log-friendly, §V).
        sequential_read_share: Fraction of reads starting exactly where
            the previous read ended (high → scan-heavy → log-sensitive,
            §III).
        overwrite_ratio: Fraction of written sectors that overwrite
            sectors already written in the trace (what fragments the
            logical space).
        mixed_read_share: Fraction of reads that straddle written and
            never-written space — a trace-level proxy for reads that will
            cross physical fragment boundaries under log translation.
        read_fraction: Reads / all ops.
    """

    write_intensity: float
    sequential_read_share: float
    overwrite_ratio: float
    mixed_read_share: float
    read_fraction: float

    def predicted_sensitivity(self) -> LogSensitivity:
        """Heuristic prediction from features alone (no replay).

        Write-dominant workloads benefit from sequential logging
        (§V: back-to-back writes are free); read workloads suffer when
        their reads are ordered scans over overwritten space or straddle
        fragment boundaries.  Validated against actual SAF classes in
        tests/integration.
        """
        if self.write_intensity >= 2.25:
            return LogSensitivity.LOG_FRIENDLY
        scan_pressure = self.sequential_read_share * min(
            1.0, self.overwrite_ratio * 4
        )
        pressure = max(scan_pressure, self.mixed_read_share)
        if self.read_fraction >= 0.4 and pressure >= 0.25:
            return LogSensitivity.LOG_SENSITIVE
        if pressure >= 0.45:
            return LogSensitivity.LOG_SENSITIVE
        return LogSensitivity.LOG_FRIENDLY


def characterize(trace: Trace) -> WorkloadCharacter:
    """Extract the predictive features from a trace in one pass."""
    reads = 0
    writes = 0
    sequential_reads = 0
    mixed_reads = 0
    overwritten = 0
    written_total = 0
    last_read_end = None
    written = set()  # 4 KiB blocks written so far
    for request in trace:
        first = request.lba // 8
        last = (request.end - 1) // 8
        if request.is_read:
            reads += 1
            if last_read_end is not None and request.lba == last_read_end:
                sequential_reads += 1
            last_read_end = request.end
            touches_written = any(
                block in written for block in range(first, last + 1)
            )
            touches_unwritten = any(
                block not in written for block in range(first, last + 1)
            )
            if touches_written and touches_unwritten:
                mixed_reads += 1
        else:
            writes += 1
            written_total += request.length
            for block in range(first, last + 1):
                if block in written:
                    overwritten += 8
                else:
                    written.add(block)
    return WorkloadCharacter(
        write_intensity=(writes / reads) if reads else float("inf"),
        sequential_read_share=(sequential_reads / reads) if reads else 0.0,
        overwrite_ratio=(overwritten / written_total) if written_total else 0.0,
        mixed_read_share=(mixed_reads / reads) if reads else 0.0,
        read_fraction=reads / max(1, reads + writes),
    )
