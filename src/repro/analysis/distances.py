"""Access-distance distributions (paper Fig. 4).

Fig. 4 compares CDFs of access distances under non-log-structured and
log-structured translation, restricted to a ±1–2 GB window around zero —
a range unaffected by where "unwritten" pre-trace data is assumed to live
(§III's placement-bias caveat).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.util.stats import empirical_cdf
from repro.util.units import gib_to_sectors


def clip_distances(
    distances: Sequence[int],
    window_gib: float = 2.0,
) -> List[int]:
    """Keep only distances within ±``window_gib`` of zero.

    The paper restricts the Fig. 4 CDFs to a narrow LBA-offset range so the
    arbitrary placement of pre-trace data cannot bias the comparison.
    """
    if window_gib <= 0:
        raise ValueError(f"window_gib must be > 0, got {window_gib}")
    limit = gib_to_sectors(window_gib)
    return [d for d in distances if -limit <= d <= limit]


def distance_cdf(
    distances: Sequence[int],
    window_gib: float = 2.0,
) -> List[Tuple[float, float]]:
    """CDF of seek distances clipped to ±``window_gib``, as (sectors, F) pairs."""
    return [(float(x), f) for x, f in empirical_cdf(clip_distances(distances, window_gib))]


def fraction_within(
    distances: Sequence[int],
    window_gib: float,
) -> float:
    """Fraction of all distances that fall within ±``window_gib``.

    The paper's Fig. 4 observation for the newer traces is that *less than
    half* of log-structured seeks fall inside the window that contains
    virtually all of the original trace's seeks.
    """
    if not distances:
        return 0.0
    return len(clip_distances(distances, window_gib)) / len(distances)
