"""Drive-managed SMR media-cache translation layer (paper §II baseline).

    "Existing translation layers for SMR have typically been very simple,
    logging updates to a reserved region of the disk (the media cache), and
    then merging them back to data zones, where they are stored in logical
    order ... As a result almost all data is stored in LBA order, resulting
    in little or no read seek amplification, but at the price of high
    cleaning overhead."

This module implements that baseline so the trade-off the paper motivates —
spatial order (low SAF) versus cleaning cost (high write amplification) —
can be measured rather than asserted.  Layout: a data region where logical
sector L lives at physical sector L, plus a reserved media-cache region
appended past the data region.  Host writes land in the media cache; when
it fills, a cleaning pass merges every dirty extent back to its home
location in LBA order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.disk.head import DiskHead
from repro.extentmap.extent_map import ExtentMap
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.util.units import mib_to_sectors


@dataclass
class MediaCacheStats:
    """Counters accumulated by :class:`MediaCacheSTL`."""

    read_seeks: int = 0
    write_seeks: int = 0
    cleaning_seeks: int = 0
    host_written_sectors: int = 0
    disk_written_sectors: int = 0
    host_read_sectors: int = 0
    cleanings: int = 0
    cleaned_sectors: int = 0
    seek_distances: List[int] = field(default_factory=list)

    @property
    def total_seeks(self) -> int:
        """All seeks including the cleaning traffic the host never sees."""
        return self.read_seeks + self.write_seeks + self.cleaning_seeks

    @property
    def write_amplification(self) -> float:
        """Total media writes per host write (1.0 = no amplification)."""
        if self.host_written_sectors == 0:
            return 1.0
        return self.disk_written_sectors / self.host_written_sectors


class MediaCacheSTL:
    """Simple drive-managed SMR translation layer.

    Args:
        data_sectors: Size of the in-LBA-order data region; host LBAs must
            fall inside it.
        cache_mib: Media-cache capacity in MiB (shipped drives reserve a few
            GiB; experiments use smaller values to exercise cleaning).
    """

    def __init__(self, data_sectors: int, cache_mib: float = 128.0) -> None:
        if data_sectors <= 0:
            raise ValueError(f"data_sectors must be > 0, got {data_sectors}")
        cache_sectors = mib_to_sectors(cache_mib)
        if cache_sectors <= 0:
            raise ValueError(f"cache_mib must be > 0, got {cache_mib}")
        self._data_sectors = data_sectors
        self._cache_start = data_sectors
        self._cache_end = data_sectors + cache_sectors
        self._cache_ptr = self._cache_start
        self._map = ExtentMap()
        self._head = DiskHead()
        self.stats = MediaCacheStats()

    @property
    def cache_sectors(self) -> int:
        return self._cache_end - self._cache_start

    @property
    def cache_used_sectors(self) -> int:
        return self._cache_ptr - self._cache_start

    def submit(self, request: IORequest) -> None:
        """Apply one host request to the device."""
        if request.end > self._data_sectors:
            raise ValueError(
                f"request end {request.end} outside data region "
                f"[0, {self._data_sectors})"
            )
        if request.is_write:
            self._do_write(request)
        else:
            self._do_read(request)

    def replay(self, trace: Trace) -> MediaCacheStats:
        """Replay a whole trace and return the accumulated stats."""
        for request in trace:
            self.submit(request)
        return self.stats

    # ------------------------------------------------------------------ #

    def _do_write(self, request: IORequest) -> None:
        if request.length > self.cache_sectors:
            raise ValueError(
                f"write of {request.length} sectors exceeds media cache "
                f"capacity {self.cache_sectors}"
            )
        if self._cache_ptr + request.length > self._cache_end:
            self._clean()
        event = self._head.access(self._cache_ptr, request.length)
        if event.seek:
            self.stats.write_seeks += 1
            self.stats.seek_distances.append(event.distance)
        self._map.map_range(request.lba, self._cache_ptr, request.length)
        self._cache_ptr += request.length
        self.stats.host_written_sectors += request.length
        self.stats.disk_written_sectors += request.length

    def _do_read(self, request: IORequest) -> None:
        self.stats.host_read_sectors += request.length
        for segment in self._map.lookup(request.lba, request.length):
            pba = segment.lba if segment.is_hole else segment.pba
            event = self._head.access(pba, segment.length)
            if event.seek:
                self.stats.read_seeks += 1
                self.stats.seek_distances.append(event.distance)

    def _clean(self) -> None:
        """Merge all cached extents back to their home LBAs, in LBA order.

        Each dirty extent costs a read from the cache region and a write to
        its home location; because the merge proceeds in LBA order the
        writes sweep forward, but the cache reads bounce — this is the
        "high cleaning overhead" the paper attributes to media-cache STLs.
        """
        extents = list(self._map)
        for extent in extents:
            read_evt = self._head.access(extent.pba, extent.length)
            if read_evt.seek:
                self.stats.cleaning_seeks += 1
                self.stats.seek_distances.append(read_evt.distance)
            write_evt = self._head.access(extent.lba, extent.length)
            if write_evt.seek:
                self.stats.cleaning_seeks += 1
                self.stats.seek_distances.append(write_evt.distance)
            self.stats.disk_written_sectors += extent.length
            self.stats.cleaned_sectors += extent.length
        self._map = ExtentMap()
        self._cache_ptr = self._cache_start
        self.stats.cleanings += 1
