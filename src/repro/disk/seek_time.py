"""Seek cost as a function of seek distance (§III of the paper).

The paper's evaluation counts seeks; its §III discussion grounds why they
matter:

* Very short forward seeks (100s of KB) cost only the rotational time of
  the skipped sectors (the head stays on or near the track).
* Short *backward* seeks are the expensive "missed rotation" case — reading
  physical N after N+1 costs nearly a full revolution (the phenomenon
  look-behind prefetching targets, §IV-B).
* Long seeks cost head movement (a few ms up to ~25 ms, growing with
  distance) plus about half a revolution of rotational delay.

:class:`SeekTimeModel` implements this piecewise model so seek logs can be
converted into estimated service-time overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.disk.geometry import DiskGeometry


@dataclass(frozen=True)
class SeekTimeModel:
    """Piecewise seek-time estimator.

    Attributes:
        geometry: Drive geometry supplying rotation and transfer rates.
        min_seek_ms: Head-movement time of a single-track seek.
        max_seek_ms: Head-movement time of a full-stroke seek.
        short_seek_tracks: Seeks spanning at most this many tracks are
            treated as "short" (rotational-only cost).
    """

    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    min_seek_ms: float = 1.0
    max_seek_ms: float = 25.0
    short_seek_tracks: int = 1

    def __post_init__(self) -> None:
        if self.min_seek_ms <= 0:
            raise ValueError(f"min_seek_ms must be > 0, got {self.min_seek_ms}")
        if self.max_seek_ms < self.min_seek_ms:
            raise ValueError("max_seek_ms must be >= min_seek_ms")
        if self.short_seek_tracks < 0:
            raise ValueError("short_seek_tracks must be >= 0")

    def seek_ms(self, distance_sectors: int) -> float:
        """Estimated time to reposition by ``distance_sectors`` (signed).

        Zero distance costs nothing; short forward skips cost the transfer
        time of the skipped sectors; short backward hops cost a missed
        rotation; long seeks cost square-root head travel plus half a
        rotation of expected latency.
        """
        if distance_sectors == 0:
            return 0.0
        tracks = self.geometry.tracks_spanned(distance_sectors)
        if tracks <= self.short_seek_tracks:
            if distance_sectors > 0:
                return self.geometry.transfer_ms(distance_sectors)
            # Missed rotation: wait almost a full revolution to "back up".
            return self.geometry.revolution_ms - self.geometry.transfer_ms(
                min(-distance_sectors, self.geometry.track_sectors)
            )
        # Long seek: head travel grows ~sqrt(distance) per classic seek
        # curves, plus an expected half rotation of latency.
        frac = min(1.0, tracks / self.geometry.tracks)
        head_ms = self.min_seek_ms + (self.max_seek_ms - self.min_seek_ms) * math.sqrt(frac)
        return head_ms + self.geometry.revolution_ms / 2.0

    def total_ms(self, distances: Iterable[int]) -> float:
        """Aggregate seek time over an iterable of signed distances."""
        return sum(self.seek_ms(d) for d in distances)

    def service_ms(self, distance_sectors: int, transfer_sectors: int) -> float:
        """Seek plus transfer time for one access."""
        if transfer_sectors < 0:
            raise ValueError(f"transfer_sectors must be >= 0, got {transfer_sectors}")
        return self.seek_ms(distance_sectors) + self.geometry.transfer_ms(transfer_sectors)
