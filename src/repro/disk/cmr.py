"""Conventional (update-in-place) disk with time estimation.

The seek-*count* baseline used for SAF lives in
:class:`repro.core.translators.InPlaceTranslator`; this class adds the
§III seek-time model on top of the same in-place semantics so examples and
ablations can report estimated service time, not just counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.head import DiskHead
from repro.disk.seek_time import SeekTimeModel
from repro.trace.record import IORequest
from repro.trace.trace import Trace


@dataclass
class ServiceTimeStats:
    """Aggregate estimated service time of a replay."""

    seeks: int = 0
    seek_ms: float = 0.0
    transfer_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.seek_ms + self.transfer_ms


class ConventionalDisk:
    """Update-in-place disk (PBA = LBA) with a seek-time estimator."""

    def __init__(self, time_model: SeekTimeModel = None) -> None:
        self._time_model = time_model or SeekTimeModel()
        self._head = DiskHead()
        self.stats = ServiceTimeStats()

    @property
    def time_model(self) -> SeekTimeModel:
        return self._time_model

    def submit(self, request: IORequest) -> float:
        """Serve one request in place; return its estimated service time (ms)."""
        event = self._head.access(request.lba, request.length)
        seek_ms = self._time_model.seek_ms(event.distance) if event.seek else 0.0
        transfer_ms = self._time_model.geometry.transfer_ms(request.length)
        if event.seek:
            self.stats.seeks += 1
        self.stats.seek_ms += seek_ms
        self.stats.transfer_ms += transfer_ms
        return seek_ms + transfer_ms

    def replay(self, trace: Trace) -> ServiceTimeStats:
        """Replay a trace and return the accumulated service-time stats."""
        for request in trace:
            self.submit(request)
        return self.stats
