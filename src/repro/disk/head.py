"""Seek-counting disk head model — the paper's §II metric, verbatim.

    "We consider a seek to occur if an I/O operation starts at a sector
    other than that immediately following the previous I/O operation, and
    term it a read or write seek according to whether the second of the two
    operations is a read or write."

The head tracks the sector following the last access; every physical access
reports whether it seeked and by how far (signed distance).  The very first
access of a simulation has no predecessor and is, by convention, not a seek
— both translations share this convention so it cancels in the SAF ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AccessEvent:
    """Outcome of positioning the head for one physical access.

    Attributes:
        pba: First physical sector accessed.
        length: Sectors transferred.
        seek: True if the access did not start exactly at the head position.
        distance: Signed seek distance in sectors (0 when ``seek`` is False
            or when there was no previous access).
    """

    pba: int
    length: int
    seek: bool
    distance: int


class DiskHead:
    """Mutable head-position tracker shared by a device's access paths."""

    __slots__ = ("_position",)

    def __init__(self) -> None:
        self._position: Optional[int] = None

    @property
    def position(self) -> Optional[int]:
        """Sector immediately following the last access (None before any)."""
        return self._position

    def access(self, pba: int, length: int) -> AccessEvent:
        """Move the head to serve ``[pba, pba+length)`` and report the seek.

        >>> head = DiskHead()
        >>> head.access(100, 8).seek        # first access: free positioning
        False
        >>> head.access(108, 4).seek        # contiguous: no seek
        False
        >>> evt = head.access(50, 2)        # jump backwards: a seek
        >>> evt.seek, evt.distance
        (True, -62)
        """
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        if pba < 0:
            raise ValueError(f"pba must be >= 0, got {pba}")
        if self._position is None:
            event = AccessEvent(pba=pba, length=length, seek=False, distance=0)
        elif pba == self._position:
            event = AccessEvent(pba=pba, length=length, seek=False, distance=0)
        else:
            event = AccessEvent(
                pba=pba, length=length, seek=True, distance=pba - self._position
            )
        self._position = pba + length
        return event

    def peek_distance(self, pba: int) -> int:
        """Signed distance a seek to ``pba`` would cover (0 if none needed)."""
        if self._position is None or pba == self._position:
            return 0
        return pba - self._position

    def would_seek(self, pba: int) -> bool:
        """True if accessing ``pba`` next would count as a seek."""
        return self._position is not None and pba != self._position

    def reset(self) -> None:
        """Forget the head position (used between independent replays)."""
        self._position = None

    def restore_position(self, position: Optional[int]) -> None:
        """Set the head state directly (checkpoint restore).

        ``None`` means "no access yet" — the next access positions freely,
        exactly as on a fresh head.
        """
        if position is not None and position < 0:
            raise ValueError(f"position must be >= 0 or None, got {position}")
        self._position = position
