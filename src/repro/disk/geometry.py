"""Disk geometry parameters shared by the seek-time and zone models.

The paper's seek *counting* is geometry-free; geometry only enters when
converting seek distances to time (§III's cost discussion) and when laying
out SMR zones.  Defaults approximate a 7200 RPM, 8 TB class SMR drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import SECTORS_PER_MIB, gib_to_sectors


@dataclass(frozen=True)
class DiskGeometry:
    """Coarse physical parameters of a drive.

    Attributes:
        capacity_sectors: Total addressable sectors.
        track_sectors: Sectors per track (modern outer tracks hold ~2 MiB).
        rpm: Spindle speed.
        transfer_mib_s: Sustained media transfer rate.
    """

    capacity_sectors: int = gib_to_sectors(8 * 1024)
    track_sectors: int = 2 * SECTORS_PER_MIB
    rpm: int = 7200
    transfer_mib_s: float = 180.0

    def __post_init__(self) -> None:
        if self.capacity_sectors <= 0:
            raise ValueError(f"capacity_sectors must be > 0, got {self.capacity_sectors}")
        if self.track_sectors <= 0:
            raise ValueError(f"track_sectors must be > 0, got {self.track_sectors}")
        if self.rpm <= 0:
            raise ValueError(f"rpm must be > 0, got {self.rpm}")
        if self.transfer_mib_s <= 0:
            raise ValueError(f"transfer_mib_s must be > 0, got {self.transfer_mib_s}")

    @property
    def revolution_ms(self) -> float:
        """Time of one platter revolution in milliseconds."""
        return 60_000.0 / self.rpm

    @property
    def tracks(self) -> int:
        """Approximate track count (capacity / track size)."""
        return max(1, self.capacity_sectors // self.track_sectors)

    def transfer_ms(self, sectors: int) -> float:
        """Media transfer time for ``sectors`` at the sustained rate."""
        if sectors < 0:
            raise ValueError(f"sectors must be >= 0, got {sectors}")
        return sectors * 512 / (self.transfer_mib_s * 1024 * 1024) * 1000.0

    def tracks_spanned(self, distance_sectors: int) -> int:
        """How many track boundaries a seek of ``distance_sectors`` crosses."""
        return abs(distance_sectors) // self.track_sectors
