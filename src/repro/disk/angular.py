"""Angular (rotational-position) seek-cost model.

:class:`~repro.disk.seek_time.SeekTimeModel` approximates rotational delay
statistically (half a revolution for long seeks, a missed rotation for
short backward hops).  This refinement tracks the platter's angular
position explicitly: a sector's angle is its offset within its track, the
platter keeps spinning during head movement, and the cost of a seek is
head travel plus the wait for the target sector to come around.

It exists to quantify the §IV-B missed-rotation phenomenon exactly — how
much of log-structured translation's *time* overhead comes from small
backward hops that a distance-bucketed model can only approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disk.geometry import DiskGeometry


@dataclass
class AngularSeekModel:
    """Deterministic rotational-position cost model.

    Attributes:
        geometry: Supplies track size, rotation speed and head-seek curve
            inputs.
        min_seek_ms / max_seek_ms: Head travel time bounds (same meaning
            as in :class:`SeekTimeModel`).
    """

    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    min_seek_ms: float = 1.0
    max_seek_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.min_seek_ms <= 0:
            raise ValueError(f"min_seek_ms must be > 0, got {self.min_seek_ms}")
        if self.max_seek_ms < self.min_seek_ms:
            raise ValueError("max_seek_ms must be >= min_seek_ms")

    def angle_of(self, sector: int) -> float:
        """Angular position of a sector as a fraction of a revolution."""
        if sector < 0:
            raise ValueError(f"sector must be >= 0, got {sector}")
        return (sector % self.geometry.track_sectors) / self.geometry.track_sectors

    def head_travel_ms(self, from_sector: int, to_sector: int) -> float:
        """Arm movement time between the two sectors' tracks (0 if same)."""
        tracks = abs(
            to_sector // self.geometry.track_sectors
            - from_sector // self.geometry.track_sectors
        )
        if tracks == 0:
            return 0.0
        frac = min(1.0, tracks / self.geometry.tracks)
        return self.min_seek_ms + (self.max_seek_ms - self.min_seek_ms) * (frac ** 0.5)

    def seek_ms(self, from_sector: int, to_sector: int) -> float:
        """Total repositioning time from the end of one access to the
        start of the next, including the rotational wait.

        The platter rotates while the head travels; after travel the head
        waits until the target angle comes around (0..1 revolution).
        """
        if from_sector == to_sector:
            return 0.0
        travel = self.head_travel_ms(from_sector, to_sector)
        rev = self.geometry.revolution_ms
        # Angle the platter has advanced past the source sector when the
        # head arrives at the target track.
        arrival_angle = (self.angle_of(from_sector) + travel / rev) % 1.0
        target_angle = self.angle_of(to_sector)
        wait_fraction = (target_angle - arrival_angle) % 1.0
        return travel + wait_fraction * rev

    def missed_rotation_ms(self) -> float:
        """Cost of reading physical sector N right after N+1 on one track:
        nearly a full revolution — the §IV-B hazard look-behind removes."""
        return self.seek_ms(1, 0)

    def total_ms(self, hops) -> float:
        """Aggregate cost over ``(from_sector, to_sector)`` pairs."""
        return sum(self.seek_ms(a, b) for a, b in hops)
