"""SMR zone semantics (paper §II, Fig. 1).

Shipped SMR drives organize each platter into zones separated by guard
tracks; each zone must be written strictly sequentially at its write
pointer, and can only be reused after a reset that discards its contents —
the same model the Zoned Block Device extensions expose to hosts, and the
substrate both translation-layer styles (media-cache and log-structured)
are built on.

:class:`ZonedAddressSpace` enforces these rules and provides the sequential
allocator the log-structured translator's write frontier runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.util.units import SECTORS_PER_MIB


class SequentialZoneError(Exception):
    """Raised on writes that violate a zone's sequential-write constraint."""


@dataclass
class Zone:
    """One SMR zone.

    Attributes:
        zone_id: Index within the device.
        start: First sector of the zone.
        length: Zone size in sectors.
        write_pointer: Next writable sector (absolute); sectors in
            ``[start, write_pointer)`` hold data.
        conventional: True for conventional (randomly writable) zones, such
            as a drive's media-cache region on some models.
    """

    zone_id: int
    start: int
    length: int
    write_pointer: int
    conventional: bool = False

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def written_sectors(self) -> int:
        return self.write_pointer - self.start

    @property
    def remaining_sectors(self) -> int:
        return self.end - self.write_pointer

    @property
    def is_full(self) -> bool:
        return self.write_pointer >= self.end

    @property
    def is_empty(self) -> bool:
        return self.write_pointer == self.start


class ZonedAddressSpace:
    """A device's zone layout with sequential-write enforcement.

    Args:
        zone_sectors: Size of each zone (drives ship 256 MiB zones; tests
            use small ones).
        n_zones: Number of zones.
        conventional_zones: How many leading zones are conventional
            (randomly writable) — used to model media-cache regions.
    """

    DEFAULT_ZONE_SECTORS = 256 * SECTORS_PER_MIB

    def __init__(
        self,
        zone_sectors: int = DEFAULT_ZONE_SECTORS,
        n_zones: int = 64,
        conventional_zones: int = 0,
    ) -> None:
        if zone_sectors <= 0:
            raise ValueError(f"zone_sectors must be > 0, got {zone_sectors}")
        if n_zones <= 0:
            raise ValueError(f"n_zones must be > 0, got {n_zones}")
        if not 0 <= conventional_zones <= n_zones:
            raise ValueError(
                f"conventional_zones must be in [0, {n_zones}], got {conventional_zones}"
            )
        self._zone_sectors = zone_sectors
        self._zones: List[Zone] = [
            Zone(
                zone_id=i,
                start=i * zone_sectors,
                length=zone_sectors,
                write_pointer=i * zone_sectors,
                conventional=i < conventional_zones,
            )
            for i in range(n_zones)
        ]

    @property
    def zones(self) -> List[Zone]:
        return self._zones

    @property
    def zone_sectors(self) -> int:
        return self._zone_sectors

    @property
    def capacity_sectors(self) -> int:
        return self._zone_sectors * len(self._zones)

    def zone_for(self, pba: int) -> Zone:
        """Return the zone containing sector ``pba``."""
        if not 0 <= pba < self.capacity_sectors:
            raise ValueError(f"pba {pba} outside device [0, {self.capacity_sectors})")
        return self._zones[pba // self._zone_sectors]

    def write(self, pba: int, length: int) -> None:
        """Record a write of ``[pba, pba+length)``, enforcing zone rules.

        Sequential zones demand ``pba`` equal the write pointer and the
        write not to cross the zone end.  Conventional zones accept any
        in-range write (their pointer tracks the high-water mark).
        """
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        zone = self.zone_for(pba)
        end = pba + length
        if end > zone.end:
            raise SequentialZoneError(
                f"write [{pba}, {end}) crosses zone {zone.zone_id} end {zone.end}"
            )
        if zone.conventional:
            zone.write_pointer = max(zone.write_pointer, end)
            return
        if pba != zone.write_pointer:
            raise SequentialZoneError(
                f"zone {zone.zone_id}: write at {pba} != write pointer "
                f"{zone.write_pointer} (sequential-write constraint, Fig. 1)"
            )
        zone.write_pointer = end

    def reset(self, zone_id: int) -> None:
        """Reset a zone's write pointer, discarding its contents."""
        zone = self._zones[zone_id]
        zone.write_pointer = zone.start

    def append(self, length: int, start_zone: int = 0) -> List[Tuple[int, int]]:
        """Allocate ``length`` sectors at the device's global write frontier.

        Fills sequential zones in order from ``start_zone``, splitting the
        allocation across zone boundaries as needed (each returned
        ``(pba, length)`` piece lies in one zone).  This is the allocator a
        zone-aware log-structured frontier uses.

        Raises:
            SequentialZoneError: if the device runs out of zone space.
        """
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        pieces: List[Tuple[int, int]] = []
        remaining = length
        for zone in self._zones[start_zone:]:
            if zone.conventional or zone.is_full:
                continue
            take = min(remaining, zone.remaining_sectors)
            pieces.append((zone.write_pointer, take))
            self.write(zone.write_pointer, take)
            remaining -= take
            if remaining == 0:
                return pieces
        raise SequentialZoneError(
            f"device full: {remaining} of {length} sectors unallocated"
        )
