"""Disk substrate: head/seek model, seek-time costs, geometry, SMR zones,
and the drive-managed media-cache translation baseline.

The paper's metric layer is the :class:`~repro.disk.head.DiskHead` model —
a seek occurs when an I/O starts anywhere other than the sector immediately
following the previous I/O (§II).  Everything else in this package supports
the Background-section claims: seek *cost* as a function of distance (§III),
SMR zone semantics (Fig. 1), and the simple media-cache STL that trades
cleaning overhead for spatial order (§II).
"""

from repro.disk.head import DiskHead, AccessEvent
from repro.disk.seek_time import SeekTimeModel
from repro.disk.angular import AngularSeekModel
from repro.disk.geometry import DiskGeometry
from repro.disk.zones import Zone, ZonedAddressSpace, SequentialZoneError
from repro.disk.media_cache import MediaCacheSTL, MediaCacheStats
from repro.disk.cmr import ConventionalDisk, ServiceTimeStats

__all__ = [
    "DiskHead",
    "AccessEvent",
    "SeekTimeModel",
    "AngularSeekModel",
    "DiskGeometry",
    "Zone",
    "ZonedAddressSpace",
    "SequentialZoneError",
    "MediaCacheSTL",
    "MediaCacheStats",
    "ConventionalDisk",
    "ServiceTimeStats",
]
