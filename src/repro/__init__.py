"""repro — a reproduction of *Minimizing Read Seeks for SMR Disk*
(Hajkazemi, Abdi, Desnoyers; IISWC 2018).

A trace-driven simulator of log-structured block translation layers for
SMR disks, measuring read-seek amplification and implementing the paper's
three seek-reduction mechanisms: opportunistic defragmentation,
translation-aware look-ahead-behind prefetching, and translation-aware
selective caching.

Quickstart::

    from repro import (
        synthesize_workload, build_translator, replay, seek_amplification,
        NOLS, LS,
    )

    trace = synthesize_workload("w91", seed=7)
    base = replay(trace, build_translator(trace, NOLS))
    ls = replay(trace, build_translator(trace, LS))
    print(seek_amplification(ls.stats, base.stats))

Sub-packages:

* :mod:`repro.core` — translators, techniques, simulator, SAF metric.
* :mod:`repro.extentmap` — LBA→PBA extent mapping structures.
* :mod:`repro.disk` — head/seek model, seek-time costs, SMR zones,
  media-cache STL baseline.
* :mod:`repro.cache` — LRU and prefetch-buffer substrates.
* :mod:`repro.trace` — trace records, parsers (MSR, CloudPhysics), I/O,
  and the strict/lenient/quarantine parse error policies.
* :mod:`repro.faults` — deterministic fault injection (corrupt lines,
  damaged traces, transient device errors); see docs/ROBUSTNESS.md.
* :mod:`repro.workloads` — synthetic workload archetypes for the paper's
  21 Table-I traces.
* :mod:`repro.analysis` — fragmentation, seek-distance, mis-ordered-write
  and popularity analyses behind the paper's figures.
* :mod:`repro.experiments` — regenerate every table and figure.
"""

from repro.core import (
    InPlaceTranslator,
    LogStructuredTranslator,
    DefragConfig,
    MultiFrontierConfig,
    PrefetchConfig,
    SelectiveCacheConfig,
    Simulator,
    replay,
    SeekAmplification,
    seek_amplification,
    TechniqueConfig,
    build_translator,
    NOLS,
    LS,
    LS_DEFRAG,
    LS_PREFETCH,
    LS_CACHE,
    PAPER_CONFIGS,
)
from repro.trace import IORequest, OpType, Trace
from repro.workloads import synthesize_workload, TABLE1

__version__ = "1.0.0"

__all__ = [
    "InPlaceTranslator",
    "LogStructuredTranslator",
    "DefragConfig",
    "MultiFrontierConfig",
    "PrefetchConfig",
    "SelectiveCacheConfig",
    "Simulator",
    "replay",
    "SeekAmplification",
    "seek_amplification",
    "TechniqueConfig",
    "build_translator",
    "NOLS",
    "LS",
    "LS_DEFRAG",
    "LS_PREFETCH",
    "LS_CACHE",
    "PAPER_CONFIGS",
    "IORequest",
    "OpType",
    "Trace",
    "synthesize_workload",
    "TABLE1",
    "__version__",
]
