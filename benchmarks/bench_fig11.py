"""Benchmark: regenerate Fig. 11 (SAF under LS and the three techniques).

This is the paper's headline experiment: 21 workloads x 5 replays.
"""


def test_bench_fig11(exhibit_runner):
    data = exhibit_runner("fig11")
    assert len(data) == 21
    for name, row in data.items():
        safs = row["saf"]
        assert set(safs) == {"LS", "LS+defrag", "LS+prefetch", "LS+cache"}
        # Prefetching and caching never worsen SAF (paper §V).
        assert safs["LS+prefetch"]["total"] <= safs["LS"]["total"] * 1.05, name
        assert safs["LS+cache"]["total"] <= safs["LS"]["total"] * 1.05, name
