"""Benchmarks: the ablation exhibits (design-choice sweeps)."""


def test_bench_ablation_cache(exhibit_runner):
    data = exhibit_runner("ablation_cache")
    for row in data.values():
        assert row["4MB"] >= row["256MB"] - 1e-9


def test_bench_ablation_defrag(exhibit_runner):
    data = exhibit_runner("ablation_defrag")
    assert set(data) == {"w91", "w20"}


def test_bench_ablation_prefetch(exhibit_runner):
    data = exhibit_runner("ablation_prefetch")
    assert set(data) == {"w91", "hm_1"}


def test_bench_ablation_cleaning(exhibit_runner):
    data = exhibit_runner("ablation_cleaning")
    assert data["12"]["waf"] >= data["40"]["waf"]


def test_bench_ablation_multifrontier(exhibit_runner):
    data = exhibit_runner("ablation_multifrontier")
    assert data["dual"]["frontier_switches"] > 0


def test_bench_taxonomy(exhibit_runner):
    data = exhibit_runner("taxonomy")
    assert len(data) == 21


def test_bench_ablation_combined(exhibit_runner):
    data = exhibit_runner("ablation_combined")
    assert len(data) == 21
    wins = sum(
        1 for row in data.values() if row["combined"] <= row["best_single"] + 0.05
    )
    assert wins >= 15
