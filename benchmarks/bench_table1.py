"""Benchmark: regenerate Table I (workload characteristics)."""


def test_bench_table1(exhibit_runner):
    data = exhibit_runner("table1")
    assert len(data) == 21
    for row in data.values():
        assert row["synthetic"]["read_count"] >= 0
