"""Benchmark: regenerate Fig. 7 (non-sequential write patterns)."""


def test_bench_fig7(exhibit_runner):
    data = exhibit_runner("fig7")
    assert set(data) == {"hm_1", "w106"}
    # Both workloads must show visible descending runs in the write stream.
    for name, row in data.items():
        assert row["descending_step_fraction_all"] > 0.1, name
