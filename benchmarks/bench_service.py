"""Micro-benchmarks of the streaming service's durability hot paths.

The service's steady-state cost is journal-then-apply per batch plus a
periodic checkpoint; its recovery cost is newest-checkpoint load plus
journal-tail replay.  These benchmarks pin all three so a regression in
the WAL framing, the checkpoint codec, or the resumable kernel shows up
independently of the asyncio/transport layers (which are dominated by
fsync and scheduling noise, not compute).
"""

import itertools
import shutil

import numpy as np

from repro.core.config import LS_ALL
from repro.service.session import ReplaySession

OPS = 20_000
BATCH_OPS = 200
CAPACITY = 1 << 20


def _columns(n_ops=OPS, capacity=CAPACITY, seed=5):
    rng = np.random.default_rng(seed)
    length = rng.integers(1, 33, size=n_ops).astype(np.int64)
    lba = rng.integers(0, capacity - 33, size=n_ops).astype(np.int64)
    is_read = rng.random(n_ops) < 0.5
    is_read[0] = False  # lead with a write so reads land on mapped space too
    return is_read, lba, length


def _apply_all(session, columns, batch_ops=BATCH_OPS):
    is_read, lba, length = columns
    seq = session.applied_seq
    for start in range(0, len(lba), batch_ops):
        stop = start + batch_ops
        seq += 1
        session.apply_batch(
            seq, is_read[start:stop], lba[start:stop], length[start:stop]
        )
    return seq


def test_bench_session_journaled_apply(benchmark, tmp_path):
    """Steady-state ingest: journal fsync + resumable-kernel apply."""
    columns = _columns()
    roots = itertools.count()

    def run():
        session = ReplaySession.create(
            "bench",
            tmp_path / f"t{next(roots)}",
            LS_ALL,
            CAPACITY,
            checkpoint_interval_ops=10**9,  # never: isolate the WAL+apply cost
        )
        _apply_all(session, columns)
        return session

    session = benchmark.pedantic(run, rounds=3, iterations=1)
    assert session.applied_seq == OPS // BATCH_OPS


def test_bench_checkpoint_save(benchmark, tmp_path):
    """One full-state checkpoint commit (codec + fsync + atomic rename).

    Each round applies one (untimed) batch first so every save lands on
    a fresh sequence number — a repeat save of an already-published
    checkpoint short-circuits and would measure nothing.
    """
    session = ReplaySession.create(
        "bench", tmp_path / "tenant", LS_ALL, CAPACITY,
        checkpoint_interval_ops=10**9,
    )
    _apply_all(session, _columns())
    extra = _columns(n_ops=BATCH_OPS * 8, seed=6)
    chunks = iter(range(8))

    def advance_one_batch():
        i = next(chunks)
        sl = slice(i * BATCH_OPS, (i + 1) * BATCH_OPS)
        session.apply_batch(
            session.applied_seq + 1, extra[0][sl], extra[1][sl], extra[2][sl]
        )
        return (), {}

    benchmark.pedantic(
        session.checkpoint, setup=advance_one_batch, rounds=5, iterations=1
    )


def test_bench_recovery_checkpoint_plus_tail(benchmark, tmp_path):
    """kill -9 recovery: newest checkpoint + half the ops as journal tail.

    ``open`` re-anchors (checkpoints the recovered state), so each round
    recovers an untimed pristine copy of the crashed directory.
    """
    pristine = tmp_path / "pristine"
    columns = _columns()
    half = (OPS // BATCH_OPS // 2) * BATCH_OPS
    first = (columns[0][:half], columns[1][:half], columns[2][:half])
    rest = (columns[0][half:], columns[1][half:], columns[2][half:])
    session = ReplaySession.create(
        "bench", pristine, LS_ALL, CAPACITY, checkpoint_interval_ops=10**9
    )
    _apply_all(session, first)
    session.checkpoint()
    _apply_all(session, rest)
    want = session.applied_seq
    del session  # simulate the crash: no close, journal tail unabsorbed

    roots = itertools.count()

    def crashed_copy():
        root = tmp_path / f"run{next(roots)}"
        shutil.copytree(pristine, root)
        return (root,), {}

    recovered = benchmark.pedantic(
        lambda root: ReplaySession.open("bench", root, LS_ALL, CAPACITY),
        setup=crashed_copy,
        rounds=5,
        iterations=1,
    )
    assert recovered.applied_seq == want
