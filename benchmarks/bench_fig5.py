"""Benchmark: regenerate Fig. 5 (dynamic-fragmentation CDFs)."""


def test_bench_fig5(exhibit_runner):
    data = exhibit_runner("fig5")
    assert set(data) == {"usr_0", "hm_1", "w20", "w36"}
    for name, row in data.items():
        assert row["fragmented_reads"] > 0, name
        assert row["fraction_of_fragments_in_top20pct_reads"] >= 0.2, name
