"""Micro-benchmarks of the simulator's hot paths.

These measure the substrate itself (extent-map churn, replay throughput,
cache operations) rather than a paper exhibit, so regressions in the data
structures show up even when the exhibit benchmarks are dominated by
workload generation.
"""

import random

from repro.cache.lru import LRUCache
from repro.core.config import LS, LS_CACHE, NOLS, build_translator
from repro.core.simulator import replay
from repro.extentmap.extent_map import ExtentMap
from repro.trace.record import IORequest
from repro.trace.trace import Trace

OPS = 20_000


def random_write_trace(n_ops=OPS, space=2_000_000, seed=1):
    rng = random.Random(seed)
    return Trace(
        [
            IORequest.write(rng.randrange(0, space) // 8 * 8, 8, i * 1e-3)
            for i in range(n_ops)
        ],
        name="bench-writes",
    )


def mixed_trace(n_ops=OPS, space=2_000_000, seed=2):
    rng = random.Random(seed)
    requests = []
    for i in range(n_ops):
        lba = rng.randrange(0, space) // 8 * 8
        if rng.random() < 0.5:
            requests.append(IORequest.write(lba, 8, i * 1e-3))
        else:
            requests.append(IORequest.read(lba, 32, i * 1e-3))
    return Trace(requests, name="bench-mixed")


def test_bench_extent_map_random_overwrites(benchmark):
    rng = random.Random(3)
    operations = [
        (rng.randrange(0, 100_000), rng.randrange(1, 64), i * 64)
        for i in range(OPS)
    ]

    def run():
        emap = ExtentMap()
        for lba, length, pba in operations:
            emap.map_range(lba, pba, length)
        return emap

    emap = benchmark(run)
    assert emap.mapped_extent_count() > 0


def test_bench_extent_map_lookup(benchmark):
    rng = random.Random(4)
    emap = ExtentMap()
    for i in range(OPS):
        emap.map_range(rng.randrange(0, 100_000), i * 64, rng.randrange(1, 64))
    queries = [(rng.randrange(0, 100_000), 128) for _ in range(OPS)]

    def run():
        total = 0
        for lba, length in queries:
            total += len(emap.lookup(lba, length))
        return total

    assert benchmark(run) > 0


def test_bench_replay_nols(benchmark):
    trace = mixed_trace()
    result = benchmark(lambda: replay(trace, build_translator(trace, NOLS)))
    assert result.stats.ops == OPS


def test_bench_replay_log_structured(benchmark):
    trace = mixed_trace()
    result = benchmark(lambda: replay(trace, build_translator(trace, LS)))
    assert result.stats.ops == OPS


def test_bench_replay_with_selective_cache(benchmark):
    trace = mixed_trace()
    result = benchmark(lambda: replay(trace, build_translator(trace, LS_CACHE)))
    assert result.stats.ops == OPS


def test_bench_lru_cache_churn(benchmark):
    rng = random.Random(5)
    spans = [(rng.randrange(0, 1_000_000), rng.randrange(1, 64)) for _ in range(OPS)]

    def run():
        cache = LRUCache(capacity_bytes=4 * 1024 * 1024)
        hits = 0
        for pba, length in spans:
            if cache.contains_range(pba, length):
                cache.touch_range(pba, length)
                hits += 1
            else:
                cache.insert_range(pba, length)
        return hits

    assert benchmark(run) >= 0


def test_bench_cleaning_translator(benchmark):
    from repro.core.cleaning import ZonedCleaningTranslator
    from repro.util.units import mib_to_sectors

    rng = random.Random(6)
    space = mib_to_sectors(4)
    requests = [
        IORequest.write(rng.randrange(0, space - 8) // 8 * 8, 8, i * 1e-3)
        for i in range(5000)
    ]

    def run():
        translator = ZonedCleaningTranslator(
            frontier_base=space, zone_mib=1.0, n_zones=8, reserve_zones=2
        )
        for request in requests:
            translator.submit(request)
        return translator

    translator = benchmark(run)
    assert translator.cleaning_stats.cleanings > 0


def test_bench_fast_nols_seek_counts(benchmark):
    from repro.analysis.fast import nols_seek_counts

    trace = mixed_trace()
    read_seeks, write_seeks = benchmark(lambda: nols_seek_counts(trace))
    assert read_seeks + write_seeks > 0


def test_bench_batch_replay_nols(benchmark):
    from repro.core.batch import batch_replay

    trace = mixed_trace()
    result = benchmark(lambda: batch_replay(trace, NOLS))
    assert result.stats.ops == OPS


def test_bench_batch_replay_log_structured(benchmark):
    from repro.core.batch import batch_replay

    trace = mixed_trace()
    result = benchmark(lambda: batch_replay(trace, LS))
    assert result.stats.ops == OPS


def test_bench_batch_replay_with_selective_cache(benchmark):
    from repro.core.batch import batch_replay

    trace = mixed_trace()
    result = benchmark(lambda: batch_replay(trace, LS_CACHE))
    assert result.stats.ops == OPS
