"""Macro-benchmark of the replay kernels; writes ``BENCH_core.json``.

Unlike the pytest-benchmark micro suite (``make bench-micro``), this is a
plain script producing a small, diffable JSON artifact that
``check_regression.py`` gates against the checked-in baseline::

    python benchmarks/bench_kernels.py --out benchmarks/BENCH_core.json
    python benchmarks/check_regression.py benchmarks/BENCH_core.json

It measures the reference per-request simulator against the vectorized
batch kernels (:mod:`repro.core.batch`) on million-op *generated Table I
workloads* — the zipf locality of the paper's traces is what keeps the
extent map compact, so a uniform-random synthetic trace would measure
extent-map insertion, not replay.  The stateful log-structured replay of
the read-heavy trace is the headline (gated) number.  The ``jobs_scaling``
benchmark times the paper's exhibit set end to end, cold vs. over warm
memory-mapped trace/stream stores; its warm jobs=4 cell is gated because
the win comes from store reuse, which holds even on a 1-core container.
The two-exhibit ``runner`` timing remains informational context only: a
speedup there needs >1 core, which CI containers may not have.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.distances import distance_cdf
from repro.analysis.fast import (
    distance_cdf_fast,
    nols_seek_distances,
    nols_windowed_long_seeks,
)
from repro.analysis.temporal import WindowedSeekRecorder
from repro.core.batch import batch_replay, batch_replay_translator
from repro.core.cleaning import ZonedCleaningTranslator
from repro.core.config import (
    LS,
    LS_ALL,
    NOLS,
    PAPER_CONFIGS,
    TechniqueConfig,
    build_translator,
)
from repro.core.multifrontier import MultiFrontierTranslator
from repro.core.recorders import SeekLogRecorder
from repro.core.selective_cache import SelectiveCacheConfig
from repro.core.simulator import replay
from repro.experiments.sweep import SweepEngine
from repro.extentmap.tiers import DEFAULT_KERNEL_TIER, make_address_map, resolve_map_tier
from repro.trace.msr import parse_msr_file
from repro.trace.store import TraceStore, load_trace
from repro.trace.writers import write_msr_trace
from repro.util.units import mib_to_sectors
from repro.workloads import (
    ReadMix,
    WorkloadSpec,
    WriteMix,
    generate_workload,
    synthesize_workload,
)

DEFAULT_OPS = 1_000_000
SCHEMA_VERSION = 1

# hm_1 is 95% reads over a hot zipf core (the paper's Fig. 7 subject);
# w84 is 86% writes, so the extent map churns instead.  Together they
# bracket the replay kernels' best and worst realistic cases.
READ_HEAVY = ("hm_1", 24_000)
WRITE_HEAVY = ("w84", 30_000)

#: The 16-point selective-cache capacity grid for the sweep benchmark
#: (log-ish spacing over the paper's 1–256 MB range).
CACHE_SWEEP_MIB = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256)


def _timed(fn, repeat: int) -> float:
    """Best-of-``repeat`` wall time (best-of absorbs scheduler noise).

    Cyclic GC is suspended around each rep: by the time the later
    benchmarks run, the process retains millions of objects (traces,
    recorded streams) from the earlier ones, and full collections
    triggered mid-measurement scan all of them — charging earlier
    benchmarks' garbage to whichever side happens to allocate more
    containers.  Reference-counting still reclaims the (acyclic) bulk;
    one explicit collect between reps drains any cycles.
    """
    best = None
    for _ in range(repeat):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        start = time.perf_counter()
        try:
            fn()
        finally:
            if gc_was_enabled:
                gc.enable()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _workload(name: str, base_ops: int, n_ops: int):
    # No floor on the scale: smoke runs (make bench-smoke) shrink the
    # traces below their base op counts to finish in seconds.
    scale = n_ops / base_ops
    return synthesize_workload(name, seed=42, scale=scale)


def bench_replay_pair(trace, config, repeat: int) -> dict:
    """Time reference vs. batch replay of ``trace`` under ``config``."""
    reference_s = _timed(
        lambda: replay(trace, build_translator(trace, config)), repeat
    )
    batch_s = _timed(lambda: batch_replay(trace, config), repeat)
    n = len(trace)
    return {
        "ops": n,
        "reference": {"seconds": round(reference_s, 4), "ops_per_s": round(n / reference_s)},
        "batch": {
            "seconds": round(batch_s, 4),
            "ops_per_s": round(n / batch_s),
            "speedup_vs_reference": round(reference_s / batch_s, 2),
        },
    }


def bench_multifrontier(trace, repeat: int) -> dict:
    """Reference vs. batch replay of the multi-frontier (WOLF-style)
    translator on the read-heavy trace.

    Both sides drive hand-built translators (the exact construction the
    ``ablation_multifrontier`` exhibit uses); the batch side runs on the
    kernel extent-map tier, same as :func:`batch_replay` would pick.
    """
    def make(tier=None):
        return MultiFrontierTranslator(
            frontier_base=trace.max_end,
            region_sectors=mib_to_sectors(2048.0),
            address_map=make_address_map(tier),
        )

    kernel_tier = resolve_map_tier(DEFAULT_KERNEL_TIER)
    reference_s = _timed(lambda: replay(trace, make()), repeat)
    batch_s = _timed(
        lambda: batch_replay_translator(trace, make(kernel_tier)), repeat
    )
    n = len(trace)
    return {
        "ops": n,
        "reference": _side(reference_s, n),
        "batch": _side(batch_s, n, reference_s),
    }


def _cleaning_workload(n_ops: int):
    """A hot-overwrite workload against a finite log (forces cleaning)."""
    spec = WorkloadSpec(
        name="cleaning-bench",
        family="cloudphysics",
        total_ops=n_ops,
        read_fraction=0.3,
        mean_read_kib=16.0,
        mean_write_kib=16.0,
        working_set_mib=64,
        hot_mib=32,
        write_mix=WriteMix(random=0.5, hot_overwrite=0.5),
        read_mix=ReadMix(scan=0.5, random=0.5),
        phases=4,
    )
    return generate_workload(spec, seed=42)


def bench_cleaning(n_ops: int, repeat: int) -> dict:
    """Reference vs. batch replay of the zoned-cleaning translator.

    The 256 MiB log (32 x 8 MiB zones) holds the workload's 64 MiB live
    set with 4x over-provisioning, so at full scale the replay wraps the
    log dozens of times and cleaning episodes dominate — the episodes
    themselves run the same reference relocation code on both sides; the
    batch win is the vectorized host stream between them.
    """
    trace = _cleaning_workload(n_ops)

    def make(tier=None):
        return ZonedCleaningTranslator(
            frontier_base=trace.max_end,
            zone_mib=8.0,
            n_zones=32,
            reserve_zones=2,
            address_map=make_address_map(tier),
        )

    kernel_tier = resolve_map_tier(DEFAULT_KERNEL_TIER)
    reference_s = _timed(lambda: replay(trace, make()), repeat)
    batch_s = _timed(
        lambda: batch_replay_translator(trace, make(kernel_tier)), repeat
    )
    n = len(trace)
    return {
        "ops": n,
        "reference": _side(reference_s, n),
        "batch": _side(batch_s, n, reference_s),
    }


def _nols_analyses_reference(trace) -> None:
    """The reference path for the Fig. 3/4 trace-level analyses: a full
    per-request NoLS replay with recorders, then the plain-Python CDF."""
    windowed = WindowedSeekRecorder()
    seek_log = SeekLogRecorder()
    replay(trace, build_translator(trace, NOLS), [windowed, seek_log])
    windowed.series()
    distance_cdf(seek_log.distances)


def _nols_analyses_fast(trace) -> None:
    """The vectorized equivalents (exact; see ``tests/differential/``)."""
    nols_windowed_long_seeks(trace)
    distance_cdf_fast(nols_seek_distances(trace))


def _side(seconds: float, n: int, reference_s: float = None) -> dict:
    entry = {"seconds": round(seconds, 4), "ops_per_s": round(n / seconds)}
    if reference_s is not None:
        entry["speedup_vs_reference"] = round(reference_s / seconds, 2)
    return entry


def bench_ingest(trace, repeat: int) -> dict:
    """Cold and warm end-to-end ingest+analyze of an MSR-format dump.

    *reference* parses with the per-line parser and runs the reference
    analyses; *columnar* parses with the bulk parser and runs the
    vectorized analyses; *warm_store* loads the compiled trace from a
    primed :class:`TraceStore` instead of parsing.  All three produce the
    identical analysis results — the differential suite enforces it — so
    the ratios are pure performance.
    """
    import tempfile

    n = len(trace)
    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/ingest.csv"
        write_msr_trace(trace, path)

        def reference():
            parsed = parse_msr_file(path, engine="reference")
            _nols_analyses_reference(parsed)

        def columnar():
            parsed = parse_msr_file(path)
            _nols_analyses_fast(parsed)

        store = TraceStore(f"{tmp}/store")
        load_trace(path, "msr", store=store)  # prime the compiled store

        def warm():
            parsed = load_trace(path, "msr", store=store)
            _nols_analyses_fast(parsed)

        reference_s = _timed(reference, repeat)
        columnar_s = _timed(columnar, repeat)
        warm_s = _timed(warm, repeat)
    return {
        "ops": n,
        "reference": _side(reference_s, n),
        "columnar": _side(columnar_s, n, reference_s),
        "warm_store": _side(warm_s, n, reference_s),
    }


def bench_analysis(trace, repeat: int) -> dict:
    """Analysis kernels alone (trace already in memory): reference
    recorder replay vs. the vectorized kernels."""
    n = len(trace)
    reference_s = _timed(lambda: _nols_analyses_reference(trace), repeat)
    fast_s = _timed(lambda: _nols_analyses_fast(trace), repeat)
    return {
        "ops": n,
        "reference": _side(reference_s, n),
        "fast": _side(fast_s, n, reference_s),
    }


def bench_fig11_sweep(trace, repeat: int) -> dict:
    """A fig11-style grid on one workload: NoLS baseline + the four paper
    technique configs.  *reference* replays each config with the
    per-request simulator; *sweep* drives a fresh
    :class:`~repro.experiments.sweep.SweepEngine` (so the fragment-stream
    recording is timed too, exactly as a cold exhibit pays it).
    """
    configs = [NOLS] + list(PAPER_CONFIGS)
    n = len(trace)

    def reference():
        for config in configs:
            replay(trace, build_translator(trace, config))

    def fast():
        engine = SweepEngine(fast=True)
        engine.sweep(trace, configs)

    reference_s = _timed(reference, repeat)
    sweep_s = _timed(fast, repeat)
    return {
        "ops": n,
        "configs": len(configs),
        "reference": _side(reference_s, n),
        "sweep": _side(sweep_s, n, reference_s),
    }


def bench_cache_sweep(trace, repeat: int) -> dict:
    """The 16-point selective-cache capacity ablation on one workload.

    *reference* replays every capacity point with the per-request
    simulator; *sweep* records the fragment stream once and evaluates all
    sixteen points via the shared stack-distance kernel.
    """
    configs = [
        TechniqueConfig(
            name=f"cache{mib}",
            cache=SelectiveCacheConfig(capacity_mib=float(mib)),
        )
        for mib in CACHE_SWEEP_MIB
    ]
    n = len(trace)

    def reference():
        for config in configs:
            replay(trace, build_translator(trace, config))

    def fast():
        engine = SweepEngine(fast=True)
        engine.sweep(trace, configs)

    reference_s = _timed(reference, repeat)
    sweep_s = _timed(fast, repeat)
    return {
        "ops": n,
        "configs": len(configs),
        "reference": _side(reference_s, n),
        "sweep": _side(sweep_s, n, reference_s),
    }


#: The paper's exhibits (registry order) — the jobs_scaling subject.
PAPER_EXHIBITS = (
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10", "fig11",
)


def bench_jobs_scaling(scale: float, jobs: int = 4) -> dict:
    """End-to-end paper-exhibit regeneration: cold serial vs. the
    grid-sharded parallel runner over warm memory-mapped stores.

    *reference* is the best pre-store configuration — ``--fast``, serial,
    no persistent stores — so every run re-synthesizes workloads and
    re-records fragment streams in-process.  *cold_jobs4* adds the
    sharded pool plus empty trace/stream stores (priming them as it
    runs); *warm_jobs1* and *warm_jobs4* then replay against the primed
    stores, where traces and plain-LS streams are memory-mapped instead
    of recomputed.  All four cells write byte-identical exhibit JSON
    (asserted by ``tests/experiments/test_parallel_identity.py``), so
    the ratios are pure performance.  Workers fork (not spawn) so the
    cells measure replay, not interpreter start-up.
    """
    import contextlib
    import io
    import tempfile

    from repro.experiments.runner import run_exhibits

    def run_set(out_dir, n_jobs, trace_store=None, stream_store=None):
        outcomes = run_exhibits(
            list(PAPER_EXHIBITS),
            scale=scale,
            out_dir=out_dir,
            jobs=n_jobs,
            fast=True,
            trace_store=trace_store,
            stream_store=stream_store,
            mp_start_method="fork" if n_jobs > 1 else None,
            echo=lambda s: None,
        )
        bad = [o for o in outcomes if not o.ok]
        if bad:
            raise RuntimeError(
                f"jobs_scaling exhibit failures: "
                + ", ".join(f"{o.name}={o.status}" for o in bad)
            )

    with tempfile.TemporaryDirectory() as tmp, contextlib.redirect_stdout(
        io.StringIO()
    ):
        reference_s = _timed(lambda: run_set(f"{tmp}/ref", 1), 1)
        stores = {
            "trace_store": f"{tmp}/trace-store",
            "stream_store": f"{tmp}/stream-store",
        }
        cold_jobs_s = _timed(lambda: run_set(f"{tmp}/cold", jobs, **stores), 1)
        warm_serial_s = _timed(lambda: run_set(f"{tmp}/warm1", 1, **stores), 1)
        warm_jobs_s = _timed(lambda: run_set(f"{tmp}/warm{jobs}", jobs, **stores), 1)

    def cell(seconds: float) -> dict:
        return {
            "seconds": round(seconds, 2),
            "speedup_vs_reference": round(reference_s / seconds, 2),
        }

    return {
        "exhibits": list(PAPER_EXHIBITS),
        "scale": scale,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "reference": {"seconds": round(reference_s, 2)},
        "cold_jobs4": cell(cold_jobs_s),
        "warm_jobs1": cell(warm_serial_s),
        "warm_jobs4": cell(warm_jobs_s),
    }


def bench_ingest_parallel(scale: float, jobs: int = 4) -> dict:
    """Cold-store ingestion of every Table I workload, serial vs. pooled.

    Both cells drive :func:`repro.experiments.runner.ingest_workloads`
    against *fresh* trace/stream stores, so each pays the full cold path
    per workload exactly once: synthesis, compiled-trace publication,
    plain-LS fragment-stream recording and the NoLS baseline.  The cells
    do identical work (ingestion is per-workload idempotent), so the
    ratio isolates the pool's scheduling overhead — on a 1-core
    container jobs=4 cannot win, and the gate only demands it stays
    close to serial, catching regressions that duplicate ingest work
    across workers.
    """
    import contextlib
    import io
    import tempfile

    from repro.experiments.runner import ingest_workloads
    from repro.workloads import TABLE1

    names = list(TABLE1)

    def run_set(root: str, n_jobs: int) -> None:
        outcomes = ingest_workloads(
            names,
            scale=scale,
            trace_store=f"{root}/trace-store",
            stream_store=f"{root}/stream-store",
            jobs=n_jobs,
            mp_start_method="fork" if n_jobs > 1 else None,
        )
        bad = [o for o in outcomes if not o.ok]
        if bad:
            raise RuntimeError(
                "ingest failures: "
                + ", ".join(f"{o.name}={o.status}" for o in bad)
            )

    with tempfile.TemporaryDirectory() as tmp, contextlib.redirect_stdout(
        io.StringIO()
    ):
        reference_s = _timed(lambda: run_set(f"{tmp}/serial", 1), 1)
        jobs_s = _timed(lambda: run_set(f"{tmp}/jobs", jobs), 1)

    return {
        "workloads": len(names),
        "scale": scale,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "reference": {"seconds": round(reference_s, 2)},
        f"jobs{jobs}": {
            "seconds": round(jobs_s, 2),
            "speedup_vs_reference": round(reference_s / jobs_s, 2),
        },
    }


def bench_runner(scale: float = 0.05) -> dict:
    """Informational: serial vs. jobs=2 wall time over two real exhibits."""
    import contextlib
    import io
    import tempfile

    from repro.experiments.runner import run_exhibits

    names = ["fig8", "fig11"]
    quiet = {"echo": lambda s: None}
    # Serial exhibits print straight to stdout; keep the report clean.
    with tempfile.TemporaryDirectory() as tmp, contextlib.redirect_stdout(
        io.StringIO()
    ):
        serial_s = _timed(
            lambda: run_exhibits(names, scale=scale, out_dir=f"{tmp}/serial", **quiet),
            1,
        )
        parallel_s = _timed(
            lambda: run_exhibits(
                names, scale=scale, out_dir=f"{tmp}/parallel", jobs=2, **quiet
            ),
            1,
        )
    return {
        "exhibits": names,
        "scale": scale,
        "serial_seconds": round(serial_s, 2),
        "jobs2_seconds": round(parallel_s, 2),
        "cpu_count": os.cpu_count(),
    }


def run(n_ops: int, repeat: int, include_runner: bool) -> dict:
    read_heavy = _workload(*READ_HEAVY, n_ops)
    write_heavy = _workload(*WRITE_HEAVY, n_ops)
    results = {
        "replay_nols": bench_replay_pair(read_heavy, NOLS, repeat),
        "replay_ls": bench_replay_pair(read_heavy, LS, repeat),
        "replay_ls_all": bench_replay_pair(read_heavy, LS_ALL, repeat),
        "replay_ls_write_heavy": bench_replay_pair(write_heavy, LS, repeat),
        "replay_ls_write_heavy_all": bench_replay_pair(write_heavy, LS_ALL, repeat),
        "replay_multifrontier": bench_multifrontier(read_heavy, repeat),
        "replay_cleaning": bench_cleaning(n_ops, repeat),
        "sweep_fig11": bench_fig11_sweep(read_heavy, repeat),
        "sweep_cache_ablation": bench_cache_sweep(read_heavy, repeat),
        "ingest_msr": bench_ingest(read_heavy, repeat),
        "analysis_nols": bench_analysis(read_heavy, repeat),
        "jobs_scaling": bench_jobs_scaling(scale=n_ops / DEFAULT_OPS),
        "ingest_cold_parallel": bench_ingest_parallel(scale=n_ops / DEFAULT_OPS),
    }
    report = {
        "schema": SCHEMA_VERSION,
        "ops": n_ops,
        "workloads": {"read_heavy": READ_HEAVY[0], "write_heavy": WRITE_HEAVY[0]},
        "python": sys.version.split()[0],
        "results": results,
    }
    if include_runner:
        report["runner"] = bench_runner()
    # High-water RSS of the whole run (this process + reaped pool
    # workers) — informational context for the timings above.
    from repro.util.rss import peak_rss_mib

    report["peak_rss_mib"] = round(peak_rss_mib(), 1)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/BENCH_core.json", metavar="FILE")
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--repeat", type=int, default=1, help="best-of repeat count")
    parser.add_argument(
        "--no-runner", action="store_true", help="skip the (slow) runner timing"
    )
    args = parser.parse_args(argv)

    report = run(args.ops, args.repeat, include_runner=not args.no_runner)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    for name, pair in report["results"].items():
        parts = [f"reference {pair['reference']['seconds']:8.2f}s"]
        for side in (
            "batch", "sweep", "columnar", "warm_store", "fast",
            "cold_jobs4", "warm_jobs1", "warm_jobs4", "jobs4",
        ):
            if side in pair:
                parts.append(
                    f"{side} {pair[side]['seconds']:8.2f}s "
                    f"({pair[side]['speedup_vs_reference']:.2f}x)"
                )
        print(f"{name:22s} " + "   ".join(parts))
    if "runner" in report:
        runner = report["runner"]
        print(
            f"runner                 serial {runner['serial_seconds']:.2f}s   "
            f"jobs=2 {runner['jobs2_seconds']:.2f}s   "
            f"({runner['cpu_count']} cpu)"
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
